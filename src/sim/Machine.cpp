//===- sim/Machine.cpp -----------------------------------------------------==//

#include "sim/Machine.h"

#include "support/Format.h"

#include <cassert>

using namespace dlq;
using namespace dlq::sim;
using namespace dlq::masm;

std::map<InstrRef, LoadStat> RunResult::loadStats(const Module &M) const {
  std::map<InstrRef, LoadStat> Stats;
  for (size_t Flat = 0; Flat != FlatMap.size(); ++Flat) {
    InstrRef Ref = FlatMap[Flat];
    if (!isLoad(M.instrAt(Ref).Op))
      continue;
    Stats[Ref] = LoadStat{ExecCounts[Flat], MissCounts[Flat]};
  }
  return Stats;
}

Machine::Machine(const Module &Mod, const Layout &Lay, MachineOptions Options)
    : M(Mod), L(Lay), Opts(std::move(Options)), Rand(Opts.RandSeed) {
  for (uint32_t FI = 0; FI != M.functions().size(); ++FI) {
    FuncEntryFlat.push_back(static_cast<uint32_t>(Flat.size()));
    const Function &F = M.functions()[FI];
    for (uint32_t Idx = 0; Idx != F.size(); ++Idx) {
      Flat.push_back(FlatInstr{&F.instrs()[Idx], FI});
      FlatMap.push_back(InstrRef{FI, Idx});
    }
  }
  PrefetchFlat.assign(Flat.size(), 0);
  for (size_t FlatIdx = 0; FlatIdx != FlatMap.size(); ++FlatIdx)
    if (Opts.PrefetchLoads.count(FlatMap[FlatIdx]))
      PrefetchFlat[FlatIdx] = 1;
}

uint32_t Machine::runtimeMalloc(uint32_t Size) {
  if (Size == 0)
    Size = 1;
  uint32_t Aligned = (Size + 7) & ~7u;
  auto It = FreeLists.find(Aligned);
  if (It != FreeLists.end() && !It->second.empty()) {
    uint32_t Addr = It->second.back();
    It->second.pop_back();
    AllocSizes[Addr] = Aligned;
    return Addr;
  }
  uint32_t Addr = HeapBreak;
  HeapBreak += Aligned;
  AllocSizes[Addr] = Aligned;
  return Addr;
}

void Machine::runtimeFree(uint32_t Addr) {
  if (Addr == 0)
    return;
  auto It = AllocSizes.find(Addr);
  if (It == AllocSizes.end())
    return; // Tolerate double/bad frees in workloads.
  FreeLists[It->second].push_back(Addr);
  AllocSizes.erase(It);
}

bool Machine::handleRuntimeCall(const std::string &Name, RunResult &R,
                                bool &ShouldHalt) {
  ShouldHalt = false;
  if (Name == "malloc") {
    writeReg(Reg::V0, runtimeMalloc(readReg(Reg::A0)));
    return true;
  }
  if (Name == "calloc") {
    uint32_t Bytes = readReg(Reg::A0) * readReg(Reg::A1);
    uint32_t Addr = runtimeMalloc(Bytes);
    for (uint32_t I = 0; I != Bytes; ++I)
      Mem.writeByte(Addr + I, 0);
    writeReg(Reg::V0, Addr);
    return true;
  }
  if (Name == "free") {
    runtimeFree(readReg(Reg::A0));
    return true;
  }
  if (Name == "rand") {
    writeReg(Reg::V0, static_cast<uint32_t>(Rand.next() & 0x7FFFFFFF));
    return true;
  }
  if (Name == "srand") {
    Rand = Rng(readReg(Reg::A0));
    return true;
  }
  if (Name == "print_int") {
    R.Output += formatString("%d", static_cast<int32_t>(readReg(Reg::A0)));
    R.Output += "\n";
    return true;
  }
  if (Name == "print_char") {
    R.Output.push_back(static_cast<char>(readReg(Reg::A0) & 0xFF));
    return true;
  }
  if (Name == "exit") {
    R.ExitCode = static_cast<int32_t>(readReg(Reg::A0));
    ShouldHalt = true;
    return true;
  }
  if (Name == "abort") {
    R.ExitCode = 134;
    ShouldHalt = true;
    return true;
  }
  return false;
}

RunResult Machine::run() {
  RunResult R;
  R.ExecCounts.assign(Flat.size(), 0);
  R.MissCounts.assign(Flat.size(), 0);
  R.FlatMap = FlatMap;

  // Materialize global initializers.
  for (const Global &G : M.globals()) {
    uint32_t Addr = L.globalAddress(G.Name);
    if (!G.Init.empty())
      Mem.writeBlock(Addr, G.Init.data(), static_cast<uint32_t>(G.Init.size()));
  }

  Cache DCache(Opts.DCache);
  Cache ICacheModel(Opts.ICache);

  // Initial machine state.
  constexpr uint32_t ExitPc = 0xFFFFFFFC;
  for (uint32_t &RegSlot : Regs)
    RegSlot = 0;
  writeReg(Reg::SP, LayoutConstants::StackTop);
  writeReg(Reg::FP, LayoutConstants::StackTop);
  writeReg(Reg::GP, LayoutConstants::GpValue);
  writeReg(Reg::RA, ExitPc);
  for (size_t AI = 0; AI != Opts.Args.size() && AI != 4; ++AI)
    writeReg(static_cast<Reg>(static_cast<unsigned>(Reg::A0) + AI),
             static_cast<uint32_t>(Opts.Args[AI]));

  uint32_t MainIdx = M.functionIndex("main");
  if (MainIdx == InvalidIndex) {
    R.Halt = HaltReason::Trapped;
    R.TrapMessage = "no 'main' function";
    return R;
  }

  auto trap = [&](std::string Message) {
    R.Halt = HaltReason::Trapped;
    R.TrapMessage = std::move(Message);
  };

  uint64_t FlatCount = Flat.size();
  uint64_t FlatPc = FuncEntryFlat[MainIdx];

  while (true) {
    if (R.InstrsExecuted >= Opts.MaxInstrs) {
      R.Halt = HaltReason::FuelExhausted;
      return R;
    }
    if (FlatPc >= FlatCount) {
      trap(formatString("pc out of text: flat index %llu",
                        static_cast<unsigned long long>(FlatPc)));
      return R;
    }

    const Instr &I = *Flat[FlatPc].I;
    ++R.ExecCounts[FlatPc];
    ++R.InstrsExecuted;
    if (Opts.SimulateICache &&
        !ICacheModel.access(LayoutConstants::TextBase +
                            static_cast<uint32_t>(FlatPc) * 4))
      ++R.ICacheMisses;

    uint64_t NextPc = FlatPc + 1;

    auto branchTo = [&](uint32_t LocalTarget) {
      NextPc = FuncEntryFlat[Flat[FlatPc].FuncIdx] + LocalTarget;
    };

    uint32_t RsV = readReg(I.Rs);
    uint32_t RtV = readReg(I.Rt);
    int32_t RsS = static_cast<int32_t>(RsV);
    int32_t RtS = static_cast<int32_t>(RtV);

    switch (I.Op) {
    case Opcode::Add:
      writeReg(I.Rd, RsV + RtV);
      break;
    case Opcode::Sub:
      writeReg(I.Rd, RsV - RtV);
      break;
    case Opcode::Mul:
      writeReg(I.Rd, static_cast<uint32_t>(static_cast<int64_t>(RsS) * RtS));
      break;
    case Opcode::Div:
      if (RtS == 0) {
        trap("division by zero");
        return R;
      }
      // INT_MIN / -1 overflows on the host; define it as INT_MIN.
      if (RsS == INT32_MIN && RtS == -1)
        writeReg(I.Rd, static_cast<uint32_t>(INT32_MIN));
      else
        writeReg(I.Rd, static_cast<uint32_t>(RsS / RtS));
      break;
    case Opcode::Rem:
      if (RtS == 0) {
        trap("remainder by zero");
        return R;
      }
      if (RsS == INT32_MIN && RtS == -1)
        writeReg(I.Rd, 0);
      else
        writeReg(I.Rd, static_cast<uint32_t>(RsS % RtS));
      break;
    case Opcode::And:
      writeReg(I.Rd, RsV & RtV);
      break;
    case Opcode::Or:
      writeReg(I.Rd, RsV | RtV);
      break;
    case Opcode::Xor:
      writeReg(I.Rd, RsV ^ RtV);
      break;
    case Opcode::Nor:
      writeReg(I.Rd, ~(RsV | RtV));
      break;
    case Opcode::Slt:
      writeReg(I.Rd, RsS < RtS ? 1 : 0);
      break;
    case Opcode::Sltu:
      writeReg(I.Rd, RsV < RtV ? 1 : 0);
      break;
    case Opcode::Sllv:
      writeReg(I.Rd, RsV << (RtV & 31));
      break;
    case Opcode::Srlv:
      writeReg(I.Rd, RsV >> (RtV & 31));
      break;
    case Opcode::Srav:
      writeReg(I.Rd, static_cast<uint32_t>(RsS >> (RtV & 31)));
      break;
    case Opcode::Addi:
      writeReg(I.Rd, RsV + static_cast<uint32_t>(I.Imm));
      break;
    case Opcode::Andi:
      writeReg(I.Rd, RsV & static_cast<uint32_t>(I.Imm));
      break;
    case Opcode::Ori:
      writeReg(I.Rd, RsV | static_cast<uint32_t>(I.Imm));
      break;
    case Opcode::Xori:
      writeReg(I.Rd, RsV ^ static_cast<uint32_t>(I.Imm));
      break;
    case Opcode::Slti:
      writeReg(I.Rd, RsS < I.Imm ? 1 : 0);
      break;
    case Opcode::Sltiu:
      writeReg(I.Rd, RsV < static_cast<uint32_t>(I.Imm) ? 1 : 0);
      break;
    case Opcode::Sll:
      writeReg(I.Rd, RsV << (static_cast<uint32_t>(I.Imm) & 31));
      break;
    case Opcode::Srl:
      writeReg(I.Rd, RsV >> (static_cast<uint32_t>(I.Imm) & 31));
      break;
    case Opcode::Sra:
      writeReg(I.Rd,
               static_cast<uint32_t>(RsS >> (static_cast<uint32_t>(I.Imm) & 31)));
      break;
    case Opcode::Lui:
      writeReg(I.Rd, static_cast<uint32_t>(I.Imm) << 16);
      break;
    case Opcode::Li:
      writeReg(I.Rd, static_cast<uint32_t>(I.Imm));
      break;
    case Opcode::La: {
      uint32_t Addr = L.globalAddress(I.Sym);
      if (Addr == Layout::InvalidAddress) {
        // Allow taking the address of a function (for completeness).
        uint32_t FI = M.functionIndex(I.Sym);
        if (FI == InvalidIndex) {
          trap("la of unknown symbol '" + I.Sym + "'");
          return R;
        }
        Addr = L.functionEntry(FI);
      }
      writeReg(I.Rd, Addr + static_cast<uint32_t>(I.Imm));
      break;
    }
    case Opcode::Move:
      writeReg(I.Rd, RsV);
      break;
    case Opcode::Lw:
    case Opcode::Lh:
    case Opcode::Lhu:
    case Opcode::Lb:
    case Opcode::Lbu: {
      uint32_t Addr = RsV + static_cast<uint32_t>(I.Imm);
      uint32_t Value = 0;
      switch (I.Op) {
      case Opcode::Lw:
        Value = Mem.readWord(Addr);
        break;
      case Opcode::Lh:
        Value = static_cast<uint32_t>(
            static_cast<int32_t>(static_cast<int16_t>(Mem.readHalf(Addr))));
        break;
      case Opcode::Lhu:
        Value = Mem.readHalf(Addr);
        break;
      case Opcode::Lb:
        Value = static_cast<uint32_t>(
            static_cast<int32_t>(static_cast<int8_t>(Mem.readByte(Addr))));
        break;
      default:
        Value = Mem.readByte(Addr);
        break;
      }
      writeReg(I.Rd, Value);
      ++R.DataAccesses;
      if (!DCache.access(Addr)) {
        ++R.LoadMisses;
        ++R.MissCounts[FlatPc];
      }
      if (PrefetchFlat[FlatPc]) {
        // Next-line software prefetch on this (predicted-delinquent) load.
        ++R.PrefetchesIssued;
        if (!DCache.access(Addr + Opts.DCache.BlockBytes))
          ++R.PrefetchFills;
      }
      break;
    }
    case Opcode::Sw:
    case Opcode::Sh:
    case Opcode::Sb: {
      uint32_t Addr = RsV + static_cast<uint32_t>(I.Imm);
      switch (I.Op) {
      case Opcode::Sw:
        Mem.writeWord(Addr, RtV);
        break;
      case Opcode::Sh:
        Mem.writeHalf(Addr, static_cast<uint16_t>(RtV));
        break;
      default:
        Mem.writeByte(Addr, static_cast<uint8_t>(RtV));
        break;
      }
      ++R.DataAccesses;
      if (!DCache.access(Addr))
        ++R.StoreMisses;
      break;
    }
    case Opcode::Beq:
      if (RsV == RtV)
        branchTo(I.TargetIndex);
      break;
    case Opcode::Bne:
      if (RsV != RtV)
        branchTo(I.TargetIndex);
      break;
    case Opcode::Blt:
      if (RsS < RtS)
        branchTo(I.TargetIndex);
      break;
    case Opcode::Bge:
      if (RsS >= RtS)
        branchTo(I.TargetIndex);
      break;
    case Opcode::Ble:
      if (RsS <= RtS)
        branchTo(I.TargetIndex);
      break;
    case Opcode::Bgt:
      if (RsS > RtS)
        branchTo(I.TargetIndex);
      break;
    case Opcode::J:
      branchTo(I.TargetIndex);
      break;
    case Opcode::Jal: {
      bool ShouldHalt = false;
      if (handleRuntimeCall(I.Sym, R, ShouldHalt)) {
        if (ShouldHalt)
          return R;
        break;
      }
      uint32_t FI = M.functionIndex(I.Sym);
      if (FI == InvalidIndex) {
        trap("call to unknown function '" + I.Sym + "'");
        return R;
      }
      writeReg(Reg::RA, LayoutConstants::TextBase +
                            static_cast<uint32_t>(FlatPc + 1) * 4);
      NextPc = FuncEntryFlat[FI];
      break;
    }
    case Opcode::Jr: {
      uint32_t Target = RsV;
      if (Target == ExitPc) {
        R.ExitCode = static_cast<int32_t>(readReg(Reg::V0));
        return R;
      }
      if (Target < LayoutConstants::TextBase || (Target & 3) != 0) {
        trap(formatString("jr to bad address 0x%08x", Target));
        return R;
      }
      NextPc = (Target - LayoutConstants::TextBase) / 4;
      break;
    }
    case Opcode::Jalr: {
      uint32_t Target = RsV;
      if (Target < LayoutConstants::TextBase || (Target & 3) != 0) {
        trap(formatString("jalr to bad address 0x%08x", Target));
        return R;
      }
      writeReg(Reg::RA, LayoutConstants::TextBase +
                            static_cast<uint32_t>(FlatPc + 1) * 4);
      NextPc = (Target - LayoutConstants::TextBase) / 4;
      break;
    }
    case Opcode::Nop:
      break;
    }

    FlatPc = NextPc;
  }
}
