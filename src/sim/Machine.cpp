//===- sim/Machine.cpp -----------------------------------------------------==//

#include "sim/Machine.h"

#include "absint/JitHints.h"
#include "jit/CodeBuffer.h"
#include "jit/Engine.h"
#include "obs/Counters.h"
#include "sim/Cache.h"
#include "support/Format.h"

#include <cassert>
#include <cstdlib>

using namespace dlq;
using namespace dlq::sim;
using namespace dlq::masm;

EngineKind dlq::sim::engineKindFromString(const std::string &S) {
  if (S == "interp")
    return EngineKind::Interp;
  if (S == "jit")
    return EngineKind::Jit;
  return EngineKind::Auto;
}

std::map<InstrRef, LoadStat> RunResult::loadStats(const Module &M) const {
  std::map<InstrRef, LoadStat> Stats;
  for (size_t Flat = 0; Flat != FlatMap.size(); ++Flat) {
    InstrRef Ref = FlatMap[Flat];
    if (!isLoad(M.instrAt(Ref).Op))
      continue;
    Stats[Ref] = LoadStat{ExecCounts[Flat], MissCounts[Flat]};
  }
  return Stats;
}

namespace {

/// Engine selection, settled before predecode (the JIT wants the unfused
/// stream: superinstructions only exist to amortize interpreter dispatch).
bool wantJit(const MachineOptions &Opts, const Memory &Mem) {
  bool Want = false;
  switch (Opts.Engine) {
  case EngineKind::Interp:
    Want = false;
    break;
  case EngineKind::Jit:
    Want = true;
    break;
  case EngineKind::Auto: {
    const char *Env = std::getenv("DLQ_JIT");
    Want = !(Env && Env[0] == '0' && Env[1] == '\0');
    break;
  }
  }
  return Want && jit::available() && !Opts.SimulateICache && Mem.isFlat();
}

} // namespace

Machine::Machine(const Module &Mod, const Layout &Lay, MachineOptions Options)
    : M(Mod), L(Lay), Opts(std::move(Options)), Mem(Opts.MemBacking),
      Rand(Opts.RandSeed) {
  UseJit = wantJit(Opts, Mem);
  Prog = predecode(M, L, Opts.PrefetchLoads, !Opts.NoFusion && !UseJit);
  // Generated code addresses CodePtrs with 8*pc int32 displacements; no real
  // module comes near the limit.
  if (Prog.FlatMap.size() >= (1u << 27))
    UseJit = false;
}

uint32_t Machine::runtimeMalloc(uint32_t Size) {
  if (Size == 0)
    Size = 1;
  uint32_t Aligned = (Size + 7) & ~7u;
  auto It = FreeLists.find(Aligned);
  if (It != FreeLists.end() && !It->second.empty()) {
    uint32_t Addr = It->second.back();
    It->second.pop_back();
    AllocSizes[Addr] = Aligned;
    return Addr;
  }
  uint32_t Addr = HeapBreak;
  HeapBreak += Aligned;
  AllocSizes[Addr] = Aligned;
  return Addr;
}

void Machine::runtimeFree(uint32_t Addr) {
  if (Addr == 0)
    return;
  auto It = AllocSizes.find(Addr);
  if (It == AllocSizes.end())
    return; // Tolerate double/bad frees in workloads.
  FreeLists[It->second].push_back(Addr);
  AllocSizes.erase(It);
}

void Machine::handleRuntimeCall(RuntimeFn F, RunResult &R, bool &ShouldHalt) {
  ShouldHalt = false;
  switch (F) {
  case RuntimeFn::Malloc:
    writeReg(Reg::V0, runtimeMalloc(readReg(Reg::A0)));
    break;
  case RuntimeFn::Calloc: {
    uint32_t Bytes = readReg(Reg::A0) * readReg(Reg::A1);
    uint32_t Addr = runtimeMalloc(Bytes);
    Mem.zeroFill(Addr, Bytes);
    writeReg(Reg::V0, Addr);
    break;
  }
  case RuntimeFn::Free:
    runtimeFree(readReg(Reg::A0));
    break;
  case RuntimeFn::Rand:
    writeReg(Reg::V0, static_cast<uint32_t>(Rand.next() & 0x7FFFFFFF));
    break;
  case RuntimeFn::Srand:
    Rand = Rng(readReg(Reg::A0));
    break;
  case RuntimeFn::PrintInt:
    R.Output += formatString("%d", static_cast<int32_t>(readReg(Reg::A0)));
    R.Output += "\n";
    break;
  case RuntimeFn::PrintChar:
    R.Output.push_back(static_cast<char>(readReg(Reg::A0) & 0xFF));
    break;
  case RuntimeFn::Exit:
    R.ExitCode = static_cast<int32_t>(readReg(Reg::A0));
    ShouldHalt = true;
    break;
  case RuntimeFn::Abort:
    R.ExitCode = 134;
    ShouldHalt = true;
    break;
  }
}

namespace {

// Process-global simulator counters (sim.* in obs::counters()). Recorded
// once per run from the per-run totals, so the interpreter's hot loop stays
// untouched; the fused-dispatch share comes from a post-run scan of the
// predecoded text (O(text size), noise next to the run itself).
struct SimCounters {
  obs::Counter &Runs = obs::counters().counter("sim.runs");
  obs::Counter &Instrs = obs::counters().counter("sim.instrs_retired");
  obs::Counter &Dispatches = obs::counters().counter("sim.dispatches");
  obs::Counter &FusedDispatches =
      obs::counters().counter("sim.fused_dispatches");
  obs::Counter &FusedInstrs = obs::counters().counter("sim.fused_instrs");
  obs::Counter &DataAccesses = obs::counters().counter("sim.data_accesses");
  obs::Counter &LoadMisses = obs::counters().counter("sim.load_misses");
  obs::Counter &StoreMisses = obs::counters().counter("sim.store_misses");
  obs::Counter &ICacheMisses = obs::counters().counter("sim.icache_misses");
  obs::Counter &PfIssued = obs::counters().counter("sim.prefetch.issued");
  obs::Counter &PfFills = obs::counters().counter("sim.prefetch.fills");
  obs::Counter &PfUseful = obs::counters().counter("sim.prefetch.useful");
  obs::Counter &PfLate = obs::counters().counter("sim.prefetch.late");
  // JIT engine activity (zero on interpreter-only runs).
  obs::Counter &JitRuns = obs::counters().counter("sim.jit.runs");
  obs::Counter &JitBlocks = obs::counters().counter("sim.jit.blocks_compiled");
  obs::Counter &JitCodeBytes = obs::counters().counter("sim.jit.code_bytes");
  obs::Counter &JitDeopts = obs::counters().counter("sim.jit.deopts");
  obs::Counter &JitInterpRetired =
      obs::counters().counter("sim.jit.interp_retires");
};

SimCounters &simCounters() {
  static SimCounters *G = new SimCounters();
  return *G;
}

} // namespace

RunResult Machine::run() {
  // Build the per-run prefetch engine. Policy::None skips it entirely: the
  // run must be bit-identical to an unarmed one (the prefetch-off control).
  PfEng.reset();
  if (!Opts.PrefetchLoads.empty() &&
      Opts.PrefetchPolicy != prefetch::Policy::None) {
    PfEng = std::make_unique<prefetch::Engine>(
        Opts.PrefetchPolicy, Opts.DCache.BlockBytes, Prog.FlatMap.size());
    for (size_t Flat = 0; Flat != Prog.FlatMap.size(); ++Flat) {
      const InstrRef &Ref = Prog.FlatMap[Flat];
      if (!Opts.PrefetchLoads.count(Ref))
        continue;
      auto HintIt = Opts.PrefetchHints.find(Ref);
      PfEng->addSlot(static_cast<uint32_t>(Flat), Ref,
                     HintIt != Opts.PrefetchHints.end()
                         ? HintIt->second
                         : prefetch::StaticHint{});
    }
    if (Opts.PrefetchPolicy == prefetch::Policy::Oracle)
      PfEng->setOracleTrace(Opts.OracleTrace);
  }

  RunResult R;
  if (UseJit)
    R = runJit();
  else if (Opts.SimulateICache)
    R = PfEng ? runLoop<true, true>() : runLoop<true, false>();
  else
    R = PfEng ? runLoop<false, true>() : runLoop<false, false>();

  // Prefetch accounting lives in the engine (shared by both execution
  // engines); fold it into the result here.
  if (PfEng) {
    const prefetch::EngineStats &PS = PfEng->stats();
    R.PrefetchesIssued = PS.Issued;
    R.PrefetchFills = PS.Fills;
    R.PrefetchUseful = PS.Useful;
    R.PrefetchLate = PS.Late;
    R.PrefetchPerPc.reserve(PfEng->numSlots());
    for (size_t S = 0; S != PfEng->numSlots(); ++S) {
      const prefetch::SlotStats &SS = PfEng->slotStats(S);
      R.PrefetchPerPc.push_back(
          {PfEng->slotPc(S), SS.Issued, SS.Useful, SS.Late});
    }
  }

  // Fused-dispatch share. ExecCounts[pc] counts every execution of pc —
  // dispatches of its own handler plus executions as the 2nd/3rd component
  // of an earlier fused head (sequences may overlap: a component position
  // can itself be a rewritten head). Subtracting the component executions
  // left-to-right recovers per-pc dispatch counts exactly; the only slack is
  // the fuel-exhaustion fallback, which runs a head stand-alone at most a
  // couple of times per run.
  uint64_t FusedDispatches = 0, FusedInstrs = 0;
  size_t N = std::min(Prog.Instrs.size(), R.ExecCounts.size());
  std::vector<uint64_t> Cover(N + 3, 0);
  for (size_t I = 0; I != N; ++I) {
    unsigned Comp = xopComponents(Prog.Instrs[I].Op);
    if (Comp == 1)
      continue;
    uint64_t Dispatch =
        R.ExecCounts[I] > Cover[I] ? R.ExecCounts[I] - Cover[I] : 0;
    FusedDispatches += Dispatch;
    FusedInstrs += Dispatch * Comp;
    for (unsigned K = 1; K != Comp; ++K)
      Cover[I + K] += Dispatch;
  }
  SimCounters &C = simCounters();
  C.Runs.inc();
  C.Instrs.add(R.InstrsExecuted);
  C.Dispatches.add(R.InstrsExecuted >= FusedInstrs - FusedDispatches
                       ? R.InstrsExecuted - (FusedInstrs - FusedDispatches)
                       : 0);
  C.FusedDispatches.add(FusedDispatches);
  C.FusedInstrs.add(FusedInstrs);
  C.DataAccesses.add(R.DataAccesses);
  C.LoadMisses.add(R.LoadMisses);
  C.StoreMisses.add(R.StoreMisses);
  C.ICacheMisses.add(R.ICacheMisses);
  C.PfIssued.add(R.PrefetchesIssued);
  C.PfFills.add(R.PrefetchFills);
  C.PfUseful.add(R.PrefetchUseful);
  C.PfLate.add(R.PrefetchLate);
  return R;
}

/// The JIT-driven run. Same preamble as runLoop (globals, register reset,
/// entry protocol), with execution delegated to jit::Engine: hot blocks run
/// as compiled x86-64, everything else through the engine's built-in
/// fallback interpreter. Results are bit-identical to runLoop by contract —
/// the differential fuzzer's oracle 6 holds both engines to that.
RunResult Machine::runJit() {
  RunResult R;
  const uint64_t FlatCount = Prog.FlatMap.size();
  R.ExecCounts.assign(FlatCount, 0);
  R.MissCounts.assign(FlatCount, 0);
  R.FlatMap = Prog.FlatMap;

  // Materialize global initializers.
  for (const Global &G : M.globals()) {
    uint32_t Addr = L.globalAddress(G.Name);
    if (!G.Init.empty())
      Mem.writeBlock(Addr, G.Init.data(), static_cast<uint32_t>(G.Init.size()));
  }

  Cache DCache(Opts.DCache);

  // Initial machine state (the runLoop entry protocol, verbatim).
  constexpr uint32_t ExitPc = 0xFFFFFFFC;
  for (uint32_t &RegSlot : Regs)
    RegSlot = 0;
  writeReg(Reg::SP, LayoutConstants::StackTop);
  writeReg(Reg::FP, LayoutConstants::StackTop);
  writeReg(Reg::GP, LayoutConstants::GpValue);
  writeReg(Reg::RA, ExitPc);
  for (size_t AI = 0; AI != Opts.Args.size() && AI != 4; ++AI)
    writeReg(static_cast<Reg>(static_cast<unsigned>(Reg::A0) + AI),
             static_cast<uint32_t>(Opts.Args[AI]));

  uint32_t MainIdx = M.functionIndex("main");
  if (MainIdx == InvalidIndex) {
    R.Halt = HaltReason::Trapped;
    R.TrapMessage = "no 'main' function";
    return R;
  }

  jit::EngineOptions EOpts;
  EOpts.HotThreshold = Opts.JitHotThreshold;
  jit::EngineCallbacks ECbs;
  ECbs.RuntimeCall = [this, &R](uint32_t Fn) {
    bool ShouldHalt = false;
    handleRuntimeCall(static_cast<RuntimeFn>(Fn), R, ShouldHalt);
    return ShouldHalt;
  };
  ECbs.SymAt = [this](uint64_t Pc) {
    return M.instrAt(Prog.FlatMap[Pc]).Sym;
  };
  jit::Engine E(Prog, Mem, DCache, Regs, Opts.MaxInstrs,
                Opts.DCache.BlockBytes, PfEng.get(), EOpts, std::move(ECbs));

  if (Opts.JitFromAnalysis) {
    std::vector<uint32_t> Leaders;
    for (const absint::HotBlock &H :
         absint::provenHotBlocks(M, L, Opts.JitHotThreshold))
      Leaders.push_back(Prog.FuncEntryFlat[H.FuncIdx] + H.InstrIdx);
    E.precompile(Leaders);
  }

  E.run(Prog.FuncEntryFlat[MainIdx], R);

  const jit::EngineStats &S = E.stats();
  SimCounters &C = simCounters();
  C.JitRuns.inc();
  C.JitBlocks.add(S.BlocksCompiled);
  C.JitCodeBytes.add(S.CodeBytes);
  C.JitDeopts.add(S.Deopts);
  C.JitInterpRetired.add(S.InterpRetired);
  return R;
}

/// The interpreter proper. Token-threaded dispatch: every handler begins
/// with its own copy of the per-instruction accounting (fuel check, counter
/// updates, optional I-cache access) and ends with its own tiny indirect
/// jump through a label table indexed by the next instruction's XOp. Keeping
/// the jump at the end of every handler (rather than one shared loop head)
/// gives each opcode an independently predicted indirect branch. The
/// accounting order — fuel, bounds, counters, I-cache, execute — matches the
/// seed interpreter exactly, as do all trap messages; the bounds check rides
/// on the decoder's OutOfText sentinel, with explicit re-checks only where a
/// target is data-dependent (jr/jalr) or decoder-provided (branches).
template <bool WithICache, bool WithPf> RunResult Machine::runLoop() {
  RunResult R;
  const uint64_t FlatCount = Prog.FlatMap.size();
  R.ExecCounts.assign(FlatCount, 0);
  R.MissCounts.assign(FlatCount, 0);
  R.FlatMap = Prog.FlatMap;

  // Materialize global initializers.
  for (const Global &G : M.globals()) {
    uint32_t Addr = L.globalAddress(G.Name);
    if (!G.Init.empty())
      Mem.writeBlock(Addr, G.Init.data(), static_cast<uint32_t>(G.Init.size()));
  }

  Cache DCache(Opts.DCache);
  Cache ICacheModel(Opts.ICache);

  // Initial machine state.
  constexpr uint32_t ExitPc = 0xFFFFFFFC;
  for (uint32_t &RegSlot : Regs)
    RegSlot = 0;
  writeReg(Reg::SP, LayoutConstants::StackTop);
  writeReg(Reg::FP, LayoutConstants::StackTop);
  writeReg(Reg::GP, LayoutConstants::GpValue);
  writeReg(Reg::RA, ExitPc);
  for (size_t AI = 0; AI != Opts.Args.size() && AI != 4; ++AI)
    writeReg(static_cast<Reg>(static_cast<unsigned>(Reg::A0) + AI),
             static_cast<uint32_t>(Opts.Args[AI]));

  uint32_t MainIdx = M.functionIndex("main");
  if (MainIdx == InvalidIndex) {
    R.Halt = HaltReason::Trapped;
    R.TrapMessage = "no 'main' function";
    return R;
  }

  // Hot counters live in locals; flushed into R at every exit.
  const DecodedInstr *Code = Prog.Instrs.data();
  uint64_t *ExecCounts = R.ExecCounts.data();
  uint64_t *MissCounts = R.MissCounts.data();
  const uint64_t MaxInstrs = Opts.MaxInstrs;
  // Prefetch accounting lives inside the engine; run() folds it into R.
  prefetch::Engine *const Pf = PfEng.get();
  (void)Pf;

  uint64_t Executed = 0;
  uint64_t DataAccesses = 0;
  uint64_t LoadMisses = 0;
  uint64_t StoreMisses = 0;
  uint64_t ICacheMisses = 0;

  auto flushCounters = [&] {
    R.InstrsExecuted = Executed;
    R.DataAccesses = DataAccesses;
    R.LoadMisses = LoadMisses;
    R.StoreMisses = StoreMisses;
    R.ICacheMisses = ICacheMisses;
  };
  auto trap = [&](std::string Message) {
    R.Halt = HaltReason::Trapped;
    R.TrapMessage = std::move(Message);
    flushCounters();
  };
  /// Original symbol of the instruction at \p Pc — trap-path only.
  auto symAt = [&](uint64_t Pc) -> const std::string & {
    return M.instrAt(Prog.FlatMap[Pc]).Sym;
  };

  // Label table, indexed by XOp. Must list every XOp in declaration order.
  static const void *Table[NumXOps] = {
      &&L_Add,  &&L_Sub,   &&L_Mul,  &&L_Div,  &&L_Rem,  &&L_And,
      &&L_Or,   &&L_Xor,   &&L_Nor,  &&L_Slt,  &&L_Sltu, &&L_Sllv,
      &&L_Srlv, &&L_Srav,  &&L_Addi, &&L_Andi, &&L_Ori,  &&L_Xori,
      &&L_Slti, &&L_Sltiu, &&L_Sll,  &&L_Srl,  &&L_Sra,  &&L_Lui,
      &&L_Li,   &&L_Move,  &&L_Lw,   &&L_Lh,   &&L_Lhu,  &&L_Lb,
      &&L_Lbu,  &&L_Sw,    &&L_Sh,   &&L_Sb,   &&L_Beq,  &&L_Bne,
      &&L_Blt,  &&L_Bge,   &&L_Ble,  &&L_Bgt,  &&L_J,    &&L_Jr,
      &&L_Jalr, &&L_Nop,   &&L_CallFunc,       &&L_CallRuntime,
      &&L_CallUnresolved,  &&L_LaUnresolved,   &&L_PcOutOfText,
      &&L_FuseLwLw,   &&L_FuseSwLw,   &&L_FuseLwSw,   &&L_FuseAddLw,
      &&L_FuseLwAdd,  &&L_FuseAddSw,  &&L_FuseMoveLw, &&L_FuseMoveLi,
      &&L_FuseMoveMove, &&L_FuseLwMove, &&L_FuseAddMove, &&L_FuseMoveSw,
      &&L_FuseLwLwLw, &&L_FuseLwLwSw, &&L_FuseLwLwAdd, &&L_FuseSwLwLw,
      &&L_FuseAddLwLw, &&L_FuseAddSwLw, &&L_FuseLwAddSw, &&L_FuseLwSwLw,
      &&L_FuseSllAdd, &&L_FuseLwSll, &&L_FuseLiLw, &&L_FuseSwMove,
      &&L_FuseLiMove, &&L_FuseMoveSll, &&L_FuseSwJ, &&L_FuseMoveJ,
      &&L_FuseLiBge, &&L_FuseLiBeq, &&L_FuseSwLwLi, &&L_FuseLwSllAdd,
      &&L_FuseLwLiBge, &&L_FuseLwLiBeq, &&L_FuseLwSwJ,
  };
  static_assert(NumXOps == 84, "update the dispatch table with the new XOp");

  uint64_t FlatPc = Prog.FuncEntryFlat[MainIdx];
  const DecodedInstr *I = nullptr;

// Per-instruction accounting, at the head of every handler. The seed checked
// fuel before the pc bounds check; L_PcOutOfText re-checks fuel first to
// keep that order.
#define ENTER()                                                                \
  do {                                                                         \
    if (__builtin_expect(Executed >= MaxInstrs, 0))                            \
      goto L_FuelExhausted;                                                    \
    I = Code + FlatPc;                                                         \
    ++ExecCounts[FlatPc];                                                      \
    ++Executed;                                                                \
    if constexpr (WithICache) {                                                \
      if (!ICacheModel.access(LayoutConstants::TextBase +                      \
                              static_cast<uint32_t>(FlatPc) * 4))              \
        ++ICacheMisses;                                                        \
    }                                                                          \
  } while (0)

// Dispatch on the instruction at FlatPc. Small on purpose: GCC re-duplicates
// the factored computed goto only below a size limit, and one indirect jump
// per handler is the whole point.
#define NEXT() goto *Table[static_cast<size_t>(Code[FlatPc].Op)]

// Transfer to a decoder-provided target. Finalized modules only contain
// in-range targets, but a stale/unverified TargetIndex must still produce
// the seed's "pc out of text" trap rather than read past the sentinel.
#define BRANCH_TO(T)                                                           \
  do {                                                                         \
    FlatPc = (T);                                                              \
    if (__builtin_expect(FlatPc > FlatCount, 0))                               \
      goto L_PcOutOfText;                                                      \
    NEXT();                                                                    \
  } while (0)

// Shared tail of the five load handlers: cache accounting plus the prefetch
// engine hooks on armed runs (onDemand settles useful/late for every access;
// onArmedLoad drives the policy on predicted-delinquent loads).
#define LOAD_EPILOGUE(Addr)                                                    \
  do {                                                                         \
    ++DataAccesses;                                                            \
    bool Hit = DCache.access(Addr);                                            \
    if (!Hit) {                                                                \
      ++LoadMisses;                                                            \
      ++MissCounts[FlatPc];                                                    \
    }                                                                          \
    if constexpr (WithPf) {                                                    \
      Pf->onDemand((Addr), Hit);                                               \
      if (I->Prefetch)                                                         \
        Pf->onArmedLoad(static_cast<uint32_t>(FlatPc), (Addr), Regs[I->Rd],    \
                        Hit, DCache);                                          \
    }                                                                          \
    ++FlatPc;                                                                  \
    NEXT();                                                                    \
  } while (0)

#define STORE_EPILOGUE(Addr)                                                   \
  do {                                                                         \
    ++DataAccesses;                                                            \
    bool Hit = DCache.access(Addr);                                            \
    if (!Hit)                                                                  \
      ++StoreMisses;                                                           \
    if constexpr (WithPf)                                                      \
      Pf->onDemand((Addr), Hit);                                               \
    ++FlatPc;                                                                  \
    NEXT();                                                                    \
  } while (0)

  NEXT();

L_Add:
  ENTER();
  Regs[I->Rd] = Regs[I->Rs] + Regs[I->Rt];
  ++FlatPc;
  NEXT();
L_Sub:
  ENTER();
  Regs[I->Rd] = Regs[I->Rs] - Regs[I->Rt];
  ++FlatPc;
  NEXT();
L_Mul:
  ENTER();
  Regs[I->Rd] = static_cast<uint32_t>(
      static_cast<int64_t>(static_cast<int32_t>(Regs[I->Rs])) *
      static_cast<int32_t>(Regs[I->Rt]));
  ++FlatPc;
  NEXT();
L_Div: {
  ENTER();
  int32_t RsS = static_cast<int32_t>(Regs[I->Rs]);
  int32_t RtS = static_cast<int32_t>(Regs[I->Rt]);
  if (RtS == 0) {
    trap("division by zero");
    return R;
  }
  // INT_MIN / -1 overflows on the host; define it as INT_MIN.
  if (RsS == INT32_MIN && RtS == -1)
    Regs[I->Rd] = static_cast<uint32_t>(INT32_MIN);
  else
    Regs[I->Rd] = static_cast<uint32_t>(RsS / RtS);
  ++FlatPc;
  NEXT();
}
L_Rem: {
  ENTER();
  int32_t RsS = static_cast<int32_t>(Regs[I->Rs]);
  int32_t RtS = static_cast<int32_t>(Regs[I->Rt]);
  if (RtS == 0) {
    trap("remainder by zero");
    return R;
  }
  if (RsS == INT32_MIN && RtS == -1)
    Regs[I->Rd] = 0;
  else
    Regs[I->Rd] = static_cast<uint32_t>(RsS % RtS);
  ++FlatPc;
  NEXT();
}
L_And:
  ENTER();
  Regs[I->Rd] = Regs[I->Rs] & Regs[I->Rt];
  ++FlatPc;
  NEXT();
L_Or:
  ENTER();
  Regs[I->Rd] = Regs[I->Rs] | Regs[I->Rt];
  ++FlatPc;
  NEXT();
L_Xor:
  ENTER();
  Regs[I->Rd] = Regs[I->Rs] ^ Regs[I->Rt];
  ++FlatPc;
  NEXT();
L_Nor:
  ENTER();
  Regs[I->Rd] = ~(Regs[I->Rs] | Regs[I->Rt]);
  ++FlatPc;
  NEXT();
L_Slt:
  ENTER();
  Regs[I->Rd] = static_cast<int32_t>(Regs[I->Rs]) <
                        static_cast<int32_t>(Regs[I->Rt])
                    ? 1
                    : 0;
  ++FlatPc;
  NEXT();
L_Sltu:
  ENTER();
  Regs[I->Rd] = Regs[I->Rs] < Regs[I->Rt] ? 1 : 0;
  ++FlatPc;
  NEXT();
L_Sllv:
  ENTER();
  Regs[I->Rd] = Regs[I->Rs] << (Regs[I->Rt] & 31);
  ++FlatPc;
  NEXT();
L_Srlv:
  ENTER();
  Regs[I->Rd] = Regs[I->Rs] >> (Regs[I->Rt] & 31);
  ++FlatPc;
  NEXT();
L_Srav:
  ENTER();
  Regs[I->Rd] = static_cast<uint32_t>(static_cast<int32_t>(Regs[I->Rs]) >>
                                      (Regs[I->Rt] & 31));
  ++FlatPc;
  NEXT();
L_Addi:
  ENTER();
  Regs[I->Rd] = Regs[I->Rs] + static_cast<uint32_t>(I->Imm);
  ++FlatPc;
  NEXT();
L_Andi:
  ENTER();
  Regs[I->Rd] = Regs[I->Rs] & static_cast<uint32_t>(I->Imm);
  ++FlatPc;
  NEXT();
L_Ori:
  ENTER();
  Regs[I->Rd] = Regs[I->Rs] | static_cast<uint32_t>(I->Imm);
  ++FlatPc;
  NEXT();
L_Xori:
  ENTER();
  Regs[I->Rd] = Regs[I->Rs] ^ static_cast<uint32_t>(I->Imm);
  ++FlatPc;
  NEXT();
L_Slti:
  ENTER();
  Regs[I->Rd] = static_cast<int32_t>(Regs[I->Rs]) < I->Imm ? 1 : 0;
  ++FlatPc;
  NEXT();
L_Sltiu:
  ENTER();
  Regs[I->Rd] = Regs[I->Rs] < static_cast<uint32_t>(I->Imm) ? 1 : 0;
  ++FlatPc;
  NEXT();
L_Sll:
  ENTER();
  Regs[I->Rd] = Regs[I->Rs] << (static_cast<uint32_t>(I->Imm) & 31);
  ++FlatPc;
  NEXT();
L_Srl:
  ENTER();
  Regs[I->Rd] = Regs[I->Rs] >> (static_cast<uint32_t>(I->Imm) & 31);
  ++FlatPc;
  NEXT();
L_Sra:
  ENTER();
  Regs[I->Rd] = static_cast<uint32_t>(static_cast<int32_t>(Regs[I->Rs]) >>
                                      (static_cast<uint32_t>(I->Imm) & 31));
  ++FlatPc;
  NEXT();
L_Lui:
  ENTER();
  Regs[I->Rd] = static_cast<uint32_t>(I->Imm) << 16;
  ++FlatPc;
  NEXT();
L_Li: // Also carries `la` with the address materialized.
  ENTER();
  Regs[I->Rd] = static_cast<uint32_t>(I->Imm);
  ++FlatPc;
  NEXT();
L_Move:
  ENTER();
  Regs[I->Rd] = Regs[I->Rs];
  ++FlatPc;
  NEXT();
L_Lw: {
  ENTER();
  uint32_t Addr = Regs[I->Rs] + static_cast<uint32_t>(I->Imm);
  Regs[I->Rd] = Mem.readWord(Addr);
  LOAD_EPILOGUE(Addr);
}
L_Lh: {
  ENTER();
  uint32_t Addr = Regs[I->Rs] + static_cast<uint32_t>(I->Imm);
  Regs[I->Rd] = static_cast<uint32_t>(
      static_cast<int32_t>(static_cast<int16_t>(Mem.readHalf(Addr))));
  LOAD_EPILOGUE(Addr);
}
L_Lhu: {
  ENTER();
  uint32_t Addr = Regs[I->Rs] + static_cast<uint32_t>(I->Imm);
  Regs[I->Rd] = Mem.readHalf(Addr);
  LOAD_EPILOGUE(Addr);
}
L_Lb: {
  ENTER();
  uint32_t Addr = Regs[I->Rs] + static_cast<uint32_t>(I->Imm);
  Regs[I->Rd] = static_cast<uint32_t>(
      static_cast<int32_t>(static_cast<int8_t>(Mem.readByte(Addr))));
  LOAD_EPILOGUE(Addr);
}
L_Lbu: {
  ENTER();
  uint32_t Addr = Regs[I->Rs] + static_cast<uint32_t>(I->Imm);
  Regs[I->Rd] = Mem.readByte(Addr);
  LOAD_EPILOGUE(Addr);
}
L_Sw: {
  ENTER();
  uint32_t Addr = Regs[I->Rs] + static_cast<uint32_t>(I->Imm);
  Mem.writeWord(Addr, Regs[I->Rt]);
  STORE_EPILOGUE(Addr);
}
L_Sh: {
  ENTER();
  uint32_t Addr = Regs[I->Rs] + static_cast<uint32_t>(I->Imm);
  Mem.writeHalf(Addr, static_cast<uint16_t>(Regs[I->Rt]));
  STORE_EPILOGUE(Addr);
}
L_Sb: {
  ENTER();
  uint32_t Addr = Regs[I->Rs] + static_cast<uint32_t>(I->Imm);
  Mem.writeByte(Addr, static_cast<uint8_t>(Regs[I->Rt]));
  STORE_EPILOGUE(Addr);
}
L_Beq:
  ENTER();
  if (Regs[I->Rs] == Regs[I->Rt])
    BRANCH_TO(I->Target);
  ++FlatPc;
  NEXT();
L_Bne:
  ENTER();
  if (Regs[I->Rs] != Regs[I->Rt])
    BRANCH_TO(I->Target);
  ++FlatPc;
  NEXT();
L_Blt:
  ENTER();
  if (static_cast<int32_t>(Regs[I->Rs]) < static_cast<int32_t>(Regs[I->Rt]))
    BRANCH_TO(I->Target);
  ++FlatPc;
  NEXT();
L_Bge:
  ENTER();
  if (static_cast<int32_t>(Regs[I->Rs]) >= static_cast<int32_t>(Regs[I->Rt]))
    BRANCH_TO(I->Target);
  ++FlatPc;
  NEXT();
L_Ble:
  ENTER();
  if (static_cast<int32_t>(Regs[I->Rs]) <= static_cast<int32_t>(Regs[I->Rt]))
    BRANCH_TO(I->Target);
  ++FlatPc;
  NEXT();
L_Bgt:
  ENTER();
  if (static_cast<int32_t>(Regs[I->Rs]) > static_cast<int32_t>(Regs[I->Rt]))
    BRANCH_TO(I->Target);
  ++FlatPc;
  NEXT();
L_J:
  ENTER();
  BRANCH_TO(I->Target);
L_Jr: {
  ENTER();
  uint32_t Target = Regs[I->Rs];
  if (Target == ExitPc) {
    R.ExitCode = static_cast<int32_t>(readReg(Reg::V0));
    flushCounters();
    return R;
  }
  if (Target < LayoutConstants::TextBase || (Target & 3) != 0) {
    trap(formatString("jr to bad address 0x%08x", Target));
    return R;
  }
  BRANCH_TO((Target - LayoutConstants::TextBase) / 4);
}
L_Jalr: {
  ENTER();
  uint32_t Target = Regs[I->Rs];
  if (Target < LayoutConstants::TextBase || (Target & 3) != 0) {
    trap(formatString("jalr to bad address 0x%08x", Target));
    return R;
  }
  writeReg(Reg::RA,
           LayoutConstants::TextBase + static_cast<uint32_t>(FlatPc + 1) * 4);
  BRANCH_TO((Target - LayoutConstants::TextBase) / 4);
}
L_Nop:
  ENTER();
  ++FlatPc;
  NEXT();
L_CallFunc:
  ENTER();
  writeReg(Reg::RA,
           LayoutConstants::TextBase + static_cast<uint32_t>(FlatPc + 1) * 4);
  BRANCH_TO(I->Target);
L_CallRuntime: {
  ENTER();
  bool ShouldHalt = false;
  handleRuntimeCall(static_cast<RuntimeFn>(I->Target), R, ShouldHalt);
  if (ShouldHalt) {
    flushCounters();
    return R;
  }
  ++FlatPc;
  NEXT();
}
L_CallUnresolved:
  ENTER();
  trap("call to unknown function '" + symAt(FlatPc) + "'");
  return R;
L_LaUnresolved:
  ENTER();
  trap("la of unknown symbol '" + symAt(FlatPc) + "'");
  return R;

// Component bodies for the fused-pair handlers, mirroring the stand-alone
// handlers exactly. \p IP is the component's DecodedInstr, \p PcOff its
// offset from FlatPc (for the per-pc miss counters).
#define DO_LW(IP, PcOff)                                                       \
  do {                                                                         \
    uint32_t Addr = Regs[(IP)->Rs] + static_cast<uint32_t>((IP)->Imm);         \
    Regs[(IP)->Rd] = Mem.readWord(Addr);                                       \
    ++DataAccesses;                                                            \
    bool Hit = DCache.access(Addr);                                            \
    if (!Hit) {                                                                \
      ++LoadMisses;                                                            \
      ++MissCounts[FlatPc + (PcOff)];                                          \
    }                                                                          \
    if constexpr (WithPf) {                                                    \
      Pf->onDemand(Addr, Hit);                                                 \
      if ((IP)->Prefetch)                                                      \
        Pf->onArmedLoad(static_cast<uint32_t>(FlatPc + (PcOff)), Addr,         \
                        Regs[(IP)->Rd], Hit, DCache);                          \
    }                                                                          \
  } while (0)

#define DO_SW(IP)                                                              \
  do {                                                                         \
    uint32_t Addr = Regs[(IP)->Rs] + static_cast<uint32_t>((IP)->Imm);         \
    Mem.writeWord(Addr, Regs[(IP)->Rt]);                                       \
    ++DataAccesses;                                                            \
    bool Hit = DCache.access(Addr);                                            \
    if (!Hit)                                                                  \
      ++StoreMisses;                                                           \
    if constexpr (WithPf)                                                      \
      Pf->onDemand(Addr, Hit);                                                 \
  } while (0)

#define DO_ADD(IP) Regs[(IP)->Rd] = Regs[(IP)->Rs] + Regs[(IP)->Rt]
#define DO_MOVE(IP) Regs[(IP)->Rd] = Regs[(IP)->Rs]
#define DO_LI(IP) Regs[(IP)->Rd] = static_cast<uint32_t>((IP)->Imm)

// A fused pair: account for both components up front, run both bodies, fall
// through. When fewer than two instructions of fuel remain, fall back to the
// first component's stand-alone handler (whose ENTER re-checks fuel), so
// fuel exhaustion halts between the components exactly as unfused execution
// would.
#define FUSED2(Name, Fallback, Comp1, Comp2)                                   \
  L_##Name : {                                                                 \
    if (__builtin_expect(Executed + 2 > MaxInstrs, 0))                         \
      goto Fallback;                                                           \
    I = Code + FlatPc;                                                         \
    ++ExecCounts[FlatPc];                                                      \
    ++ExecCounts[FlatPc + 1];                                                  \
    Executed += 2;                                                             \
    if constexpr (WithICache) {                                                \
      if (!ICacheModel.access(LayoutConstants::TextBase +                      \
                              static_cast<uint32_t>(FlatPc) * 4))              \
        ++ICacheMisses;                                                        \
      if (!ICacheModel.access(LayoutConstants::TextBase +                      \
                              static_cast<uint32_t>(FlatPc + 1) * 4))          \
        ++ICacheMisses;                                                        \
    }                                                                          \
    Comp1;                                                                     \
    Comp2;                                                                     \
    FlatPc += 2;                                                               \
    NEXT();                                                                    \
  }

  FUSED2(FuseLwLw, L_Lw, DO_LW(I, 0), DO_LW(I + 1, 1))
  FUSED2(FuseSwLw, L_Sw, DO_SW(I), DO_LW(I + 1, 1))
  FUSED2(FuseLwSw, L_Lw, DO_LW(I, 0), DO_SW(I + 1))
  FUSED2(FuseAddLw, L_Add, DO_ADD(I), DO_LW(I + 1, 1))
  FUSED2(FuseLwAdd, L_Lw, DO_LW(I, 0), DO_ADD(I + 1))
  FUSED2(FuseAddSw, L_Add, DO_ADD(I), DO_SW(I + 1))
  FUSED2(FuseMoveLw, L_Move, DO_MOVE(I), DO_LW(I + 1, 1))
  FUSED2(FuseMoveLi, L_Move, DO_MOVE(I), DO_LI(I + 1))
  FUSED2(FuseMoveMove, L_Move, DO_MOVE(I), DO_MOVE(I + 1))
  FUSED2(FuseLwMove, L_Lw, DO_LW(I, 0), DO_MOVE(I + 1))
  FUSED2(FuseAddMove, L_Add, DO_ADD(I), DO_MOVE(I + 1))
  FUSED2(FuseMoveSw, L_Move, DO_MOVE(I), DO_SW(I + 1))

// A fused triple; identical contract to FUSED2 with three components.
#define FUSED3(Name, Fallback, Comp1, Comp2, Comp3)                            \
  L_##Name : {                                                                 \
    if (__builtin_expect(Executed + 3 > MaxInstrs, 0))                         \
      goto Fallback;                                                           \
    I = Code + FlatPc;                                                         \
    ++ExecCounts[FlatPc];                                                      \
    ++ExecCounts[FlatPc + 1];                                                  \
    ++ExecCounts[FlatPc + 2];                                                  \
    Executed += 3;                                                             \
    if constexpr (WithICache) {                                                \
      for (uint64_t Off = 0; Off != 3; ++Off)                                  \
        if (!ICacheModel.access(LayoutConstants::TextBase +                    \
                                static_cast<uint32_t>(FlatPc + Off) * 4))      \
          ++ICacheMisses;                                                      \
    }                                                                          \
    Comp1;                                                                     \
    Comp2;                                                                     \
    Comp3;                                                                     \
    FlatPc += 3;                                                               \
    NEXT();                                                                    \
  }

  FUSED3(FuseLwLwLw, L_Lw, DO_LW(I, 0), DO_LW(I + 1, 1), DO_LW(I + 2, 2))
  FUSED3(FuseLwLwSw, L_Lw, DO_LW(I, 0), DO_LW(I + 1, 1), DO_SW(I + 2))
  FUSED3(FuseLwLwAdd, L_Lw, DO_LW(I, 0), DO_LW(I + 1, 1), DO_ADD(I + 2))
  FUSED3(FuseSwLwLw, L_Sw, DO_SW(I), DO_LW(I + 1, 1), DO_LW(I + 2, 2))
  FUSED3(FuseAddLwLw, L_Add, DO_ADD(I), DO_LW(I + 1, 1), DO_LW(I + 2, 2))
  FUSED3(FuseAddSwLw, L_Add, DO_ADD(I), DO_SW(I + 1), DO_LW(I + 2, 2))
  FUSED3(FuseLwAddSw, L_Lw, DO_LW(I, 0), DO_ADD(I + 1), DO_SW(I + 2))
  FUSED3(FuseLwSwLw, L_Lw, DO_LW(I, 0), DO_SW(I + 1), DO_LW(I + 2, 2))

#define DO_SLL(IP)                                                             \
  Regs[(IP)->Rd] = Regs[(IP)->Rs] << (static_cast<uint32_t>((IP)->Imm) & 31)

  FUSED2(FuseSllAdd, L_Sll, DO_SLL(I), DO_ADD(I + 1))
  FUSED2(FuseLwSll, L_Lw, DO_LW(I, 0), DO_SLL(I + 1))
  FUSED2(FuseLiLw, L_Li, DO_LI(I), DO_LW(I + 1, 1))
  FUSED2(FuseSwMove, L_Sw, DO_SW(I), DO_MOVE(I + 1))
  FUSED2(FuseLiMove, L_Li, DO_LI(I), DO_MOVE(I + 1))
  FUSED2(FuseMoveSll, L_Move, DO_MOVE(I), DO_SLL(I + 1))
  FUSED3(FuseSwLwLi, L_Sw, DO_SW(I), DO_LW(I + 1, 1), DO_LI(I + 2))
  FUSED3(FuseLwSllAdd, L_Lw, DO_LW(I, 0), DO_SLL(I + 1), DO_ADD(I + 2))

// A fused sequence ending in a branch or `j`. Identical accounting to
// FUSED2/FUSED3; \p Tail runs last with IB bound to the branch record and
// either BRANCH_TOs away or falls through to the next sequential pc.
#define FUSED2_BR(Name, Fallback, Comp1, Tail)                                 \
  L_##Name : {                                                                 \
    if (__builtin_expect(Executed + 2 > MaxInstrs, 0))                         \
      goto Fallback;                                                           \
    I = Code + FlatPc;                                                         \
    ++ExecCounts[FlatPc];                                                      \
    ++ExecCounts[FlatPc + 1];                                                  \
    Executed += 2;                                                             \
    if constexpr (WithICache) {                                                \
      for (uint64_t Off = 0; Off != 2; ++Off)                                  \
        if (!ICacheModel.access(LayoutConstants::TextBase +                    \
                                static_cast<uint32_t>(FlatPc + Off) * 4))      \
          ++ICacheMisses;                                                      \
    }                                                                          \
    Comp1;                                                                     \
    {                                                                          \
      const DecodedInstr *IB = I + 1;                                          \
      (void)IB;                                                                \
      Tail;                                                                    \
    }                                                                          \
    FlatPc += 2;                                                               \
    NEXT();                                                                    \
  }

#define FUSED3_BR(Name, Fallback, Comp1, Comp2, Tail)                          \
  L_##Name : {                                                                 \
    if (__builtin_expect(Executed + 3 > MaxInstrs, 0))                         \
      goto Fallback;                                                           \
    I = Code + FlatPc;                                                         \
    ++ExecCounts[FlatPc];                                                      \
    ++ExecCounts[FlatPc + 1];                                                  \
    ++ExecCounts[FlatPc + 2];                                                  \
    Executed += 3;                                                             \
    if constexpr (WithICache) {                                                \
      for (uint64_t Off = 0; Off != 3; ++Off)                                  \
        if (!ICacheModel.access(LayoutConstants::TextBase +                    \
                                static_cast<uint32_t>(FlatPc + Off) * 4))      \
          ++ICacheMisses;                                                      \
    }                                                                          \
    Comp1;                                                                     \
    Comp2;                                                                     \
    {                                                                          \
      const DecodedInstr *IB = I + 2;                                          \
      (void)IB;                                                                \
      Tail;                                                                    \
    }                                                                          \
    FlatPc += 3;                                                               \
    NEXT();                                                                    \
  }

#define TAKE_IF(Cond)                                                          \
  do {                                                                         \
    if (Cond)                                                                  \
      BRANCH_TO(IB->Target);                                                   \
  } while (0)

  FUSED2_BR(FuseSwJ, L_Sw, DO_SW(I), BRANCH_TO(IB->Target))
  FUSED2_BR(FuseMoveJ, L_Move, DO_MOVE(I), BRANCH_TO(IB->Target))
  FUSED2_BR(FuseLiBge, L_Li, DO_LI(I),
            TAKE_IF(static_cast<int32_t>(Regs[IB->Rs]) >=
                    static_cast<int32_t>(Regs[IB->Rt])))
  FUSED2_BR(FuseLiBeq, L_Li, DO_LI(I), TAKE_IF(Regs[IB->Rs] == Regs[IB->Rt]))
  FUSED3_BR(FuseLwLiBge, L_Lw, DO_LW(I, 0), DO_LI(I + 1),
            TAKE_IF(static_cast<int32_t>(Regs[IB->Rs]) >=
                    static_cast<int32_t>(Regs[IB->Rt])))
  FUSED3_BR(FuseLwLiBeq, L_Lw, DO_LW(I, 0), DO_LI(I + 1),
            TAKE_IF(Regs[IB->Rs] == Regs[IB->Rt]))
  FUSED3_BR(FuseLwSwJ, L_Lw, DO_LW(I, 0), DO_SW(I + 1), BRANCH_TO(IB->Target))

L_PcOutOfText:
  // The seed's loop head checked fuel before the pc bounds check; preserve
  // that order for runs that exhaust fuel exactly when the pc goes bad.
  if (Executed >= MaxInstrs)
    goto L_FuelExhausted;
  trap(formatString("pc out of text: flat index %llu",
                    static_cast<unsigned long long>(FlatPc)));
  return R;
L_FuelExhausted:
  R.Halt = HaltReason::FuelExhausted;
  flushCounters();
  return R;

#undef ENTER
#undef NEXT
#undef BRANCH_TO
#undef LOAD_EPILOGUE
#undef STORE_EPILOGUE
#undef DO_LW
#undef DO_SW
#undef DO_ADD
#undef DO_MOVE
#undef DO_LI
#undef FUSED2
#undef FUSED3
#undef FUSED2_BR
#undef FUSED3_BR
#undef TAKE_IF
#undef DO_SLL
}
