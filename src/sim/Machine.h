//===- sim/Machine.h - Functional simulator --------------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a masm module instruction by instruction, feeding every data
/// access through the cache model and recording per-PC execution and miss
/// counts — the ground truth the heuristic is validated against, standing in
/// for SimpleScalar's full memory profiling (Section 6). Basic-block entry
/// profiles (Section 4) are derived from the per-PC execution counts.
///
/// The constructor predecodes the module (see sim/Decode.h): symbols are
/// resolved once, so the interpreter loop runs over packed 16-byte records
/// with no string handling on any executed path.
///
/// The runtime environment provides `malloc`, `calloc`, `free`, `rand`,
/// `srand`, `print_int`, `print_char` and `exit` as intercepted calls, the
/// way a simulator intercepts syscalls.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_SIM_MACHINE_H
#define DLQ_SIM_MACHINE_H

#include "masm/Module.h"
#include "masm/Runtime.h"
#include "prefetch/Prefetch.h"
#include "sim/Cache.h"
#include "sim/Decode.h"
#include "sim/Memory.h"
#include "support/Rng.h"

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace dlq {
namespace sim {

/// Why a run stopped.
enum class HaltReason {
  Exited,        ///< main returned or exit() was called.
  FuelExhausted, ///< MaxInstrs reached.
  Trapped,       ///< Bad instruction, bad call, division by zero, ...
};

/// Which execution engine drives a run. Either engine produces bit-identical
/// results (per-PC counters included); the choice is purely about speed.
enum class EngineKind {
  Auto,   ///< JIT when eligible (see MachineOptions::Engine), honoring the
          ///< DLQ_JIT environment variable ("0" forces the interpreter).
  Interp, ///< The token-threaded interpreter, always.
  Jit,    ///< The copy-and-patch JIT; silently falls back to the
          ///< interpreter when the host or the configuration rules it out.
};

/// Parses "auto" / "interp" / "jit" (anything else falls back to Auto).
EngineKind engineKindFromString(const std::string &S);

/// Simulator options.
struct MachineOptions {
  CacheConfig DCache = CacheConfig::baseline();
  /// When true, instruction fetches also go through an I-cache (the paper
  /// uses a split L1; only D-cache numbers feed the analyses).
  bool SimulateICache = false;
  CacheConfig ICache = CacheConfig::baseline();
  uint64_t MaxInstrs = 2'000'000'000;
  uint64_t RandSeed = 1;
  /// Guest-memory backing. Auto = flat 4 GiB mmap when the host allows it;
  /// Paged forces the page-table+TLB fallback. The two must be
  /// bit-identical; the differential fuzzer runs both and compares.
  Memory::Backing MemBacking = Memory::Backing::Auto;
  /// Disables superinstruction fusion in the predecoder, so every
  /// instruction executes through its stand-alone handler. Per-PC counters
  /// must not depend on this; the differential fuzzer checks that too.
  bool NoFusion = false;
  /// Command-line style integer arguments: main(argc-like) receives Args[0]
  /// in $a0, Args[1] in $a1, ... (up to 4).
  std::vector<int32_t> Args;
  /// Loads armed with the PC-indexed prefetch engine — the paper's
  /// motivating application: software prefetching precisely targeted at the
  /// (predicted) delinquent loads. Empty set = no prefetching.
  std::set<masm::InstrRef> PrefetchLoads;
  /// What the engine does per armed execution (prefetch/Prefetch.h). The
  /// default reproduces the original next-line prefetcher, now
  /// direction-aware.
  prefetch::Policy PrefetchPolicy = prefetch::Policy::NextLine;
  /// Static per-pc table seeds for Policy::Pcax (prefetch/Seed.h builds
  /// them from absint/ap facts). Loads without an entry learn from scratch.
  prefetch::HintMap PrefetchHints;
  /// The recorded baseline miss trace a Policy::Oracle run replays. Must
  /// come from a Policy::Record run of the same module and armed set.
  std::shared_ptr<const prefetch::MissTrace> OracleTrace;
  /// Execution engine. The JIT requires the flat memory backing, no
  /// I-cache simulation and an executable-memory host; ineligible
  /// configurations run the interpreter regardless of this setting.
  EngineKind Engine = EngineKind::Auto;
  /// Dispatcher visits of a block leader before the JIT compiles it.
  uint32_t JitHotThreshold = 16;
  /// Precompile loop bodies whose trip counts the abstract interpreter
  /// proved (absint/JitHints.h) instead of waiting for the hotness ramp.
  bool JitFromAnalysis = true;
};

/// Per-load dynamic statistics at one PC.
struct LoadStat {
  uint64_t Execs = 0;
  uint64_t Misses = 0;
};

/// Everything a run produced.
struct RunResult {
  HaltReason Halt = HaltReason::Exited;
  std::string TrapMessage;
  int32_t ExitCode = 0;
  std::string Output; ///< Captured print_* output.

  uint64_t InstrsExecuted = 0;
  uint64_t DataAccesses = 0; ///< Loads + stores reaching the D-cache.
  uint64_t LoadMisses = 0;
  uint64_t StoreMisses = 0;
  uint64_t ICacheMisses = 0;
  uint64_t PrefetchesIssued = 0;
  uint64_t PrefetchFills = 0; ///< Prefetches that brought a new block in.
  uint64_t PrefetchUseful = 0; ///< Filled blocks demand-hit before eviction.
  uint64_t PrefetchLate = 0;   ///< Filled blocks evicted before first use.

  /// Per-armed-pc prefetch accounting (flat ordinal + counters), in flat-pc
  /// order; empty for unarmed runs. Feeds `delinq prefetch` triage.
  struct PcPrefetch {
    uint32_t FlatPc = 0;
    uint64_t Issued = 0;
    uint64_t Useful = 0;
    uint64_t Late = 0;
  };
  std::vector<PcPrefetch> PrefetchPerPc;

  /// Execution count per instruction, indexed by flat instruction ordinal.
  std::vector<uint64_t> ExecCounts;
  /// D-cache misses per load PC, same indexing (zero for non-loads).
  std::vector<uint64_t> MissCounts;
  /// Flat ordinal -> (function, instruction) mapping.
  std::vector<masm::InstrRef> FlatMap;

  /// Total data-cache misses attributable to loads (the paper's
  /// M(P(I), C)).
  uint64_t totalLoadMisses() const { return LoadMisses; }

  /// Per-load stats keyed by InstrRef, for the analyses.
  std::map<masm::InstrRef, LoadStat> loadStats(const masm::Module &M) const;

  bool ok() const { return Halt == HaltReason::Exited; }
};

/// The functional simulator.
class Machine {
public:
  /// \p M must be finalized. The machine keeps references; the module and
  /// layout must outlive it.
  Machine(const masm::Module &M, const masm::Layout &L,
          MachineOptions Options);

  /// Runs from `main` to completion and returns the collected statistics.
  RunResult run();

  /// Whether this machine will execute through the JIT (engine selection is
  /// settled at construction: it affects predecode fusion).
  bool usingJit() const { return UseJit; }

  /// The miss trace a Policy::Record run collected (null otherwise; valid
  /// after run()).
  std::shared_ptr<const prefetch::MissTrace> recordedTrace() const {
    return PfEng ? PfEng->recordedTrace() : nullptr;
  }

private:
  /// The interpreter loop, specialized at compile time on whether an
  /// I-cache is simulated and whether a prefetch engine is armed, so the
  /// common plain configuration pays nothing for either.
  template <bool WithICache, bool WithPf> RunResult runLoop();

  /// The JIT-driven run: same preamble and result contract as runLoop, with
  /// execution delegated to jit::Engine.
  RunResult runJit();

private:
  const masm::Module &M;
  const masm::Layout &L;
  MachineOptions Opts;

  DecodedProgram Prog;
  /// Settled in the constructor (the JIT needs an unfused predecode).
  bool UseJit = false;
  /// The per-run prefetch engine; null unless PrefetchLoads is non-empty.
  /// Built at the top of run(), kept alive for recordedTrace().
  std::unique_ptr<prefetch::Engine> PfEng;

  Memory Mem;
  /// Register file plus one extra slot: Regs[DiscardReg] absorbs writes the
  /// decoder retargeted from $zero (see sim/Decode.h). Regs[0] is never
  /// written after reset and stays 0.
  uint32_t Regs[masm::NumRegs + 1] = {};
  Rng Rand{1};

  // Heap allocator state (first-fit free lists by exact size).
  uint32_t HeapBreak = masm::LayoutConstants::HeapBase;
  std::map<uint32_t, std::vector<uint32_t>> FreeLists;
  std::map<uint32_t, uint32_t> AllocSizes;

  uint32_t readReg(masm::Reg R) const {
    return Regs[static_cast<unsigned>(R)];
  }
  void writeReg(masm::Reg R, uint32_t V) {
    if (R != masm::Reg::Zero)
      Regs[static_cast<unsigned>(R)] = V;
  }

  /// Applies a call to a runtime-provided function.
  void handleRuntimeCall(masm::RuntimeFn F, RunResult &R, bool &ShouldHalt);

  uint32_t runtimeMalloc(uint32_t Size);
  void runtimeFree(uint32_t Addr);
};

} // namespace sim
} // namespace dlq

#endif // DLQ_SIM_MACHINE_H
