//===- sim/Memory.cpp ------------------------------------------------------==//

#include "sim/Memory.h"

using namespace dlq;
using namespace dlq::sim;

const Memory::Page *Memory::lookupPage(uint32_t Addr) const {
  auto It = Pages.find(Addr / PageBytes);
  return It == Pages.end() ? nullptr : It->second.get();
}

Memory::Page &Memory::touchPage(uint32_t Addr) {
  std::unique_ptr<Page> &Slot = Pages[Addr / PageBytes];
  if (!Slot)
    Slot = std::make_unique<Page>();
  return *Slot;
}

uint8_t Memory::readByte(uint32_t Addr) const {
  const Page *P = lookupPage(Addr);
  return P ? P->Bytes[Addr % PageBytes] : 0;
}

void Memory::writeByte(uint32_t Addr, uint8_t Value) {
  touchPage(Addr).Bytes[Addr % PageBytes] = Value;
}

uint16_t Memory::readHalf(uint32_t Addr) const {
  return static_cast<uint16_t>(readByte(Addr)) |
         (static_cast<uint16_t>(readByte(Addr + 1)) << 8);
}

void Memory::writeHalf(uint32_t Addr, uint16_t Value) {
  writeByte(Addr, static_cast<uint8_t>(Value));
  writeByte(Addr + 1, static_cast<uint8_t>(Value >> 8));
}

uint32_t Memory::readWord(uint32_t Addr) const {
  // Fast path for aligned words within one page.
  if (Addr % 4 == 0) {
    if (const Page *P = lookupPage(Addr)) {
      const uint8_t *B = &P->Bytes[Addr % PageBytes];
      return static_cast<uint32_t>(B[0]) | (static_cast<uint32_t>(B[1]) << 8) |
             (static_cast<uint32_t>(B[2]) << 16) |
             (static_cast<uint32_t>(B[3]) << 24);
    }
    return 0;
  }
  return static_cast<uint32_t>(readHalf(Addr)) |
         (static_cast<uint32_t>(readHalf(Addr + 2)) << 16);
}

void Memory::writeWord(uint32_t Addr, uint32_t Value) {
  if (Addr % 4 == 0) {
    uint8_t *B = &touchPage(Addr).Bytes[Addr % PageBytes];
    B[0] = static_cast<uint8_t>(Value);
    B[1] = static_cast<uint8_t>(Value >> 8);
    B[2] = static_cast<uint8_t>(Value >> 16);
    B[3] = static_cast<uint8_t>(Value >> 24);
    return;
  }
  writeHalf(Addr, static_cast<uint16_t>(Value));
  writeHalf(Addr + 2, static_cast<uint16_t>(Value >> 16));
}

void Memory::writeBlock(uint32_t Addr, const uint8_t *Src, uint32_t Size) {
  for (uint32_t I = 0; I != Size; ++I)
    writeByte(Addr + I, Src[I]);
}
