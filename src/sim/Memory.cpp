//===- sim/Memory.cpp ------------------------------------------------------==//

#include "sim/Memory.h"

#include <algorithm>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define DLQ_SIM_HAVE_MMAP 1
#endif

using namespace dlq;
using namespace dlq::sim;

/// The whole 32-bit guest address space.
static constexpr uint64_t FlatBytes = uint64_t(1) << 32;

Memory::Memory(Backing B) {
  for (TlbEntry &E : Tlb)
    E.PageNum = NoPage;
#if DLQ_SIM_HAVE_MMAP
  if (B == Backing::Auto) {
    // A reservation, not a commitment: MAP_NORESERVE + demand paging means
    // only touched host pages ever consume memory, exactly like the page
    // table would, and untouched bytes read as zero.
    void *P = mmap(nullptr, FlatBytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (P != MAP_FAILED) {
      Flat = static_cast<uint8_t *>(P);
#ifdef MADV_HUGEPAGE
      // Let the kernel back touched runs with huge pages; a pointer-chasing
      // guest otherwise pays a host dTLB walk per guest page.
      madvise(Flat, FlatBytes, MADV_HUGEPAGE);
#endif
    }
    // else: fall back to the paged backing.
  }
#else
  (void)B;
#endif
}

Memory::~Memory() {
#if DLQ_SIM_HAVE_MMAP
  if (Flat)
    munmap(Flat, FlatBytes);
#endif
}

void Memory::writeBlock(uint32_t Addr, const uint8_t *Src, uint32_t Size) {
  if (Flat) {
    // At most one wrap at the top of the address space.
    uint64_t ToEnd = FlatBytes - Addr;
    uint32_t First = static_cast<uint32_t>(std::min<uint64_t>(Size, ToEnd));
    std::memcpy(Flat + Addr, Src, First);
    if (Size != First)
      std::memcpy(Flat, Src + First, Size - First);
    return;
  }
  while (Size != 0) {
    uint32_t Offset = Addr % PageBytes;
    uint32_t Chunk = std::min(PageBytes - Offset, Size);
    std::memcpy(&materializePage(Addr / PageBytes).Bytes[Offset], Src, Chunk);
    Addr += Chunk; // May wrap, like the byte-wise loop it replaces.
    Src += Chunk;
    Size -= Chunk;
  }
}

void Memory::zeroFill(uint32_t Addr, uint32_t Size) {
  if (Flat) {
    uint64_t ToEnd = FlatBytes - Addr;
    uint32_t First = static_cast<uint32_t>(std::min<uint64_t>(Size, ToEnd));
    std::memset(Flat + Addr, 0, First);
    if (Size != First)
      std::memset(Flat, 0, Size - First);
    return;
  }
  while (Size != 0) {
    uint32_t Offset = Addr % PageBytes;
    uint32_t Chunk = std::min(PageBytes - Offset, Size);
    std::memset(&materializePage(Addr / PageBytes).Bytes[Offset], 0, Chunk);
    Addr += Chunk;
    Size -= Chunk;
  }
}
