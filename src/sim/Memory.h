//===- sim/Memory.h - Sparse simulated memory ------------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sparse, page-granular 32-bit byte-addressable memory for the functional
/// simulator. Unmapped pages read as zero and are materialized on write.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_SIM_MEMORY_H
#define DLQ_SIM_MEMORY_H

#include <cstdint>
#include <memory>
#include <unordered_map>

namespace dlq {
namespace sim {

/// Sparse paged memory. Little-endian, like MIPS in its common configuration
/// (and like SimpleScalar's PISA).
class Memory {
public:
  uint8_t readByte(uint32_t Addr) const;
  void writeByte(uint32_t Addr, uint8_t Value);

  uint16_t readHalf(uint32_t Addr) const;
  void writeHalf(uint32_t Addr, uint16_t Value);

  uint32_t readWord(uint32_t Addr) const;
  void writeWord(uint32_t Addr, uint32_t Value);

  /// Copies \p Size bytes from \p Src into memory at \p Addr.
  void writeBlock(uint32_t Addr, const uint8_t *Src, uint32_t Size);

  /// Number of materialized pages (for tests / footprint reporting).
  size_t numPages() const { return Pages.size(); }

  static constexpr uint32_t PageBytes = 4096;

private:
  struct Page {
    uint8_t Bytes[PageBytes] = {};
  };

  const Page *lookupPage(uint32_t Addr) const;
  Page &touchPage(uint32_t Addr);

  std::unordered_map<uint32_t, std::unique_ptr<Page>> Pages;
};

} // namespace sim
} // namespace dlq

#endif // DLQ_SIM_MEMORY_H
