//===- sim/Memory.h - Sparse simulated memory ------------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sparse 32-bit byte-addressable memory for the functional simulator.
/// Unmapped bytes read as zero and are materialized on write.
///
/// Two backings implement that contract:
///
///  - **Flat** (the default where the host allows it): one 4 GiB anonymous
///    `mmap` reservation covering the whole guest address space, so a guest
///    access is a single host load/store at `Flat + Addr`. The host kernel's
///    demand paging provides the sparse zero-fill semantics; `MAP_NORESERVE`
///    keeps the reservation free until touched. This is the user-mode
///    simulator's standard trick: it removes the translation lookup from the
///    critical path, which matters most for pointer-chasing guests whose next
///    address depends on the previous load's value.
///
///  - **Paged** (fallback, and always available for tests): a page table of
///    4 KiB pages behind a small direct-mapped translation cache — the
///    simulator analog of a TLB — so the hash lookup is paid only on the
///    first touch of a page per TLB slot. Pages never move or die (the table
///    holds them by `unique_ptr`), so cached pointers stay valid for the
///    lifetime of the `Memory`.
///
/// Both backings give bit-identical guest semantics, including byte-wise
/// address wrap-around at the top of the 32-bit space for unaligned
/// accesses. Aligned word/half accesses move whole values with `memcpy`
/// instead of assembling bytes.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_SIM_MEMORY_H
#define DLQ_SIM_MEMORY_H

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

namespace dlq {
namespace sim {

/// Sparse paged memory. Little-endian, like MIPS in its common configuration
/// (and like SimpleScalar's PISA).
class Memory {
public:
  /// Backing selection. `Auto` reserves the flat 4 GiB mapping and falls
  /// back to the page table if the reservation fails; `Paged` forces the
  /// page-table backing (used by tests to cover the fallback, and the only
  /// behavior on hosts without `mmap`).
  enum class Backing { Auto, Paged };

  explicit Memory(Backing B = Backing::Auto);
  ~Memory();
  Memory(const Memory &) = delete;
  Memory &operator=(const Memory &) = delete;

  uint8_t readByte(uint32_t Addr) const {
    if (Flat)
      return Flat[Addr];
    const Page *P = findPage(Addr / PageBytes);
    return P ? P->Bytes[Addr % PageBytes] : 0;
  }

  void writeByte(uint32_t Addr, uint8_t Value) {
    if (Flat) {
      Flat[Addr] = Value;
      return;
    }
    materializePage(Addr / PageBytes).Bytes[Addr % PageBytes] = Value;
  }

  uint16_t readHalf(uint32_t Addr) const {
    if (Addr % 2 == 0) {
      // An aligned half never crosses the top of the address space.
      if (Flat)
        return loadLe16(Flat + Addr);
      const Page *P = findPage(Addr / PageBytes);
      return P ? loadLe16(&P->Bytes[Addr % PageBytes]) : 0;
    }
    return static_cast<uint16_t>(readByte(Addr) |
                                 (readByte(Addr + 1) << 8));
  }

  void writeHalf(uint32_t Addr, uint16_t Value) {
    if (Addr % 2 == 0) {
      if (Flat) {
        storeLe16(Flat + Addr, Value);
        return;
      }
      storeLe16(&materializePage(Addr / PageBytes).Bytes[Addr % PageBytes],
                Value);
      return;
    }
    writeByte(Addr, static_cast<uint8_t>(Value));
    writeByte(Addr + 1, static_cast<uint8_t>(Value >> 8));
  }

  uint32_t readWord(uint32_t Addr) const {
    if (Addr % 4 == 0) {
      if (Flat)
        return loadLe32(Flat + Addr);
      const Page *P = findPage(Addr / PageBytes);
      return P ? loadLe32(&P->Bytes[Addr % PageBytes]) : 0;
    }
    return static_cast<uint32_t>(readHalf(Addr)) |
           (static_cast<uint32_t>(readHalf(Addr + 2)) << 16);
  }

  void writeWord(uint32_t Addr, uint32_t Value) {
    if (Addr % 4 == 0) {
      if (Flat) {
        storeLe32(Flat + Addr, Value);
        return;
      }
      storeLe32(&materializePage(Addr / PageBytes).Bytes[Addr % PageBytes],
                Value);
      return;
    }
    writeHalf(Addr, static_cast<uint16_t>(Value));
    writeHalf(Addr + 2, static_cast<uint16_t>(Value >> 16));
  }

  /// Copies \p Size bytes from \p Src into memory at \p Addr, wrapping at
  /// the top of the address space like the byte-wise loop it replaces.
  void writeBlock(uint32_t Addr, const uint8_t *Src, uint32_t Size);

  /// Zero-fills \p Size bytes at \p Addr (the calloc path), one memset per
  /// contiguous run. Pages are materialized like a byte-wise write would.
  void zeroFill(uint32_t Addr, uint32_t Size);

  /// Whether the flat 4 GiB backing is active.
  bool isFlat() const { return Flat != nullptr; }

  /// Base of the flat backing (null when paged). The JIT inlines guest
  /// accesses against this pointer; it is stable for the Memory's lifetime.
  uint8_t *flatBase() const { return Flat; }

  /// Number of materialized pages. Only meaningful for the paged backing
  /// (the flat backing leaves materialization to the host kernel and
  /// reports 0).
  size_t numPages() const { return Pages.size(); }

  static constexpr uint32_t PageBytes = 4096;

private:
  struct Page {
    uint8_t Bytes[PageBytes] = {};
  };

  /// Direct-mapped TLB size. 32-bit addresses have at most 2^20 pages, so
  /// NoPage can never collide with a real page number. Page number and page
  /// pointer share one entry so a translation touches a single cache line.
  static constexpr uint32_t TlbEntries = 4096;
  static constexpr uint32_t NoPage = ~0u;
  struct TlbEntry {
    uint32_t PageNum;
    Page *P;
  };

  static uint16_t loadLe16(const uint8_t *B) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    uint16_t V;
    std::memcpy(&V, B, sizeof(V));
    return V;
#else
    return static_cast<uint16_t>(B[0] | (B[1] << 8));
#endif
  }
  static void storeLe16(uint8_t *B, uint16_t V) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    std::memcpy(B, &V, sizeof(V));
#else
    B[0] = static_cast<uint8_t>(V);
    B[1] = static_cast<uint8_t>(V >> 8);
#endif
  }
  static uint32_t loadLe32(const uint8_t *B) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    uint32_t V;
    std::memcpy(&V, B, sizeof(V));
    return V;
#else
    return static_cast<uint32_t>(B[0]) | (static_cast<uint32_t>(B[1]) << 8) |
           (static_cast<uint32_t>(B[2]) << 16) |
           (static_cast<uint32_t>(B[3]) << 24);
#endif
  }
  static void storeLe32(uint8_t *B, uint32_t V) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    std::memcpy(B, &V, sizeof(V));
#else
    B[0] = static_cast<uint8_t>(V);
    B[1] = static_cast<uint8_t>(V >> 8);
    B[2] = static_cast<uint8_t>(V >> 16);
    B[3] = static_cast<uint8_t>(V >> 24);
#endif
  }

  /// Page for reading: nullptr when unmapped (reads as zero, must not
  /// materialize). Only materialized pages enter the TLB.
  const Page *findPage(uint32_t PageNum) const {
    TlbEntry &E = Tlb[PageNum & (TlbEntries - 1)];
    if (E.PageNum == PageNum)
      return E.P;
    auto It = Pages.find(PageNum);
    if (It == Pages.end())
      return nullptr;
    E.PageNum = PageNum;
    E.P = It->second.get();
    return E.P;
  }

  /// Page for writing: materializes on first touch.
  Page &materializePage(uint32_t PageNum) {
    TlbEntry &E = Tlb[PageNum & (TlbEntries - 1)];
    if (E.PageNum == PageNum)
      return *E.P;
    std::unique_ptr<Page> &Slot = Pages[PageNum];
    if (!Slot)
      Slot = std::make_unique<Page>();
    E.PageNum = PageNum;
    E.P = Slot.get();
    return *Slot;
  }

  /// Base of the flat 4 GiB reservation, or nullptr when the paged backing
  /// is in use.
  uint8_t *Flat = nullptr;
  std::unordered_map<uint32_t, std::unique_ptr<Page>> Pages;
  mutable TlbEntry Tlb[TlbEntries];
};

} // namespace sim
} // namespace dlq

#endif // DLQ_SIM_MEMORY_H
