//===- sim/Profile.cpp -----------------------------------------------------==//

#include "sim/Profile.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace dlq;
using namespace dlq::sim;
using namespace dlq::masm;

std::vector<cfg::Cfg> sim::buildAllCfgs(const Module &M) {
  std::vector<cfg::Cfg> Cfgs;
  Cfgs.reserve(M.functions().size());
  for (const Function &F : M.functions())
    Cfgs.emplace_back(F);
  return Cfgs;
}

BlockProfile::BlockProfile(const Module &Mod,
                           const std::vector<cfg::Cfg> &AllCfgs,
                           const RunResult &R)
    : M(Mod), Cfgs(AllCfgs), ExecCounts(R.ExecCounts) {
  assert(Cfgs.size() == M.functions().size() && "one CFG per function");

  uint32_t Base = 0;
  for (const Function &F : M.functions()) {
    FuncBaseFlat.push_back(Base);
    Base += static_cast<uint32_t>(F.size());
  }
  assert(ExecCounts.size() == Base && "exec counts match module size");

  Cycles.resize(Cfgs.size());
  for (uint32_t FI = 0; FI != Cfgs.size(); ++FI) {
    const cfg::Cfg &G = Cfgs[FI];
    Cycles[FI].assign(G.numBlocks(), 0);
    for (uint32_t B = 0; B != G.numBlocks(); ++B) {
      const cfg::BasicBlock &Blk = G.blocks()[B];
      for (uint32_t Idx = Blk.Begin; Idx != Blk.End; ++Idx)
        Cycles[FI][B] += ExecCounts[FuncBaseFlat[FI] + Idx];
      Total += Cycles[FI][B];
    }
  }
}

uint64_t BlockProfile::blockCycles(BlockRef B) const {
  return Cycles[B.FuncIdx][B.BlockId];
}

uint64_t BlockProfile::blockEntries(BlockRef B) const {
  const cfg::BasicBlock &Blk = Cfgs[B.FuncIdx].blocks()[B.BlockId];
  return ExecCounts[FuncBaseFlat[B.FuncIdx] + Blk.Begin];
}

uint64_t BlockProfile::execCount(InstrRef Ref) const {
  return ExecCounts[FuncBaseFlat[Ref.FuncIdx] + Ref.InstrIdx];
}

std::set<BlockRef> BlockProfile::hotspotBlocks(double CoverageFrac) const {
  std::vector<std::pair<uint64_t, BlockRef>> Ranked;
  for (uint32_t FI = 0; FI != Cycles.size(); ++FI)
    for (uint32_t B = 0; B != Cycles[FI].size(); ++B)
      if (Cycles[FI][B] != 0)
        Ranked.push_back({Cycles[FI][B], BlockRef{FI, B}});
  // Sort by descending cycles; break ties by block identity so the result is
  // deterministic.
  std::sort(Ranked.begin(), Ranked.end(),
            [](const auto &A, const auto &B) {
              if (A.first != B.first)
                return A.first > B.first;
              return A.second < B.second;
            });

  std::set<BlockRef> Hot;
  uint64_t Needed = static_cast<uint64_t>(
      std::ceil(static_cast<double>(Total) * CoverageFrac));
  uint64_t Got = 0;
  for (const auto &[Cyc, Ref] : Ranked) {
    if (Got >= Needed)
      break;
    Hot.insert(Ref);
    Got += Cyc;
  }
  return Hot;
}

std::set<InstrRef> BlockProfile::hotspotLoads(double CoverageFrac) const {
  std::set<InstrRef> Loads;
  for (const BlockRef &B : hotspotBlocks(CoverageFrac)) {
    const cfg::BasicBlock &Blk = Cfgs[B.FuncIdx].blocks()[B.BlockId];
    const Function &F = M.functions()[B.FuncIdx];
    for (uint32_t Idx = Blk.Begin; Idx != Blk.End; ++Idx)
      if (isLoad(F.instrs()[Idx].Op))
        Loads.insert(InstrRef{B.FuncIdx, Idx});
  }
  return Loads;
}
