//===- sim/Profile.h - Basic-block execution profiling ----------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derives a basic-block execution profile from a simulation run, in the
/// style of pixie-like tools (Section 4). Block "cycles" are approximated by
/// dynamic instruction counts, which is exactly what entry-count profiling
/// multiplied by block length gives; the paper itself notes this is not the
/// same as true stall cycles (its explanation for 124.m88ksim's poor
/// profiling coverage).
///
/// The hotspot load set Delta_P consists of all loads in the blocks that
/// cumulatively account for a fraction (default 90%) of total cycles.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_SIM_PROFILE_H
#define DLQ_SIM_PROFILE_H

#include "cfg/Cfg.h"
#include "masm/Module.h"
#include "sim/Machine.h"

#include <cstdint>
#include <set>
#include <vector>

namespace dlq {
namespace sim {

/// Identifies one basic block globally.
struct BlockRef {
  uint32_t FuncIdx = 0;
  uint32_t BlockId = 0;

  friend bool operator<(const BlockRef &A, const BlockRef &B) {
    return A.FuncIdx != B.FuncIdx ? A.FuncIdx < B.FuncIdx
                                  : A.BlockId < B.BlockId;
  }
  friend bool operator==(const BlockRef &A, const BlockRef &B) {
    return A.FuncIdx == B.FuncIdx && A.BlockId == B.BlockId;
  }
};

/// Basic-block profile of one run.
class BlockProfile {
public:
  /// \p Cfgs must hold one CFG per module function, in order. The profile
  /// reads \p R's ExecCounts in place (no copy); \p R must outlive it.
  BlockProfile(const masm::Module &M, const std::vector<cfg::Cfg> &Cfgs,
               const RunResult &R);

  /// Dynamic instruction count attributed to \p B.
  uint64_t blockCycles(BlockRef B) const;

  /// Entry count of \p B (execution count of its first instruction).
  uint64_t blockEntries(BlockRef B) const;

  uint64_t totalCycles() const { return Total; }

  /// Blocks whose cumulative cycle counts (descending) reach
  /// \p CoverageFrac of the total.
  std::set<BlockRef> hotspotBlocks(double CoverageFrac) const;

  /// All load instructions inside hotspotBlocks(CoverageFrac): the paper's
  /// profiling set Delta_P.
  std::set<masm::InstrRef> hotspotLoads(double CoverageFrac) const;

  /// Execution count of one instruction.
  uint64_t execCount(masm::InstrRef Ref) const;

private:
  const masm::Module &M;
  const std::vector<cfg::Cfg> &Cfgs;
  /// Per function: flat base index into the run's ExecCounts.
  std::vector<uint32_t> FuncBaseFlat;
  const std::vector<uint64_t> &ExecCounts;
  /// Cycles per (function, block).
  std::vector<std::vector<uint64_t>> Cycles;
  uint64_t Total = 0;
};

/// Builds one CFG per function of \p M (helper shared by analyses).
std::vector<cfg::Cfg> buildAllCfgs(const masm::Module &M);

} // namespace sim
} // namespace dlq

#endif // DLQ_SIM_PROFILE_H
