//===- support/Arena.cpp --------------------------------------------------==//

#include "support/Arena.h"

#include <algorithm>
#include <cassert>

using namespace dlq;

void *Arena::allocate(size_t Size, size_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 && "bad alignment");
  auto alignUp = [](size_t Value, size_t To) {
    return (Value + To - 1) & ~(To - 1);
  };

  if (!Slabs.empty()) {
    Slab &Last = Slabs.back();
    size_t Offset = alignUp(Last.Used, Align);
    if (Offset + Size <= Last.Capacity) {
      Last.Used = Offset + Size;
      BytesAllocated += Size;
      return Last.Memory.get() + Offset;
    }
  }

  size_t Capacity = std::max(SlabSize, Size + Align);
  Slab NewSlab;
  NewSlab.Memory = std::make_unique<char[]>(Capacity);
  NewSlab.Capacity = Capacity;
  Slabs.push_back(std::move(NewSlab));

  Slab &Last = Slabs.back();
  size_t Offset =
      alignUp(reinterpret_cast<uintptr_t>(Last.Memory.get()), Align) -
      reinterpret_cast<uintptr_t>(Last.Memory.get());
  assert(Offset + Size <= Last.Capacity && "slab too small");
  Last.Used = Offset + Size;
  BytesAllocated += Size;
  return Last.Memory.get() + Offset;
}
