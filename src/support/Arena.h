//===- support/Arena.h - Bump-pointer allocation ---------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena used for address-pattern nodes and MinC AST nodes.
/// Objects allocated here are never individually freed; trivially
/// destructible types only.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_SUPPORT_ARENA_H
#define DLQ_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace dlq {

/// Bump-pointer arena. Memory is released when the arena is destroyed.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes with \p Align alignment.
  void *allocate(size_t Size, size_t Align);

  /// Constructs a T in the arena. T must be trivially destructible because
  /// destructors are never run.
  template <typename T, typename... ArgTs> T *create(ArgTs &&...Args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    void *Mem = allocate(sizeof(T), alignof(T));
    return new (Mem) T(std::forward<ArgTs>(Args)...);
  }

  /// Total bytes handed out so far (for tests and statistics).
  size_t bytesAllocated() const { return BytesAllocated; }

private:
  static constexpr size_t SlabSize = 64 * 1024;

  struct Slab {
    std::unique_ptr<char[]> Memory;
    size_t Used = 0;
    size_t Capacity = 0;
  };

  std::vector<Slab> Slabs;
  size_t BytesAllocated = 0;
};

} // namespace dlq

#endif // DLQ_SUPPORT_ARENA_H
