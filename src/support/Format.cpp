//===- support/Format.cpp -------------------------------------------------==//

#include "support/Format.h"

#include <cassert>
#include <cstdio>
#include <vector>

using namespace dlq;

std::string dlq::formatStringV(const char *Fmt, va_list Ap) {
  va_list Copy;
  va_copy(Copy, Ap);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  assert(Needed >= 0 && "invalid format string");
  std::vector<char> Buf(static_cast<size_t>(Needed) + 1);
  std::vsnprintf(Buf.data(), Buf.size(), Fmt, Ap);
  return std::string(Buf.data(), static_cast<size_t>(Needed));
}

std::string dlq::formatString(const char *Fmt, ...) {
  va_list Ap;
  va_start(Ap, Fmt);
  std::string Result = formatStringV(Fmt, Ap);
  va_end(Ap);
  return Result;
}

std::string dlq::formatPercent(double Value, unsigned Decimals) {
  return formatString("%.*f%%", static_cast<int>(Decimals), Value * 100.0);
}

std::string dlq::formatScientific(uint64_t Value) {
  return formatString("%.2e", static_cast<double>(Value));
}

std::string dlq::formatWithCommas(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Result;
  unsigned Count = 0;
  for (auto It = Digits.rbegin(); It != Digits.rend(); ++It) {
    if (Count != 0 && Count % 3 == 0)
      Result.push_back(',');
    Result.push_back(*It);
    ++Count;
  }
  return std::string(Result.rbegin(), Result.rend());
}
