//===- support/Format.h - String formatting helpers ----------------------===//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style std::string formatting and the numeric renderings used by the
/// paper's tables (percentages, scientific counts such as "7.29e+08").
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_SUPPORT_FORMAT_H
#define DLQ_SUPPORT_FORMAT_H

#include <cstdarg>
#include <cstdint>
#include <string>

namespace dlq {

/// Formats \p Fmt printf-style into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// va_list variant of formatString.
std::string formatStringV(const char *Fmt, va_list Ap);

/// Renders \p Value as a percentage with \p Decimals fraction digits,
/// e.g. formatPercent(0.1015, 2) == "10.15%".
std::string formatPercent(double Value, unsigned Decimals = 2);

/// Renders a large count in the paper's Table 2 style, e.g. "7.29e+08".
std::string formatScientific(uint64_t Value);

/// Renders a count with thousands separators, e.g. "16354" -> "16,354".
std::string formatWithCommas(uint64_t Value);

} // namespace dlq

#endif // DLQ_SUPPORT_FORMAT_H
