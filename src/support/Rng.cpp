//===- support/Rng.cpp ----------------------------------------------------==//

#include "support/Rng.h"

#include <cassert>

using namespace dlq;

Rng::Rng(uint64_t Seed) : State(Seed ? Seed : 0x9E3779B97F4A7C15ull) {}

uint64_t Rng::next() {
  State ^= State >> 12;
  State ^= State << 25;
  State ^= State >> 27;
  return State * 0x2545F4914F6CDD1Dull;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "bound must be nonzero");
  return next() % Bound;
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  return Lo + static_cast<int64_t>(nextBelow(Span));
}

double Rng::nextDouble() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}
