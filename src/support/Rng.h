//===- support/Rng.h - Deterministic pseudo-random numbers ----------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seedable xorshift64* generator. Used by workload input generators, the
/// simulator's `rand` runtime call, and the random-sampling rho* baseline so
/// that every experiment is reproducible bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_SUPPORT_RNG_H
#define DLQ_SUPPORT_RNG_H

#include <cstdint>

namespace dlq {

/// Deterministic xorshift64* pseudo-random generator.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull);

  /// Returns the next 64 random bits.
  uint64_t next();

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniformly distributed value in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns a double in [0, 1).
  double nextDouble();

private:
  uint64_t State;
};

} // namespace dlq

#endif // DLQ_SUPPORT_RNG_H
