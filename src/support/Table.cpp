//===- support/Table.cpp --------------------------------------------------==//

#include "support/Table.h"

#include <algorithm>
#include <cassert>

using namespace dlq;

TextTable::TextTable(std::vector<std::string> Hdrs) : Headers(std::move(Hdrs)) {
  Aligns.assign(Headers.size(), AlignKind::Right);
  if (!Aligns.empty())
    Aligns[0] = AlignKind::Left;
}

void TextTable::setAlign(unsigned Col, AlignKind Align) {
  assert(Col < Aligns.size() && "column out of range");
  Aligns[Col] = Align;
}

void TextTable::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() <= Headers.size() && "too many cells in row");
  Cells.resize(Headers.size());
  Rows.push_back(Row{std::move(Cells), /*IsRule=*/false});
}

void TextTable::addRule() { Rows.push_back(Row{{}, /*IsRule=*/true}); }

std::string TextTable::render() const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t I = 0; I != Headers.size(); ++I)
    Widths[I] = Headers[I].size();
  for (const Row &R : Rows) {
    if (R.IsRule)
      continue;
    for (size_t I = 0; I != R.Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], R.Cells[I].size());
  }

  auto renderCell = [&](const std::string &Text, size_t Col) {
    size_t Pad = Widths[Col] - Text.size();
    if (Aligns[Col] == AlignKind::Left)
      return Text + std::string(Pad, ' ');
    return std::string(Pad, ' ') + Text;
  };

  auto renderRule = [&] {
    std::string Line;
    for (size_t I = 0; I != Widths.size(); ++I) {
      Line += std::string(Widths[I] + 2, '-');
      Line += (I + 1 == Widths.size()) ? "\n" : "+";
    }
    return Line;
  };

  std::string Out;
  for (size_t I = 0; I != Headers.size(); ++I) {
    Out += ' ';
    Out += renderCell(Headers[I], I);
    Out += (I + 1 == Headers.size()) ? " \n" : " |";
  }
  Out += renderRule();
  for (const Row &R : Rows) {
    if (R.IsRule) {
      Out += renderRule();
      continue;
    }
    for (size_t I = 0; I != R.Cells.size(); ++I) {
      Out += ' ';
      Out += renderCell(R.Cells[I], I);
      Out += (I + 1 == R.Cells.size()) ? " \n" : " |";
    }
  }
  return Out;
}
