//===- support/Table.h - ASCII table rendering ----------------------------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small column-aligned ASCII table renderer used by every bench binary to
/// print the paper's tables.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_SUPPORT_TABLE_H
#define DLQ_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace dlq {

/// Column-aligned text table. Rows may be data rows or separator rules.
class TextTable {
public:
  enum class AlignKind { Left, Right };

  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> Headers);

  /// Sets the alignment of column \p Col (default: first column left,
  /// remaining columns right).
  void setAlign(unsigned Col, AlignKind Align);

  /// Appends a data row. Missing trailing cells render empty; extra cells
  /// are a programming error.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal rule (drawn before the next data row).
  void addRule();

  /// Renders the table, including a rule under the header.
  std::string render() const;

  /// Number of data rows added so far.
  size_t numRows() const { return Rows.size(); }

private:
  struct Row {
    std::vector<std::string> Cells;
    bool IsRule = false;
  };

  std::vector<std::string> Headers;
  std::vector<AlignKind> Aligns;
  std::vector<Row> Rows;
};

} // namespace dlq

#endif // DLQ_SUPPORT_TABLE_H
