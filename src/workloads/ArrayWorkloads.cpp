//===- workloads/ArrayWorkloads.cpp - strided numeric benchmarks ---------------//
//
// Part of the delinq project. MinC sources for the array-dominated
// workloads: the SPEC analogs whose misses come from strided or gathered
// array traffic (101.tomcatv, 179.art, 183.equake, 188.ammp, 132.ijpeg,
// 008.espresso). Integer arithmetic stands in for floating point — cache
// behaviour depends on the access pattern, not the ALU.
//
//===----------------------------------------------------------------------===//

#include "workloads/Sources.h"

using namespace dlq::workloads;

/// 101.tomcatv analog: a 2-D Jacobi-style stencil alternating between two
/// meshes. Row-major sweeps with unit and $N strides.
const char *sources::TomcatvLike = R"(
int x[$N][$N];
int y[$N][$N];

int workload_main() {
  int i; int j; int it; int checksum;
  srand($SEED);
  for (i = 0; i < $N; i = i + 1)
    for (j = 0; j < $N; j = j + 1) {
      x[i][j] = rand() % 1000;
      y[i][j] = 0;
    }
  for (it = 0; it < $ITERS; it = it + 1) {
    for (i = 1; i < $N - 1; i = i + 1)
      for (j = 1; j < $N - 1; j = j + 1)
        y[i][j] = (x[i - 1][j] + x[i + 1][j] + x[i][j - 1] + x[i][j + 1]
                   + 2 * x[i][j]) / 6;
    for (i = 1; i < $N - 1; i = i + 1)
      for (j = 1; j < $N - 1; j = j + 1)
        x[i][j] = (y[i - 1][j] + y[i + 1][j] + y[i][j - 1] + y[i][j + 1]
                   + 2 * y[i][j]) / 6;
  }
  checksum = 0;
  for (i = 0; i < $N; i = i + 1) checksum = checksum ^ x[i][i];
  print_int(checksum);
  return 0;
}
)";

/// 179.art analog: adaptive-resonance-style recognition: each presentation
/// scans every neuron's weight row (a long strided read), picks the best
/// match, and updates the winner's weights.
const char *sources::ArtLike = R"(
int weights[$NEURONS * $FEATURES];
int input[$FEATURES];

int workload_main() {
  int p; int n; int f; int best; int bestscore; int matched;
  srand($SEED);
  for (n = 0; n < $NEURONS * $FEATURES; n = n + 1)
    weights[n] = rand() % 256;
  matched = 0;
  for (p = 0; p < $PRESENTATIONS; p = p + 1) {
    for (f = 0; f < $FEATURES; f = f + 1) input[f] = rand() % 256;
    best = 0;
    bestscore = -1;
    for (n = 0; n < $NEURONS; n = n + 1) {
      int score; int base;
      score = 0;
      base = n * $FEATURES;
      for (f = 0; f < $FEATURES; f = f + 1) {
        int d;
        d = weights[base + f] - input[f];
        if (d < 0) d = -d;
        score = score + 256 - d;
      }
      if (score > bestscore) { bestscore = score; best = n; }
    }
    /* Train the winner toward the input. */
    for (f = 0; f < $FEATURES; f = f + 1) {
      int base;
      base = best * $FEATURES;
      weights[base + f] = (weights[base + f] * 3 + input[f]) / 4;
    }
    matched = matched + best;
  }
  print_int(matched);
  return 0;
}
)";

/// 183.equake analog: CSR sparse matrix-vector products. The column gather
/// x[colidx[k]] is the delinquent access.
const char *sources::EquakeLike = R"(
int rowptr[$N + 1];
int colidx[$NNZ];
int vals[$NNZ];
int xvec[$N];
int yvec[$N];

int workload_main() {
  int i; int k; int it; int perrow; int checksum;
  srand($SEED);
  perrow = $NNZ / $N;
  for (i = 0; i < $N; i = i + 1) {
    rowptr[i] = i * perrow;
    xvec[i] = rand() % 100;
  }
  rowptr[$N] = $NNZ;
  for (k = 0; k < $NNZ; k = k + 1) {
    colidx[k] = rand() % $N;
    vals[k] = rand() % 16;
  }
  for (it = 0; it < $ITERS; it = it + 1) {
    for (i = 0; i < $N; i = i + 1) {
      int acc; int end;
      acc = 0;
      end = rowptr[i + 1];
      for (k = rowptr[i]; k < end; k = k + 1)
        acc = acc + vals[k] * xvec[colidx[k]];
      yvec[i] = acc;
    }
    /* Feed back so iterations are not dead. */
    for (i = 0; i < $N; i = i + 1)
      xvec[i] = (xvec[i] + yvec[i] / 16) & 1023;
  }
  checksum = 0;
  for (i = 0; i < $N; i = i + 1) checksum = checksum ^ yvec[i];
  print_int(checksum);
  return 0;
}
)";

/// 188.ammp analog: molecular-dynamics force accumulation over per-atom
/// neighbor index lists: positions are gathered through the index array.
const char *sources::AmmpLike = R"(
int posx[$NATOMS];
int posy[$NATOMS];
int posz[$NATOMS];
int fx[$NATOMS];
int neigh[$NATOMS * $NNEIGH];

int workload_main() {
  int a; int k; int step; int checksum;
  srand($SEED);
  for (a = 0; a < $NATOMS; a = a + 1) {
    posx[a] = rand() % 4096;
    posy[a] = rand() % 4096;
    posz[a] = rand() % 4096;
    fx[a] = 0;
  }
  for (k = 0; k < $NATOMS * $NNEIGH; k = k + 1)
    neigh[k] = rand() % $NATOMS;
  for (step = 0; step < $STEPS; step = step + 1) {
    for (a = 0; a < $NATOMS; a = a + 1) {
      int acc; int base;
      acc = 0;
      base = a * $NNEIGH;
      for (k = 0; k < $NNEIGH; k = k + 1) {
        int b; int dx; int dy; int dz;
        b = neigh[base + k];
        dx = posx[a] - posx[b];
        dy = posy[a] - posy[b];
        dz = posz[a] - posz[b];
        acc = acc + (dx * dx + dy * dy + dz * dz) / 1024;
      }
      fx[a] = fx[a] + acc;
    }
    /* Drift the positions a little. */
    for (a = 0; a < $NATOMS; a = a + 1)
      posx[a] = (posx[a] + fx[a] / 4096) & 4095;
  }
  checksum = 0;
  for (a = 0; a < $NATOMS; a = a + 1) checksum = checksum ^ fx[a];
  print_int(checksum);
  return 0;
}
)";

/// 132.ijpeg analog: a blocked 8x8 separable transform over an image, with
/// a small coefficient table that stays cache-resident while the image
/// streams through.
const char *sources::IjpegLike = R"(
int image[$H * $W];
int outimg[$H * $W];
int coef[8][8];

int workload_main() {
  int bi; int bj; int u; int v; int k; int checksum;
  srand($SEED);
  for (u = 0; u < 8; u = u + 1)
    for (v = 0; v < 8; v = v + 1)
      coef[u][v] = (rand() % 64) - 32;
  for (k = 0; k < $H * $W; k = k + 1) image[k] = rand() % 256;

  for (bi = 0; bi < $H; bi = bi + 8) {
    for (bj = 0; bj < $W; bj = bj + 8) {
      /* Row pass within the block. */
      for (u = 0; u < 8; u = u + 1) {
        for (v = 0; v < 8; v = v + 1) {
          int acc;
          acc = 0;
          for (k = 0; k < 8; k = k + 1)
            acc = acc + image[(bi + u) * $W + bj + k] * coef[k][v];
          outimg[(bi + u) * $W + bj + v] = acc >> 6;
        }
      }
    }
  }
  checksum = 0;
  for (k = 0; k < $H * $W; k = k + 257) checksum = checksum ^ outimg[k];
  print_int(checksum);
  return 0;
}
)";

/// 008.espresso analog: two-level logic minimization flavor: bitwise cube
/// intersection/containment over an array of multi-word bitsets, with
/// shift/mask arithmetic.
const char *sources::EspressoLike = R"(
int cubes[$NCUBES * $WORDS];
int cover[$WORDS];

int workload_main() {
  int i; int j; int k; int contained; int checksum;
  srand($SEED);
  for (i = 0; i < $NCUBES * $WORDS; i = i + 1) cubes[i] = rand();
  for (j = 0; j < $WORDS; j = j + 1) cover[j] = 0;
  contained = 0;
  for (k = 0; k < $OPS; k = k + 1) {
    int a; int b; int isin;
    a = (rand() % $NCUBES) * $WORDS;
    b = (rand() % $NCUBES) * $WORDS;
    isin = 1;
    for (j = 0; j < $WORDS; j = j + 1) {
      int x;
      x = cubes[a + j] & cubes[b + j];
      cover[j] = cover[j] ^ (x << (k & 7)) ^ (x >> 3);
      if ((x | cubes[a + j]) != cubes[a + j]) isin = 0;
    }
    contained = contained + isin;
    /* Occasionally rewrite a cube (keeps the data set live). */
    if ((k & 63) == 0)
      for (j = 0; j < $WORDS; j = j + 1)
        cubes[a + j] = cubes[a + j] ^ cover[j];
  }
  checksum = 0;
  for (j = 0; j < $WORDS; j = j + 1) checksum = checksum ^ cover[j];
  print_int(contained);
  print_int(checksum);
  return 0;
}
)";
