//===- workloads/ColdLibrary.cpp - rarely-executed code appendix ----------------//
//
// Part of the delinq project. Every workload is linked with this MinC "cold
// library": validation, bookkeeping and dump routines that execute once (or
// never) per run. Real programs — and especially the SPEC binaries the paper
// measures — consist mostly of such cold code: the static load population
// Lambda is dominated by loads that almost never execute, which is exactly
// what the H5 frequency classes (AG8/AG9) exist to suppress and what purely
// structural classifiers like OKN and BDH cannot tell apart from hot code.
//
// The library is pointer- and array-heavy on purpose: its loads look
// delinquent to structure-only heuristics.
//
// Composition (see workloads::instantiate): ColdPrefix + <workload source
// with `main` renamed to `workload_main`> + ColdSuffix.
//
//===----------------------------------------------------------------------===//

#include "workloads/Sources.h"

using namespace dlq::workloads;

const char *sources::ColdPrefix = R"(
/* ------------------------------------------------------------------ */
/* Cold diagnostic library: executed at most once per run.             */
/* ------------------------------------------------------------------ */

struct ColdNode { int key; int count; struct ColdNode *left;
                  struct ColdNode *right; };
struct ColdEvent { int tag; int value; struct ColdEvent *next; };

int cold_hist[256];
int cold_sorted[128];
int cold_nsorted;
int cold_matrix[32][32];
char cold_text[512];
struct ColdNode *cold_root;
struct ColdEvent *cold_events;

/* Binary search tree insert (heap pointer chasing, never hot). */
void cold_insert(int key) {
  struct ColdNode *n; struct ColdNode *cur;
  n = (struct ColdNode*)malloc(sizeof(struct ColdNode));
  n->key = key;
  n->count = 1;
  n->left = 0;
  n->right = 0;
  if (cold_root == 0) { cold_root = n; return; }
  cur = cold_root;
  while (1) {
    if (key == cur->key) { cur->count = cur->count + 1; free((void*)n); return; }
    if (key < cur->key) {
      if (cur->left == 0) { cur->left = n; return; }
      cur = cur->left;
    } else {
      if (cur->right == 0) { cur->right = n; return; }
      cur = cur->right;
    }
  }
}

/* Recursive tree fold. */
int cold_treesum(struct ColdNode *n) {
  if (n == 0) return 0;
  return n->key + n->count + cold_treesum(n->left) + cold_treesum(n->right);
}

/* Sorted-array insertion with shifting (array traffic). */
void cold_record(int v) {
  int i; int j;
  if (cold_nsorted >= 128) return;
  i = 0;
  while (i < cold_nsorted && cold_sorted[i] < v) i = i + 1;
  for (j = cold_nsorted; j > i; j = j - 1)
    cold_sorted[j] = cold_sorted[j - 1];
  cold_sorted[i] = v;
  cold_nsorted = cold_nsorted + 1;
}

/* Event log: heap list push (pointer writes and reads). */
void cold_log_event(int tag, int value) {
  struct ColdEvent *e;
  e = (struct ColdEvent*)malloc(sizeof(struct ColdEvent));
  e->tag = tag;
  e->value = value;
  e->next = cold_events;
  cold_events = e;
}

/* Histogram + text scramble (byte loads, shifts). */
int cold_digest(int seed) {
  int i; int h;
  h = seed;
  for (i = 0; i < 256; i = i + 1) {
    cold_hist[i] = cold_hist[i] + ((h >> 3) & 7);
    h = h * 31 + i;
  }
  for (i = 0; i < 512; i = i + 1) {
    cold_text[i] = (h ^ i) & 63;
    h = h + cold_text[i];
  }
  for (i = 0; i + 1 < 512; i = i + 2)
    h = h ^ (cold_text[i] << 4) ^ cold_text[i + 1];
  return h & 16777215;
}

/* Small matrix transpose-and-sum (2-D array indexing). */
int cold_transpose(int seed) {
  int i; int j; int acc;
  for (i = 0; i < 32; i = i + 1)
    for (j = 0; j < 32; j = j + 1)
      cold_matrix[i][j] = (seed ^ (i * 37 + j * 11)) & 1023;
  acc = 0;
  for (i = 0; i < 32; i = i + 1)
    for (j = 0; j < i; j = j + 1) {
      int t;
      t = cold_matrix[i][j];
      cold_matrix[i][j] = cold_matrix[j][i];
      cold_matrix[j][i] = t;
      acc = acc + t;
    }
  return acc & 16777215;
}

/* Walks every cold structure; only reached from the never-taken dump
   branch below. */
int cold_dump_all(int verbose) {
  int i; int acc; struct ColdEvent *e;
  acc = cold_treesum(cold_root);
  for (i = 0; i < cold_nsorted; i = i + 1) acc = acc + cold_sorted[i];
  for (i = 0; i < 256; i = i + 1) acc = acc ^ cold_hist[i];
  e = cold_events;
  while (e != 0) {
    acc = acc + e->tag * 3 + e->value;
    if (verbose > 1) print_int(e->value);
    e = e->next;
  }
  for (i = 0; i < 32; i = i + 1) acc = acc ^ cold_matrix[i][i];
  if (verbose > 0) print_int(acc);
  return acc;
}

/* Self-test entry point: runs once at program end. The returned value is
   masked non-negative, so the dump guard below never fires at runtime even
   though no static analysis of this program can prove it dead. */
int cold_selftest(int seed) {
  int i; int d; int t;
  cold_root = 0;
  cold_events = 0;
  cold_nsorted = 0;
  d = cold_digest(seed);
  t = cold_transpose(d);
  for (i = 0; i < 48; i = i + 1) {
    cold_insert((d ^ (i * 97)) & 4095);
    cold_record((t + i * 13) & 2047);
    if ((i & 7) == 0) cold_log_event(i, d & 255);
  }
  return (d + t + cold_treesum(cold_root)) & 16777215;
}

void cold_report(int v) {
  int t;
  t = cold_selftest(v);
  if (t < -2000000000) {
    /* Unreached at runtime: cold_selftest is masked non-negative. */
    cold_dump_all(2);
  }
}

/* ------------------------------------------------------------------ */
/* Workload proper.                                                    */
/* ------------------------------------------------------------------ */
)";

const char *sources::ColdSuffix = R"(
/* ------------------------------------------------------------------ */
/* Driver: run the workload, then the cold diagnostics, once.          */
/* ------------------------------------------------------------------ */
int main() {
  int result;
  result = workload_main();
  cold_report(result);
  return result;
}
)";
