//===- workloads/MixedWorkloads.cpp - hash/grid/interpreter benchmarks ---------//
//
// Part of the delinq project. MinC sources for the table- and grid-driven
// workloads (129.compress, 164.gzip, 175.vpr, 099.go, 124.m88ksim,
// 300.twolf). 124.m88ksim deliberately keeps its working set near the cache
// size — the paper singles it out as the benchmark where block profiling
// mispredicts delinquency because its hot blocks miss rarely.
//
//===----------------------------------------------------------------------===//

#include "workloads/Sources.h"

using namespace dlq::workloads;

/// 129.compress analog: LZW-style compression: a large hash table probed
/// with (prefix, symbol) pairs; collisions probe secondarily.
const char *sources::CompressLike = R"(
int htab[$HSIZE];
int codetab[$HSIZE];

int workload_main() {
  int i; int prefix; int nextcode; int emitted;
  srand($SEED);
  for (i = 0; i < $HSIZE; i = i + 1) {
    htab[i] = -1;
    codetab[i] = 0;
  }
  prefix = 0;
  nextcode = 256;
  emitted = 0;
  for (i = 0; i < $NSYMBOLS; i = i + 1) {
    int sym; int key; int slot; int probes;
    sym = rand() % 256;
    key = (prefix << 8) ^ sym;
    slot = ((key * 2654435) ^ (key >> 9)) % $HSIZE;
    if (slot < 0) slot = -slot;
    probes = 0;
    while (htab[slot] != -1 && htab[slot] != key && probes < 8) {
      slot = slot + 1;
      if (slot >= $HSIZE) slot = 0;
      probes = probes + 1;
    }
    if (htab[slot] == key) {
      prefix = codetab[slot];
    } else {
      if (htab[slot] == -1 && nextcode < $HSIZE) {
        htab[slot] = key;
        codetab[slot] = nextcode;
        nextcode = nextcode + 1;
      }
      emitted = emitted + 1;
      prefix = sym;
    }
    /* Table reset when full, as compress does. */
    if (nextcode >= $HSIZE) {
      int k;
      for (k = 0; k < $HSIZE; k = k + 1) htab[k] = -1;
      nextcode = 256;
    }
  }
  print_int(emitted);
  return 0;
}
)";

/// 164.gzip analog: deflate-style matching: a byte window, a head table
/// hashed on 3-byte prefixes, and prev[] position chains walked to find
/// matches.
const char *sources::GzipLike = R"(
char window[$WSIZE];
int head[$HBITS_SIZE];
int prev[$WSIZE];

int workload_main() {
  int pos; int matched; int chainwalks;
  srand($SEED);
  for (pos = 0; pos < $WSIZE; pos = pos + 1) {
    window[pos] = rand() % 64;
    prev[pos] = -1;
  }
  for (pos = 0; pos < $HBITS_SIZE; pos = pos + 1) head[pos] = -1;
  matched = 0;
  chainwalks = 0;
  for (pos = 0; pos + 2 < $WSIZE * $PASSES; pos = pos + 1) {
    int p; int h; int cand; int depth;
    p = pos % ($WSIZE - 2);
    h = (window[p] << 10) ^ (window[p + 1] << 5) ^ window[p + 2];
    h = h % $HBITS_SIZE;
    if (h < 0) h = -h;
    cand = head[h];
    depth = 0;
    while (cand >= 0 && depth < $MAXCHAIN) {
      if (window[cand] == window[p] && window[cand + 1] == window[p + 1])
        matched = matched + 1;
      cand = prev[cand];
      depth = depth + 1;
      chainwalks = chainwalks + 1;
    }
    prev[p] = head[h];
    head[h] = p;
  }
  print_int(matched);
  print_int(chainwalks);
  return 0;
}
)";

/// 175.vpr analog: simulated-annealing placement: cells on a grid; random
/// pair swaps with a cost function that reads the net bounding neighbors.
const char *sources::VprLike = R"(
int gridocc[$GRID * $GRID];
int cellx[$NCELLS];
int celly[$NCELLS];
int cellnet[$NCELLS];
int netpins[$NNETS * 4];

int cost(int c) {
  int net; int acc; int k;
  net = cellnet[c];
  acc = 0;
  for (k = 0; k < 4; k = k + 1) {
    int other; int dx; int dy;
    other = netpins[net * 4 + k];
    dx = cellx[c] - cellx[other];
    dy = celly[c] - celly[other];
    if (dx < 0) dx = -dx;
    if (dy < 0) dy = -dy;
    acc = acc + dx + dy;
  }
  return acc;
}

int workload_main() {
  int i; int moves; int accepted;
  srand($SEED);
  for (i = 0; i < $GRID * $GRID; i = i + 1) gridocc[i] = -1;
  for (i = 0; i < $NCELLS; i = i + 1) {
    cellx[i] = rand() % $GRID;
    celly[i] = rand() % $GRID;
    cellnet[i] = rand() % $NNETS;
    gridocc[celly[i] * $GRID + cellx[i]] = i;
  }
  for (i = 0; i < $NNETS * 4; i = i + 1) netpins[i] = rand() % $NCELLS;
  accepted = 0;
  for (moves = 0; moves < $MOVES; moves = moves + 1) {
    int a; int b; int before; int after; int tx; int ty;
    a = rand() % $NCELLS;
    b = rand() % $NCELLS;
    before = cost(a) + cost(b);
    tx = cellx[a]; ty = celly[a];
    cellx[a] = cellx[b]; celly[a] = celly[b];
    cellx[b] = tx; celly[b] = ty;
    after = cost(a) + cost(b);
    if (after > before + (moves & 15)) {
      /* Reject: swap back. */
      tx = cellx[a]; ty = celly[a];
      cellx[a] = cellx[b]; celly[a] = celly[b];
      cellx[b] = tx; celly[b] = ty;
    } else {
      gridocc[celly[a] * $GRID + cellx[a]] = a;
      gridocc[celly[b] * $GRID + cellx[b]] = b;
      accepted = accepted + 1;
    }
  }
  print_int(accepted);
  return 0;
}
)";

/// 099.go analog: board-game reading: stones on a board, repeated neighbor
/// scans and small flood fills with an explicit worklist.
const char *sources::GoLike = R"(
int board[$BSIZE * $BSIZE];
int mark[$BSIZE * $BSIZE];
int work[$BSIZE * $BSIZE];

int workload_main() {
  int i; int move; int libsum;
  srand($SEED);
  for (i = 0; i < $BSIZE * $BSIZE; i = i + 1) {
    board[i] = 0;
    mark[i] = 0;
  }
  libsum = 0;
  for (move = 0; move < $MOVES; move = move + 1) {
    int p; int color;
    p = rand() % ($BSIZE * $BSIZE);
    color = 1 + (move & 1);
    board[p] = color;
    /* Flood-fill the group at p and count liberties. */
    {
      int top; int libs; int stamp;
      stamp = move + 1;
      top = 0;
      work[top] = p;
      top = top + 1;
      mark[p] = stamp;
      libs = 0;
      while (top > 0) {
        int q; int r; int c;
        top = top - 1;
        q = work[top];
        r = q / $BSIZE;
        c = q % $BSIZE;
        if (c > 0) {
          int nb; nb = q - 1;
          if (board[nb] == 0) libs = libs + 1;
          else if (board[nb] == color && mark[nb] != stamp) {
            mark[nb] = stamp; work[top] = nb; top = top + 1;
          }
        }
        if (c < $BSIZE - 1) {
          int nb; nb = q + 1;
          if (board[nb] == 0) libs = libs + 1;
          else if (board[nb] == color && mark[nb] != stamp) {
            mark[nb] = stamp; work[top] = nb; top = top + 1;
          }
        }
        if (r > 0) {
          int nb; nb = q - $BSIZE;
          if (board[nb] == 0) libs = libs + 1;
          else if (board[nb] == color && mark[nb] != stamp) {
            mark[nb] = stamp; work[top] = nb; top = top + 1;
          }
        }
        if (r < $BSIZE - 1) {
          int nb; nb = q + $BSIZE;
          if (board[nb] == 0) libs = libs + 1;
          else if (board[nb] == color && mark[nb] != stamp) {
            mark[nb] = stamp; work[top] = nb; top = top + 1;
          }
        }
      }
      if (libs == 0) board[p] = 0;
      libsum = libsum + libs;
    }
  }
  print_int(libsum);
  return 0;
}
)";

/// 124.m88ksim analog: an interpreter for a toy ISA whose data memory is
/// sized near the cache: hot code, few misses — the case where profiling
/// alone misjudges delinquency (Section 4).
const char *sources::M88ksimLike = R"(
int imem[$PROGLEN];
int regs[32];
int dmem[$DWORDS];

int workload_main() {
  int pc; int steps; int halted;
  srand($SEED);
  /* Encode: op(0..5) | rd(5b) | rs(5b) | imm(12b). */
  for (pc = 0; pc < $PROGLEN; pc = pc + 1) {
    int op;
    op = rand() % 6;
    imem[pc] = (op << 24) | ((rand() % 32) << 17) | ((rand() % 32) << 12)
               | (rand() % 4096);
  }
  for (pc = 0; pc < 32; pc = pc + 1) regs[pc] = rand() % 1024;
  for (pc = 0; pc < $DWORDS; pc = pc + 1) dmem[pc] = 0;
  pc = 0;
  halted = 0;
  for (steps = 0; steps < $STEPS; steps = steps + 1) {
    int insn; int op; int rd; int rs; int imm;
    insn = imem[pc];
    op = (insn >> 24) & 63;
    rd = (insn >> 17) & 31;
    rs = (insn >> 12) & 31;
    imm = insn & 4095;
    if (op == 0) {
      regs[rd] = regs[rs] + imm;
    } else if (op == 1) {
      regs[rd] = regs[rs] ^ (imm << 1);
    } else if (op == 2) {
      regs[rd] = dmem[(regs[rs] + imm) & ($DWORDS - 1)];
    } else if (op == 3) {
      dmem[(regs[rs] + imm) & ($DWORDS - 1)] = regs[rd];
    } else if (op == 4) {
      if (regs[rs] > regs[rd]) pc = (pc + imm) % $PROGLEN;
    } else {
      regs[rd] = regs[rs] * 3 + 1;
    }
    pc = pc + 1;
    if (pc >= $PROGLEN) pc = 0;
  }
  print_int(regs[7] + halted);
  return 0;
}
)";

/// 300.twolf analog: standard-cell placement refinement: an array of cell
/// structs plus per-net cell index lists; each move rescans the nets of the
/// moved cell through the index indirection.
const char *sources::TwolfLike = R"(
struct Cell2 { int x; int y; int width; int netfirst; int netcount; };

struct Cell2 cells[$NCELLS];
int netof[$NCELLS * $MAXNETS];
int netspan[$NNETS];
int netmember[$NNETS * $FANOUT];

int workload_main() {
  int i; int move; int improved;
  srand($SEED);
  for (i = 0; i < $NCELLS; i = i + 1) {
    cells[i].x = rand() % 1024;
    cells[i].y = rand() % 64;
    cells[i].width = 1 + rand() % 8;
    cells[i].netfirst = i * $MAXNETS;
    cells[i].netcount = 1 + rand() % $MAXNETS;
    if (cells[i].netcount > $MAXNETS) cells[i].netcount = $MAXNETS;
  }
  for (i = 0; i < $NCELLS * $MAXNETS; i = i + 1)
    netof[i] = rand() % $NNETS;
  for (i = 0; i < $NNETS * $FANOUT; i = i + 1)
    netmember[i] = rand() % $NCELLS;
  for (i = 0; i < $NNETS; i = i + 1) netspan[i] = 0;
  improved = 0;
  for (move = 0; move < $MOVES; move = move + 1) {
    int c; int k; int oldx; int delta;
    c = rand() % $NCELLS;
    oldx = cells[c].x;
    cells[c].x = rand() % 1024;
    delta = 0;
    for (k = 0; k < cells[c].netcount; k = k + 1) {
      int net; int m; int lo; int hi;
      net = netof[cells[c].netfirst + k];
      lo = 1024; hi = 0;
      for (m = 0; m < $FANOUT; m = m + 1) {
        int cx;
        cx = cells[netmember[net * $FANOUT + m]].x;
        if (cx < lo) lo = cx;
        if (cx > hi) hi = cx;
      }
      delta = delta + (hi - lo) - netspan[net];
      netspan[net] = hi - lo;
    }
    if (delta > 0) {
      cells[c].x = oldx;
    } else {
      improved = improved + 1;
    }
  }
  print_int(improved);
  return 0;
}
)";
