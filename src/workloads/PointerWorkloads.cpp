//===- workloads/PointerWorkloads.cpp - linked-structure benchmarks ------------//
//
// Part of the delinq project. MinC sources for the pointer-chasing workloads:
// the SPEC analogs whose misses come from dereferencing heap-allocated
// linked structures (181.mcf, 022.li, 197.parser, 147.vortex, 126.gcc,
// 072.sc). Allocation orders are deliberately interleaved so that logically
// adjacent nodes are physically scattered, defeating spatial locality the
// way long-running allocators do.
//
//===----------------------------------------------------------------------===//

#include "workloads/Sources.h"

using namespace dlq::workloads;

/// 022.li analog: cons-cell lists built round-robin (cells of one list are
/// strewn across the heap), then repeatedly traversed.
const char *sources::LiLike = R"(
struct Cell { int car; struct Cell *cdr; };

struct Cell *lists[$NLISTS];

int workload_main() {
  int i; int j; int sum; struct Cell *c;
  srand($SEED);
  for (i = 0; i < $NLISTS; i = i + 1) lists[i] = 0;
  /* Round-robin allocation: consecutive cells of a list are ~$NLISTS
     allocations apart. */
  for (j = 0; j < $LEN; j = j + 1) {
    for (i = 0; i < $NLISTS; i = i + 1) {
      c = (struct Cell*)malloc(sizeof(struct Cell));
      c->car = rand() % 1000;
      c->cdr = lists[i];
      lists[i] = c;
    }
  }
  sum = 0;
  for (i = 0; i < $ITERS; i = i + 1) {
    c = lists[rand() % $NLISTS];
    while (c != 0) {
      sum = sum + c->car;
      c = c->cdr;
    }
  }
  print_int(sum);
  return 0;
}
)";

/// 181.mcf analog: a network of nodes and arcs; the hot loop walks per-node
/// arc chains computing reduced costs, dereferencing head/tail node
/// potentials through pointers.
const char *sources::McfLike = R"(
struct Node { int potential; int depth; struct Arc *firstout; };
struct Arc { int cost; int flow; struct Node *tail; struct Node *head;
             struct Arc *nextout; };

struct Node *nodes[$NNODES];

int workload_main() {
  int i; int k; int negcount; int total;
  struct Node *n; struct Arc *a;
  srand($SEED);
  for (i = 0; i < $NNODES; i = i + 1) {
    n = (struct Node*)malloc(sizeof(struct Node));
    n->potential = rand() % 10000;
    n->depth = 0;
    n->firstout = 0;
    nodes[i] = n;
  }
  /* Arcs allocated in random tail order: chain neighbors are scattered. */
  for (i = 0; i < $NARCS; i = i + 1) {
    int t; int h;
    t = rand() % $NNODES;
    h = rand() % $NNODES;
    a = (struct Arc*)malloc(sizeof(struct Arc));
    a->cost = rand() % 1000;
    a->flow = 0;
    a->tail = nodes[t];
    a->head = nodes[h];
    a->nextout = nodes[t]->firstout;
    nodes[t]->firstout = a;
  }
  negcount = 0;
  total = 0;
  for (k = 0; k < $PASSES; k = k + 1) {
    for (i = 0; i < $NNODES; i = i + 1) {
      n = nodes[i];
      a = n->firstout;
      while (a != 0) {
        int red;
        red = a->cost + a->tail->potential - a->head->potential;
        if (red < 0) {
          negcount = negcount + 1;
          a->flow = a->flow + 1;
          a->head->potential = a->head->potential + (red / 2);
        }
        total = total + red;
        a = a->nextout;
      }
    }
  }
  print_int(negcount);
  print_int(total);
  return 0;
}
)";

/// 197.parser analog: a hash dictionary of linked word entries; lookups walk
/// bucket chains, and a periodic "parse" pass follows cross-links between
/// entries.
const char *sources::ParserLike = R"(
struct WordEnt { int key; int count; struct WordEnt *next;
                 struct WordEnt *link; };

struct WordEnt *dict[$DBUCKETS];

struct WordEnt *lookup(int key) {
  int b; struct WordEnt *w;
  b = key % $DBUCKETS;
  w = dict[b];
  while (w != 0) {
    if (w->key == key) return w;
    w = w->next;
  }
  return 0;
}

int workload_main() {
  int i; int key; int hits; int chainlen;
  struct WordEnt *w; struct WordEnt *prev;
  srand($SEED);
  for (i = 0; i < $DBUCKETS; i = i + 1) dict[i] = 0;
  prev = 0;
  for (i = 0; i < $NWORDS; i = i + 1) {
    int b;
    key = rand() % $KEYSPACE;
    b = key % $DBUCKETS;
    w = (struct WordEnt*)malloc(sizeof(struct WordEnt));
    w->key = key;
    w->count = 0;
    w->next = dict[b];
    w->link = prev;
    dict[b] = w;
    prev = w;
  }
  hits = 0;
  for (i = 0; i < $LOOKUPS; i = i + 1) {
    key = rand() % $KEYSPACE;
    w = lookup(key);
    if (w != 0) {
      w->count = w->count + 1;
      hits = hits + 1;
    }
  }
  /* "Parse": walk the cross-link chain from the last inserted entry. */
  chainlen = 0;
  w = prev;
  while (w != 0) {
    chainlen = chainlen + (w->count > 0 ? 1 : 0);
    w = w->link;
  }
  print_int(hits);
  print_int(chainlen);
  return 0;
}
)";

/// 147.vortex analog: an object database of malloc'd records indexed by a
/// hash table; transactions look up records and update several fields,
/// following an owner pointer to a second record.
const char *sources::VortexLike = R"(
struct Rec { int key; int balance; int touched; int kind;
             struct Rec *owner; struct Rec *next; };

struct Rec *index[$IBUCKETS];

struct Rec *find(int key) {
  struct Rec *r;
  r = index[key % $IBUCKETS];
  while (r != 0) {
    if (r->key == key) return r;
    r = r->next;
  }
  return 0;
}

int workload_main() {
  int i; int key; int updated;
  struct Rec *r; struct Rec *firstrec;
  srand($SEED);
  for (i = 0; i < $IBUCKETS; i = i + 1) index[i] = 0;
  firstrec = 0;
  for (i = 0; i < $NRECS; i = i + 1) {
    int b;
    key = i;
    b = key % $IBUCKETS;
    r = (struct Rec*)malloc(sizeof(struct Rec));
    r->key = key;
    r->balance = rand() % 100000;
    r->touched = 0;
    r->kind = rand() % 4;
    r->owner = firstrec;
    r->next = index[b];
    index[b] = r;
    if (firstrec == 0) firstrec = r;
    if (rand() % 16 == 0) firstrec = r;
  }
  updated = 0;
  for (i = 0; i < $TXNS; i = i + 1) {
    key = rand() % $NRECS;
    r = find(key);
    if (r != 0) {
      r->balance = r->balance + (rand() % 200) - 100;
      r->touched = r->touched + 1;
      if (r->owner != 0) {
        r->owner->balance = r->owner->balance - 1;
      }
      updated = updated + 1;
    }
  }
  print_int(updated);
  return 0;
}
)";

/// 126.gcc analog: builds random expression trees node by node (interleaved
/// with symbol-table inserts so trees are scattered), then repeatedly folds
/// them with a recursive walk.
const char *sources::GccLike = R"(
struct Tree { int op; int value; struct Tree *left; struct Tree *right; };
struct Sym { int name; int defs; struct Sym *next; };

struct Sym *symtab[$SBUCKETS];
struct Tree *roots[$NTREES];

struct Tree *build(int depth) {
  struct Tree *t;
  t = (struct Tree*)malloc(sizeof(struct Tree));
  if (depth <= 0) {
    t->op = 0;
    t->value = rand() % 512;
    t->left = 0;
    t->right = 0;
    return t;
  }
  t->op = 1 + rand() % 4;
  t->value = 0;
  t->left = build(depth - 1 - rand() % 2);
  t->right = build(depth - 1 - rand() % 2);
  return t;
}

void intern(int name) {
  int b; struct Sym *s;
  b = name % $SBUCKETS;
  s = symtab[b];
  while (s != 0) {
    if (s->name == name) { s->defs = s->defs + 1; return; }
    s = s->next;
  }
  s = (struct Sym*)malloc(sizeof(struct Sym));
  s->name = name;
  s->defs = 1;
  s->next = symtab[b];
  symtab[b] = s;
}

int fold(struct Tree *t) {
  int l; int r;
  if (t->op == 0) return t->value;
  l = fold(t->left);
  r = fold(t->right);
  if (t->op == 1) return l + r;
  if (t->op == 2) return l - r;
  if (t->op == 3) return (l & 65535) * (r & 255);
  return l ^ r;
}

int workload_main() {
  int i; int k; int sum;
  srand($SEED);
  for (i = 0; i < $SBUCKETS; i = i + 1) symtab[i] = 0;
  for (i = 0; i < $NTREES; i = i + 1) {
    roots[i] = build($DEPTH);
    /* Interleave symbol interning to scatter tree nodes. */
    for (k = 0; k < 3; k = k + 1) intern(rand() % $NSYMS);
  }
  sum = 0;
  for (k = 0; k < $PASSES; k = k + 1)
    for (i = 0; i < $NTREES; i = i + 1)
      sum = sum + fold(roots[i]);
  print_int(sum);
  return 0;
}
)";

/// 072.sc analog: a spreadsheet grid where each cell depends on another
/// (randomly chosen) cell through an explicit dependency cell list;
/// recalculation sweeps the grid following the dependency indirection.
const char *sources::ScLike = R"(
struct CellDep { int target; struct CellDep *next; };

int grid[$CELLS];
struct CellDep *deps[$CELLS];

int workload_main() {
  int i; int pass; int checksum; struct CellDep *d;
  srand($SEED);
  for (i = 0; i < $CELLS; i = i + 1) {
    grid[i] = rand() % 1000;
    deps[i] = 0;
  }
  /* Each cell gets 1..3 dependencies on random other cells. */
  for (i = 0; i < $CELLS; i = i + 1) {
    int nd; int k;
    nd = 1 + rand() % 3;
    for (k = 0; k < nd; k = k + 1) {
      d = (struct CellDep*)malloc(sizeof(struct CellDep));
      d->target = rand() % $CELLS;
      d->next = deps[i];
      deps[i] = d;
    }
  }
  for (pass = 0; pass < $PASSES; pass = pass + 1) {
    for (i = 0; i < $CELLS; i = i + 1) {
      int acc;
      acc = grid[i];
      d = deps[i];
      while (d != 0) {
        acc = acc + grid[d->target];
        d = d->next;
      }
      grid[i] = acc / 2;
    }
  }
  checksum = 0;
  for (i = 0; i < $CELLS; i = i + 1) checksum = checksum ^ grid[i];
  print_int(checksum);
  return 0;
}
)";
