//===- workloads/Registry.cpp - workload table and instantiation ---------------//

#include "workloads/Workloads.h"

#include "workloads/Sources.h"

#include <algorithm>

using namespace dlq;
using namespace dlq::workloads;

namespace {

std::vector<Workload> buildRegistry() {
  using P = std::map<std::string, long>;
  std::vector<Workload> W;

  W.push_back(Workload{
      "espresso_like", "008.espresso", "bitset-cubes", sources::EspressoLike,
      {"input1", P{{"NCUBES", 1500}, {"WORDS", 16}, {"OPS", 12000},
                   {"SEED", 11}}},
      {"input2", P{{"NCUBES", 2500}, {"WORDS", 16}, {"OPS", 9000},
                   {"SEED", 12}}}});

  W.push_back(Workload{
      "li_like", "022.li", "pointer-chasing", sources::LiLike,
      {"input1", P{{"NLISTS", 512}, {"LEN", 64}, {"ITERS", 1500},
                   {"SEED", 21}}},
      {"input2", P{{"NLISTS", 768}, {"LEN", 48}, {"ITERS", 1400},
                   {"SEED", 22}}}});

  W.push_back(Workload{
      "sc_like", "072.sc", "grid+dependency-lists", sources::ScLike,
      {"input1", P{{"CELLS", 24576}, {"PASSES", 10}, {"SEED", 31}}},
      {"input2", P{{"CELLS", 32768}, {"PASSES", 7}, {"SEED", 32}}}});

  W.push_back(Workload{
      "go_like", "099.go", "board-scans", sources::GoLike,
      {"input1", P{{"BSIZE", 64}, {"MOVES", 9000}, {"SEED", 41}}},
      {"input2", P{{"BSIZE", 96}, {"MOVES", 7000}, {"SEED", 42}}}});

  W.push_back(Workload{
      "tomcatv_like", "101.tomcatv", "stencil", sources::TomcatvLike,
      {"input1", P{{"N", 192}, {"ITERS", 4}, {"SEED", 51}}},
      {"input2", P{{"N", 256}, {"ITERS", 3}, {"SEED", 52}}}});

  W.push_back(Workload{
      "m88ksim_like", "124.m88ksim", "interpreter", sources::M88ksimLike,
      {"input1", P{{"PROGLEN", 2048}, {"DWORDS", 1024}, {"STEPS", 300000},
                   {"SEED", 61}}},
      {"input2", P{{"PROGLEN", 4096}, {"DWORDS", 1024}, {"STEPS", 250000},
                   {"SEED", 62}}}});

  W.push_back(Workload{
      "gcc_like", "126.gcc", "trees+symbol-table", sources::GccLike,
      {"input1", P{{"NTREES", 400}, {"DEPTH", 7}, {"PASSES", 8},
                   {"SBUCKETS", 2048}, {"NSYMS", 6000}, {"SEED", 71}}},
      {"input2", P{{"NTREES", 500}, {"DEPTH", 7}, {"PASSES", 6},
                   {"SBUCKETS", 2048}, {"NSYMS", 8000}, {"SEED", 72}}}});

  W.push_back(Workload{
      "compress_like", "129.compress", "hash-table", sources::CompressLike,
      {"input1", P{{"HSIZE", 32768}, {"NSYMBOLS", 150000}, {"SEED", 81}}},
      {"input2", P{{"HSIZE", 16384}, {"NSYMBOLS", 120000}, {"SEED", 82}}}});

  W.push_back(Workload{
      "ijpeg_like", "132.ijpeg", "blocked-transform", sources::IjpegLike,
      {"input1", P{{"H", 256}, {"W", 256}, {"SEED", 91}}},
      {"input2", P{{"H", 320}, {"W", 256}, {"SEED", 92}}}});

  W.push_back(Workload{
      "vortex_like", "147.vortex", "object-database", sources::VortexLike,
      {"input1", P{{"NRECS", 20000}, {"IBUCKETS", 4096}, {"TXNS", 60000},
                   {"SEED", 101}}},
      {"input2", P{{"NRECS", 30000}, {"IBUCKETS", 4096}, {"TXNS", 45000},
                   {"SEED", 102}}}});

  W.push_back(Workload{
      "gzip_like", "164.gzip", "window-hash-chains", sources::GzipLike,
      {"input1", P{{"WSIZE", 32768}, {"HBITS_SIZE", 16384}, {"PASSES", 3},
                   {"MAXCHAIN", 6}, {"SEED", 111}}},
      {"input2", P{{"WSIZE", 65536}, {"HBITS_SIZE", 16384}, {"PASSES", 2},
                   {"MAXCHAIN", 5}, {"SEED", 112}}}});

  W.push_back(Workload{
      "vpr_like", "175.vpr", "placement-grid", sources::VprLike,
      {"input1", P{{"GRID", 128}, {"NCELLS", 8192}, {"NNETS", 4096},
                   {"MOVES", 20000}, {"SEED", 121}}},
      {"input2", P{{"GRID", 160}, {"NCELLS", 8192}, {"NNETS", 4096},
                   {"MOVES", 15000}, {"SEED", 122}}}});

  W.push_back(Workload{
      "art_like", "179.art", "strided-scans", sources::ArtLike,
      {"input1", P{{"NEURONS", 512}, {"FEATURES", 64},
                   {"PRESENTATIONS", 30}, {"SEED", 131}}},
      {"input2", P{{"NEURONS", 640}, {"FEATURES", 64},
                   {"PRESENTATIONS", 24}, {"SEED", 132}}}});

  W.push_back(Workload{
      "mcf_like", "181.mcf", "pointer-chasing", sources::McfLike,
      {"input1", P{{"NNODES", 8192}, {"NARCS", 65536}, {"PASSES", 4},
                   {"SEED", 141}}},
      {"input2", P{{"NNODES", 12288}, {"NARCS", 49152}, {"PASSES", 4},
                   {"SEED", 142}}}});

  W.push_back(Workload{
      "equake_like", "183.equake", "sparse-matvec", sources::EquakeLike,
      {"input1", P{{"N", 8192}, {"NNZ", 65536}, {"ITERS", 10}, {"SEED", 151}}},
      {"input2", P{{"N", 16384}, {"NNZ", 98304}, {"ITERS", 6}, {"SEED", 152}}}});

  W.push_back(Workload{
      "ammp_like", "188.ammp", "neighbor-lists", sources::AmmpLike,
      {"input1", P{{"NATOMS", 4096}, {"NNEIGH", 16}, {"STEPS", 6},
                   {"SEED", 161}}},
      {"input2", P{{"NATOMS", 6144}, {"NNEIGH", 16}, {"STEPS", 5},
                   {"SEED", 162}}}});

  W.push_back(Workload{
      "parser_like", "197.parser", "dictionary-chains", sources::ParserLike,
      {"input1", P{{"DBUCKETS", 8192}, {"NWORDS", 30000},
                   {"KEYSPACE", 60000}, {"LOOKUPS", 80000}, {"SEED", 171}}},
      {"input2", P{{"DBUCKETS", 8192}, {"NWORDS", 40000},
                   {"KEYSPACE", 80000}, {"LOOKUPS", 60000}, {"SEED", 172}}}});

  W.push_back(Workload{
      "twolf_like", "300.twolf", "cells-and-nets", sources::TwolfLike,
      {"input1", P{{"NCELLS", 4096}, {"MAXNETS", 4}, {"NNETS", 2048},
                   {"FANOUT", 8}, {"MOVES", 15000}, {"SEED", 181}}},
      {"input2", P{{"NCELLS", 6144}, {"MAXNETS", 4}, {"NNETS", 3072},
                   {"FANOUT", 8}, {"MOVES", 12000}, {"SEED", 182}}}});

  return W;
}

} // namespace

const std::vector<Workload> &workloads::allWorkloads() {
  static const std::vector<Workload> Registry = buildRegistry();
  return Registry;
}

const Workload *workloads::findWorkload(const std::string &Name) {
  for (const Workload &W : allWorkloads())
    if (W.Name == Name)
      return &W;
  return nullptr;
}

std::vector<std::string> workloads::trainingSetNames() {
  return {"espresso_like", "go_like",     "compress_like", "vortex_like",
          "gzip_like",     "vpr_like",    "art_like",      "mcf_like",
          "equake_like",   "ammp_like",   "parser_like"};
}

std::vector<std::string> workloads::testSetNames() {
  return {"li_like",   "sc_like",    "tomcatv_like", "m88ksim_like",
          "gcc_like",  "ijpeg_like", "twolf_like"};
}

std::string workloads::instantiate(const Workload &W,
                                   const WorkloadInput &Input) {
  // Longest parameter names substitute first so $NNZ is safe alongside $N.
  std::vector<std::pair<std::string, long>> Params(Input.Params.begin(),
                                                   Input.Params.end());
  std::sort(Params.begin(), Params.end(), [](const auto &A, const auto &B) {
    return A.first.size() > B.first.size();
  });

  std::string Out = std::string(sources::ColdPrefix) + W.Source +
                    sources::ColdSuffix;
  for (const auto &[Name, Value] : Params) {
    std::string Token = "$" + Name;
    std::string Replacement = std::to_string(Value);
    size_t Pos = 0;
    while ((Pos = Out.find(Token, Pos)) != std::string::npos) {
      Out.replace(Pos, Token.size(), Replacement);
      Pos += Replacement.size();
    }
  }
  return Out;
}
