//===- workloads/Sources.h - MinC source constants (internal) ------------------//
//
// Part of the delinq project. Internal header: declares the MinC source text
// of each workload; definitions are grouped by memory-behaviour category.
//
//===----------------------------------------------------------------------===//

#ifndef DLQ_WORKLOADS_SOURCES_H
#define DLQ_WORKLOADS_SOURCES_H

namespace dlq {
namespace workloads {
namespace sources {

// Pointer-chasing / linked-structure programs (PointerWorkloads.cpp).
extern const char *LiLike;      // 022.li: cons-cell lists.
extern const char *McfLike;     // 181.mcf: network arcs.
extern const char *ParserLike;  // 197.parser: dictionary chains.
extern const char *VortexLike;  // 147.vortex: object database.
extern const char *GccLike;     // 126.gcc: expression trees + symbol table.
extern const char *ScLike;      // 072.sc: spreadsheet dependencies.

// Strided / numeric array programs (ArrayWorkloads.cpp).
extern const char *TomcatvLike; // 101.tomcatv: 2-D stencil.
extern const char *ArtLike;     // 179.art: neural-network layers.
extern const char *EquakeLike;  // 183.equake: sparse mat-vec.
extern const char *AmmpLike;    // 188.ammp: neighbor-list MD.
extern const char *IjpegLike;   // 132.ijpeg: blocked transform.
extern const char *EspressoLike; // 008.espresso: bitset cubes.

// Table/hash/grid programs (MixedWorkloads.cpp).
extern const char *CompressLike; // 129.compress: LZW hash table.
extern const char *GzipLike;     // 164.gzip: window hash chains.
extern const char *VprLike;      // 175.vpr: placement grid.
extern const char *GoLike;       // 099.go: board scans.
extern const char *M88ksimLike;  // 124.m88ksim: ISA interpreter.
extern const char *TwolfLike;    // 300.twolf: cells and nets.

// Cold diagnostic library linked into every workload (ColdLibrary.cpp):
// ColdPrefix is prepended (helpers + cold_report), ColdSuffix appended (the
// real `main`, which calls the workload's `workload_main` then the cold
// diagnostics exactly once).
extern const char *ColdPrefix;
extern const char *ColdSuffix;

} // namespace sources
} // namespace workloads
} // namespace dlq

#endif // DLQ_WORKLOADS_SOURCES_H
