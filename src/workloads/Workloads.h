//===- workloads/Workloads.h - The 18-benchmark suite --------------------------//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite standing in for the paper's eighteen SPEC programs
/// (Table 2). Each workload is a MinC program whose dominant memory
/// behaviour mirrors its SPEC analog: pointer chasing for 181.mcf/022.li,
/// strided numeric kernels for 101.tomcatv/179.art, hash tables for
/// 129.compress/164.gzip, struct databases for 147.vortex, and so on.
///
/// Sources are parameterized with `$NAME` placeholders; each workload ships
/// two input configurations ("input1" used for training, "input2" for the
/// Table 7 input-stability experiment). The training set is the paper's
/// eleven benchmarks; the remaining seven form the held-out test set of
/// Table 10.
///
//===----------------------------------------------------------------------===//

#ifndef DLQ_WORKLOADS_WORKLOADS_H
#define DLQ_WORKLOADS_WORKLOADS_H

#include <map>
#include <string>
#include <vector>

namespace dlq {
namespace workloads {

/// One parameterized input set.
struct WorkloadInput {
  std::string Name; ///< "input1" or "input2".
  std::map<std::string, long> Params;
};

/// One benchmark program.
struct Workload {
  std::string Name;        ///< e.g. "mcf_like".
  std::string PaperAnalog; ///< e.g. "181.mcf".
  std::string Category;    ///< e.g. "pointer-chasing".
  const char *Source = nullptr; ///< MinC text with $PARAM placeholders.
  WorkloadInput Input1;
  WorkloadInput Input2;
};

/// All eighteen workloads, in the paper's Table 2 order.
const std::vector<Workload> &allWorkloads();

/// Lookup by name; nullptr if unknown.
const Workload *findWorkload(const std::string &Name);

/// The eleven training benchmarks (Tables 1, 7, 8, 9, 13).
std::vector<std::string> trainingSetNames();

/// The seven held-out benchmarks (Table 10).
std::vector<std::string> testSetNames();

/// Substitutes an input's parameters into the workload source. Placeholders
/// are `$NAME` tokens; longer names substitute first so `$NNZ` is safe
/// alongside `$N`.
std::string instantiate(const Workload &W, const WorkloadInput &Input);

} // namespace workloads
} // namespace dlq

#endif // DLQ_WORKLOADS_WORKLOADS_H
