//===- tests/AbsintTest.cpp - abstract domain and interpreter tests ----------//
//
// Part of the delinq project test suite.
//
//===----------------------------------------------------------------------===//

#include "absint/Absint.h"
#include "absint/Domain.h"
#include "cfg/Cfg.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Generator.h"
#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::absint;

namespace {

AbsValue spPlus(int64_t Off) {
  AbsValue V = AbsValue::entry(masm::Reg::SP);
  V.Lo = V.Hi = Off;
  V.Stride = 0;
  return V;
}

TEST(AbsDomain, JoinOfConstantsIsHullWithGcdStride) {
  AbsValue J = join(AbsValue::constant(4), AbsValue::constant(8));
  EXPECT_EQ(J.Lo, 4);
  EXPECT_EQ(J.Hi, 8);
  EXPECT_EQ(J.Stride, 4u);

  // Joining in a third point keeps the congruence as long as it fits.
  J = join(J, AbsValue::constant(12));
  EXPECT_EQ(J.Lo, 4);
  EXPECT_EQ(J.Hi, 12);
  EXPECT_EQ(J.Stride, 4u);

  // An off-grid point collapses the stride but not the hull.
  J = join(J, AbsValue::constant(5));
  EXPECT_EQ(J.Lo, 4);
  EXPECT_EQ(J.Hi, 12);
  EXPECT_EQ(J.Stride, 1u);
}

TEST(AbsDomain, JoinOfDifferentBasesIsTop) {
  AbsValue A = AbsValue::entry(masm::Reg::A0);
  AbsValue B = AbsValue::entry(masm::Reg::A1);
  EXPECT_TRUE(join(A, B).isTop());
  EXPECT_FALSE(join(A, A).isTop());
}

TEST(AbsDomain, JoinKeepsSymbolicBase) {
  AbsValue A = spPlus(-8);
  AbsValue B = spPlus(-16);
  AbsValue J = join(A, B);
  EXPECT_EQ(J.Base, SymBase::entryReg(masm::Reg::SP));
  EXPECT_EQ(J.Lo, -16);
  EXPECT_EQ(J.Hi, -8);
  EXPECT_EQ(J.Stride, 8u);
}

TEST(AbsDomain, WidenSendsGrownBoundsToInfinity) {
  AbsValue Old = AbsValue::constant(0);
  AbsValue New = join(Old, AbsValue::constant(1));
  AbsValue W = widen(Old, New);
  EXPECT_EQ(W.Lo, 0);
  EXPECT_EQ(W.Hi, PosInf);
  // Widening an unchanged state is the identity (fixpoint test relies on
  // it).
  EXPECT_EQ(widen(W, W), W);
}

TEST(AbsDomain, WidenPreservesStride) {
  AbsValue Old = AbsValue::constant(0);
  AbsValue New = join(Old, AbsValue::constant(4));
  AbsValue W = widen(Old, New);
  EXPECT_EQ(W.Lo, 0);
  EXPECT_EQ(W.Hi, PosInf);
  EXPECT_EQ(W.Stride, 4u);
}

TEST(AbsDomain, ArithmeticTracksStride) {
  // (sp + [0,+inf) % 4) + 8 keeps base, anchor moves, stride survives.
  AbsValue Idx = AbsValue::entry(masm::Reg::SP);
  Idx.Lo = 0;
  Idx.Hi = PosInf;
  Idx.Stride = 4;
  AbsValue Sum = addValues(Idx, AbsValue::constant(8));
  EXPECT_EQ(Sum.Base, SymBase::entryReg(masm::Reg::SP));
  EXPECT_EQ(Sum.Lo, 8);
  EXPECT_EQ(Sum.Stride, 4u);

  // Multiplying a strided plain interval by a constant scales the stride.
  AbsValue I;
  I.Lo = 0;
  I.Hi = 40;
  I.Stride = 2;
  AbsValue Scaled = mulValues(I, AbsValue::constant(4));
  EXPECT_EQ(Scaled.Lo, 0);
  EXPECT_EQ(Scaled.Hi, 160);
  EXPECT_EQ(Scaled.Stride, 8u);

  // Subtracting same-base values cancels the base.
  AbsValue D = subValues(spPlus(-8), spPlus(-16));
  EXPECT_TRUE(D.isConst());
  EXPECT_EQ(D.constValue(), 8);
}

TEST(AbsDomain, StateJoinIntersectsMustWrittenBytes) {
  State A = State::entry();
  State B = State::entry();
  A.Reachable = B.Reachable = true;
  A.Written = {-4, -3, -2, -1, -8};
  B.Written = {-4, -3, -2, -1, -12};
  A.Words[-4] = AbsValue::constant(1);
  B.Words[-4] = AbsValue::constant(3);
  B.Words[-8] = AbsValue::constant(7);
  State J = joinState(A, B);
  EXPECT_EQ(J.Written, (std::set<int32_t>{-4, -3, -2, -1}));
  // Common slot joins its values; one-sided slots drop.
  ASSERT_TRUE(J.Words.count(-4));
  EXPECT_EQ(J.Words.at(-4).Lo, 1);
  EXPECT_EQ(J.Words.at(-4).Hi, 3);
  EXPECT_FALSE(J.Words.count(-8));
}

TEST(AbsInterp, CountedLoopTripFromRegisters) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl f
f:
        li   $t0, 0
        li   $t1, 10
Lhead:
        bge  $t0, $t1, Ldone
        addi $t0, $t0, 1
        j    Lhead
Ldone:
        jr   $ra
)");
  ASSERT_TRUE(M);
  cfg::Cfg G(M->functions()[0]);
  cfg::DominatorTree DT(G);
  cfg::LoopInfo LI(G, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  Interp AI(G, LI);
  AI.run();
  ASSERT_TRUE(AI.tripCounts().count(0));
  EXPECT_EQ(AI.tripCounts().at(0), 10u);
}

TEST(AbsInterp, NonUnitStrideDividesTripCount) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl f
f:
        li   $t0, 0
        li   $t1, 100
Lhead:
        bge  $t0, $t1, Ldone
        addi $t0, $t0, 8
        j    Lhead
Ldone:
        jr   $ra
)");
  ASSERT_TRUE(M);
  cfg::Cfg G(M->functions()[0]);
  cfg::DominatorTree DT(G);
  cfg::LoopInfo LI(G, DT);
  Interp AI(G, LI);
  AI.run();
  ASSERT_TRUE(AI.tripCounts().count(0));
  EXPECT_EQ(AI.tripCounts().at(0), 13u); // ceil(100 / 8)
}

TEST(AbsInterp, SpilledInductionVariableStaysVisible) {
  // -O0 keeps `i` in a frame slot; the Words map must carry it through the
  // loop so the trip count is still proven.
  auto M = test::compileOrDie(R"(
int main() {
  int s; int i;
  s = 0;
  for (i = 0; i < 25; i = i + 1) {
    s = s + i;
  }
  print_int(s);
  return 0;
}
)",
                              0);
  const masm::Function *Main = nullptr;
  for (const masm::Function &F : M->functions())
    if (F.name() == "main")
      Main = &F;
  ASSERT_NE(Main, nullptr);
  cfg::Cfg G(*Main);
  cfg::DominatorTree DT(G);
  cfg::LoopInfo LI(G, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  masm::Layout L(*M);
  Interp::Options IO;
  IO.ModLayout = &L;
  IO.Frame = M->typeInfo().lookupFunction("main");
  Interp AI(G, LI, IO);
  AI.run();
  ASSERT_TRUE(AI.tripCounts().count(0));
  EXPECT_EQ(AI.tripCounts().at(0), 25u);
}

TEST(AbsInterp, DataDependentLoopHasNoTripCount) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl f
f:
        move $t0, $a0
Lhead:
        beq  $t0, $zero, Ldone
        lw   $t0, 0($t0)
        j    Lhead
Ldone:
        jr   $ra
)");
  ASSERT_TRUE(M);
  cfg::Cfg G(M->functions()[0]);
  cfg::DominatorTree DT(G);
  cfg::LoopInfo LI(G, DT);
  Interp AI(G, LI);
  AI.run();
  EXPECT_TRUE(AI.tripCounts().empty());
}

TEST(AbsInterp, StateBeforeMatchesReplay) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl f
f:
        li   $t0, 3
        addi $t1, $t0, 4
        jr   $ra
)");
  ASSERT_TRUE(M);
  cfg::Cfg G(M->functions()[0]);
  cfg::DominatorTree DT(G);
  cfg::LoopInfo LI(G, DT);
  Interp AI(G, LI);
  AI.run();
  State S = AI.stateBefore(2);
  ASSERT_TRUE(S.reg(masm::Reg::T0).isConst());
  EXPECT_EQ(S.reg(masm::Reg::T0).constValue(), 3);
  ASSERT_TRUE(S.reg(masm::Reg::T1).isConst());
  EXPECT_EQ(S.reg(masm::Reg::T1).constValue(), 7);
}

TEST(AbsInterp, TerminatesOnGeneratedCorpus) {
  // Widening must close the fixpoint on arbitrary generated control flow,
  // at both opt levels. Campaign seed 7 held past miscompile reproducers.
  for (uint64_t Index : {0ull, 4ull, 12ull, 39ull, 77ull}) {
    std::string Source = fuzz::generateProgram(fuzz::programSeed(7, Index));
    for (unsigned Opt = 0; Opt <= 1; ++Opt) {
      auto M = test::compileOrDie(Source, Opt);
      masm::Layout L(*M);
      for (const masm::Function &F : M->functions()) {
        if (F.empty())
          continue;
        cfg::Cfg G(F);
        cfg::DominatorTree DT(G);
        cfg::LoopInfo LI(G, DT);
        Interp::Options IO;
        IO.ModLayout = &L;
        IO.Frame = M->typeInfo().lookupFunction(F.name());
        Interp AI(G, LI, IO);
        AI.run();
        EXPECT_TRUE(AI.reachable(G.entry()));
      }
    }
  }
}

} // namespace
