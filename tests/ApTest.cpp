//===- tests/ApTest.cpp - address-pattern construction tests -------------------//

#include "ap/Builder.h"
#include "ap/Pattern.h"
#include "cfg/Cfg.h"
#include "dataflow/ReachingDefs.h"
#include "support/Format.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

using namespace dlq;
using namespace dlq::ap;
using namespace dlq::masm;

namespace {

/// Builds patterns for every load in the first function of \p Asm.
struct PatternFixture {
  std::unique_ptr<Module> M;
  Arena A;
  std::map<uint32_t, std::vector<const ApNode *>> Patterns;

  explicit PatternFixture(const char *Asm) {
    M = test::parseAsmOrDie(Asm);
    if (!M)
      return;
    const Function &F = M->functions()[0];
    cfg::Cfg G(F);
    dataflow::ReachingDefs RD(G);
    Patterns = buildAllLoadPatterns(A, F, G, RD);
  }

  /// Pattern strings of the load at instruction \p Idx.
  std::vector<std::string> of(uint32_t Idx) {
    std::vector<std::string> Out;
    for (const ApNode *N : Patterns[Idx])
      Out.push_back(printPattern(N));
    return Out;
  }
};

} // namespace

TEST(ApBuilder, PlainStackLoad) {
  PatternFixture F(R"(
        .text
        .globl f
f:
        lw $t0, 8($sp)
        jr $ra
)");
  auto P = F.of(0);
  ASSERT_EQ(P.size(), 1u);
  EXPECT_EQ(P[0], "sp+8");
  EXPECT_EQ(derefDepth(F.Patterns[0][0]), 0u);
  BaseRegCounts C = countBaseRegs(F.Patterns[0][0]);
  EXPECT_EQ(C.Sp, 1u);
  EXPECT_EQ(C.Gp, 0u);
}

TEST(ApBuilder, PointerChaseHasDeref) {
  PatternFixture F(R"(
        .text
        .globl f
f:
        lw $t0, 8($sp)
        lw $t1, 4($t0)
        jr $ra
)");
  auto P = F.of(1);
  ASSERT_EQ(P.size(), 1u);
  EXPECT_EQ(P[0], "8(sp)+4");
  EXPECT_EQ(derefDepth(F.Patterns[1][0]), 1u);
}

TEST(ApBuilder, TwoLevelDeref) {
  PatternFixture F(R"(
        .text
        .globl f
f:
        lw $t0, 8($sp)
        lw $t1, 4($t0)
        lw $t2, 12($t1)
        jr $ra
)");
  ASSERT_EQ(F.of(2).size(), 1u);
  EXPECT_EQ(derefDepth(F.Patterns[2][0]), 2u);
}

TEST(ApBuilder, GlobalCountsAsGp) {
  PatternFixture F(R"(
        .data
tbl:    .space 400
        .text
        .globl f
f:
        la $t0, tbl
        lw $t1, 20($t0)
        jr $ra
)");
  auto P = F.of(1);
  ASSERT_EQ(P.size(), 1u);
  EXPECT_EQ(P[0], "&tbl+20");
  BaseRegCounts C = countBaseRegs(F.Patterns[1][0]);
  EXPECT_EQ(C.Gp, 1u);
  EXPECT_EQ(C.Sp, 0u);
}

TEST(ApBuilder, ArrayIndexShowsShift) {
  PatternFixture F(R"(
        .data
arr:    .space 400
        .text
        .globl f
f:
        lw  $t0, 0($sp)
        sll $t0, $t0, 2
        la  $t1, arr
        add $t1, $t1, $t0
        lw  $t2, 0($t1)
        jr  $ra
)");
  auto P = F.of(4);
  ASSERT_EQ(P.size(), 1u);
  EXPECT_EQ(P[0], "&arr+{(sp)<<2}") << "0($sp) folds to a bare (sp) deref";
  EXPECT_TRUE(hasMulOrShift(F.Patterns[4][0]));
  EXPECT_EQ(derefDepth(F.Patterns[4][0]), 1u);
  BaseRegCounts C = countBaseRegs(F.Patterns[4][0]);
  EXPECT_EQ(C.Gp, 1u);
  EXPECT_EQ(C.Sp, 1u);
}

TEST(ApBuilder, ParamAndRetLeaves) {
  PatternFixture F(R"(
        .text
        .globl g
g:
        jr $ra
        .globl f
f:
        lw  $t0, 4($a0)
        jal g
        lw  $t1, 8($v0)
        jr  $ra
)");
  // The fixture builds the FIRST function; rebuild for f explicitly.
  const Function &Fn = F.M->functions()[1];
  cfg::Cfg G(Fn);
  dataflow::ReachingDefs RD(G);
  Arena A;
  auto Pats = buildAllLoadPatterns(A, Fn, G, RD);
  ASSERT_EQ(Pats.size(), 2u);
  EXPECT_EQ(printPattern(Pats[0][0]), "a0+4");
  EXPECT_EQ(printPattern(Pats[2][0]), "v0+8");
  BaseRegCounts C0 = countBaseRegs(Pats[0][0]);
  EXPECT_EQ(C0.Param, 1u);
  BaseRegCounts C2 = countBaseRegs(Pats[2][0]);
  EXPECT_EQ(C2.Ret, 1u);
}

TEST(ApBuilder, RecurrenceDetected) {
  PatternFixture F(R"(
        .text
        .globl f
f:
        li   $t0, 0
        la   $t1, buf
Lhead:
        lw   $t2, 0($t1)
        addi $t1, $t1, 4
        blt  $t2, $a0, Lhead
        jr   $ra
        .data
buf:    .space 40
)");
  auto &Pats = F.Patterns[2];
  ASSERT_FALSE(Pats.empty());
  bool AnyRecur = false;
  for (const ApNode *N : Pats)
    AnyRecur |= hasRecurrence(N);
  EXPECT_TRUE(AnyRecur) << "pointer walks around a loop must mark AG7";
}

TEST(ApBuilder, MultiplePathsGiveMultiplePatterns) {
  PatternFixture F(R"(
        .text
        .globl f
f:
        beq  $a0, $zero, Lelse
        addi $t0, $sp, 16
        j    Ljoin
Lelse:
        la   $t0, gdata
Ljoin:
        lw   $t1, 0($t0)
        jr   $ra
        .data
gdata:  .space 16
)");
  auto P = F.of(4);
  ASSERT_EQ(P.size(), 2u);
  // One sp-based and one global pattern, in reaching-definition order.
  bool SawSp = false, SawGlobal = false;
  for (const std::string &S : P) {
    SawSp |= S.find("sp") != std::string::npos;
    SawGlobal |= S.find("&gdata") != std::string::npos;
  }
  EXPECT_TRUE(SawSp);
  EXPECT_TRUE(SawGlobal);
}

TEST(ApBuilder, CallClobberGivesUnknown) {
  PatternFixture F(R"(
        .text
        .globl g
g:
        jr $ra
)");
  // $t5 has no definition: entry def of a non-basic register -> Unknown.
  PatternFixture F2(R"(
        .text
        .globl f
f:
        lw $t0, 0($t5)
        jr $ra
)");
  auto P = F2.of(0);
  ASSERT_EQ(P.size(), 1u);
  EXPECT_TRUE(hasUnknown(F2.Patterns[0][0]));
}

TEST(ApBuilder, ConstantFoldingCompactsOffsets) {
  PatternFixture F(R"(
        .text
        .globl f
f:
        addi $t0, $sp, 16
        addi $t0, $t0, 8
        lw   $t1, 4($t0)
        jr   $ra
)");
  auto P = F.of(2);
  ASSERT_EQ(P.size(), 1u);
  EXPECT_EQ(P[0], "sp+28");
}

TEST(ApBuilder, LuiOriMaterialization) {
  PatternFixture F(R"(
        .text
        .globl f
f:
        lui $t0, 4096
        ori $t0, $t0, 16
        lw  $t1, 0($t0)
        jr  $ra
)");
  auto P = F.of(2);
  ASSERT_EQ(P.size(), 1u);
  EXPECT_EQ(P[0], "268435472"); // 4096<<16 | 16.
}

TEST(ApBuilder, DepthCapYieldsUnknown) {
  // A chain of 40 addi's exceeds MaxDepth and must not blow up.
  std::string Asm = ".text\n.globl f\nf:\n        move $t0, $sp\n";
  for (int I = 0; I != 40; ++I)
    Asm += "        addi $t0, $t0, 4\n";
  Asm += "        lw $t1, 0($t0)\n        jr $ra\n";
  PatternFixture F(Asm.c_str());
  auto &Pats = F.Patterns[41];
  ASSERT_FALSE(Pats.empty());
  EXPECT_TRUE(hasUnknown(Pats[0]));
}

TEST(ApBuilder, PatternCountCapHolds) {
  // 6 paths x 6 paths through two merges would give 36 patterns uncapped.
  std::string Asm = ".text\n.globl f\nf:\n";
  auto branchy = [&](const char *RegName, int Tag) {
    for (int I = 0; I != 5; ++I)
      Asm += formatString("        beq $a0, $zero, L%d_%d\n", Tag, I);
    Asm += formatString("        li %s, %d\n", RegName, 100 + Tag);
    Asm += formatString("        j L%d_end\n", Tag);
    for (int I = 0; I != 5; ++I) {
      Asm += formatString("L%d_%d:\n", Tag, I);
      Asm += formatString("        li %s, %d\n", RegName, Tag * 10 + I);
      if (I != 4)
        Asm += formatString("        j L%d_end\n", Tag);
    }
    Asm += formatString("L%d_end:\n", Tag);
  };
  branchy("$t0", 1);
  branchy("$t1", 2);
  Asm += "        add $t2, $t0, $t1\n";
  Asm += "        lw  $t3, 0($t2)\n";
  Asm += "        jr  $ra\n";

  PatternFixture F(Asm.c_str());
  ApBuilderOptions Opts;
  for (auto &[Idx, Pats] : F.Patterns)
    EXPECT_LE(Pats.size(), Opts.MaxPatternsPerLoad);
}

TEST(ApBuilder, CombineDedupsBeforeCapping) {
  // Three registers with the const defs {0,1,2,3} each, summed pairwise:
  // the factory folds every Add of two consts, so the 7 x 4 = 28 combinations
  // of the second add collapse onto the ten sums 0..9. combine() used to
  // truncate at MaxPatternsPerLoad *pushes* and dedup afterwards, so
  // duplicate sums occupied the cap and the largest sums were silently lost
  // (only a 7-wide window of values survived). All ten must be distinct
  // patterns of the load.
  std::string Asm = ".text\n.globl f\nf:\n";
  auto diamond = [&](const char *RegName, int Tag) {
    for (int I = 0; I != 3; ++I)
      Asm += formatString("        beq $a0, $zero, L%d_%d\n", Tag, I);
    Asm += formatString("        li %s, 0\n", RegName);
    Asm += formatString("        j L%d_end\n", Tag);
    for (int I = 0; I != 3; ++I) {
      Asm += formatString("L%d_%d:\n", Tag, I);
      Asm += formatString("        li %s, %d\n", RegName, I + 1);
      if (I != 2)
        Asm += formatString("        j L%d_end\n", Tag);
    }
    Asm += formatString("L%d_end:\n", Tag);
  };
  diamond("$t0", 1);
  diamond("$t1", 2);
  diamond("$t2", 3);
  Asm += "        add $t3, $t0, $t1\n";
  Asm += "        add $t4, $t3, $t2\n";
  Asm += "        lw  $t5, 0($t4)\n";
  Asm += "        jr  $ra\n";

  PatternFixture F(Asm.c_str());
  // Each diamond is 3 beq + 4 li + 3 j = 10 instructions; the load follows
  // the two adds.
  uint32_t LoadIdx = 32;
  ASSERT_TRUE(F.Patterns.count(LoadIdx));
  std::vector<std::string> P = F.of(LoadIdx);
  std::sort(P.begin(), P.end());
  EXPECT_EQ(P.size(), 10u);
  for (int Sum = 0; Sum != 10; ++Sum)
    EXPECT_TRUE(std::find(P.begin(), P.end(), std::to_string(Sum)) != P.end())
        << "missing constant pattern " << Sum;
}

TEST(ApPattern, PrintPrecedence) {
  Arena A;
  ApFactory F(A);
  const ApNode *Sp = F.getBase(Reg::SP);
  const ApNode *Sum = F.getBinary(ApKind::Add, Sp, F.getConst(8));
  const ApNode *Prod = F.getBinary(ApKind::Mul, Sum, F.getConst(4));
  // (sp+8)*4 needs braces around the addition.
  EXPECT_EQ(printPattern(Prod), "{sp+8}*4");
  const ApNode *D = F.getDeref(Sum);
  EXPECT_EQ(printPattern(D), "8(sp)");
}

TEST(ApPattern, EqualityIsStructural) {
  Arena A;
  ApFactory F(A);
  const ApNode *P1 =
      F.getDeref(F.getBinary(ApKind::Add, F.getBase(Reg::SP), F.getConst(8)));
  const ApNode *P2 =
      F.getDeref(F.getBinary(ApKind::Add, F.getBase(Reg::SP), F.getConst(8)));
  const ApNode *P3 =
      F.getDeref(F.getBinary(ApKind::Add, F.getBase(Reg::SP), F.getConst(12)));
  EXPECT_TRUE(patternsEqual(P1, P2));
  EXPECT_FALSE(patternsEqual(P1, P3));
}

TEST(ApPattern, ConstantFoldingWrapsOnOverflow) {
  // Found by the sanitized fuzz campaign: folding Const+Const (and Sub/Mul,
  // and negating a Sub's rhs) overflowed in signed host arithmetic, which is
  // UB on valid analyzed programs. The folds now wrap mod 2^32 like the
  // simulated machine.
  Arena A;
  ApFactory F(A);
  const ApNode *Max = F.getConst(2147483647);
  const ApNode *Min = F.getConst(-2147483647 - 1);
  EXPECT_EQ(F.getBinary(ApKind::Add, Max, F.getConst(1))->Value,
            -2147483647 - 1);
  EXPECT_EQ(F.getBinary(ApKind::Sub, Min, F.getConst(1))->Value, 2147483647);
  EXPECT_EQ(F.getBinary(ApKind::Mul, Max, F.getConst(2))->Value, -2);
  // Sub with a Const rhs rewrites to Add of the negation; INT_MIN must not
  // be negated in signed arithmetic.
  const ApNode *N = F.getBinary(ApKind::Sub, F.getBase(Reg::SP), Min);
  ASSERT_EQ(N->Kind, ApKind::Add);
  EXPECT_EQ(N->Rhs->Value, -2147483647 - 1);
}

TEST(ApPattern, SubFoldsToNegativeAdd) {
  Arena A;
  ApFactory F(A);
  const ApNode *N =
      F.getBinary(ApKind::Sub, F.getBase(Reg::SP), F.getConst(16));
  EXPECT_EQ(printPattern(N), "sp+-16");
  BaseRegCounts C = countBaseRegs(N);
  EXPECT_EQ(C.Sp, 1u);
}
