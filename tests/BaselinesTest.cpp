//===- tests/BaselinesTest.cpp - OKN and BDH baseline tests --------------------//

#include "baselines/Bdh.h"
#include "baselines/Okn.h"
#include "classify/Delinquency.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::baselines;
using namespace dlq::ap;
using namespace dlq::masm;

//===----------------------------------------------------------------------===//
// OKN
//===----------------------------------------------------------------------===//

namespace {

struct OknLab {
  Arena A;
  ApFactory F{A};
};

} // namespace

TEST(Okn, PointerDerefWins) {
  OknLab L;
  const ApNode *Deref = L.F.getDeref(
      L.F.getBinary(ApKind::Add, L.F.getBase(Reg::SP), L.F.getConst(8)));
  EXPECT_EQ(oknClassOf({Deref}), OknClass::PointerDeref);
}

TEST(Okn, StridedFromShiftOrRecurrence) {
  OknLab L;
  const ApNode *Shifted = L.F.getBinary(
      ApKind::Add, L.F.getGlobal("a", 0),
      L.F.getBinary(ApKind::Shl, L.F.getBase(Reg::A0), L.F.getConst(2)));
  EXPECT_EQ(oknClassOf({Shifted}), OknClass::Strided);

  const ApNode *Recur =
      L.F.getBinary(ApKind::Add, L.F.getRecur(), L.F.getConst(4));
  EXPECT_EQ(oknClassOf({Recur}), OknClass::Strided);
}

TEST(Okn, PlainScalarIsOther) {
  OknLab L;
  const ApNode *Scalar =
      L.F.getBinary(ApKind::Add, L.F.getBase(Reg::SP), L.F.getConst(16));
  EXPECT_EQ(oknClassOf({Scalar}), OknClass::Other);
  EXPECT_EQ(oknClassOf({L.F.getGlobal("g", 0)}), OknClass::Other);
}

TEST(Okn, AnyPatternVotes) {
  OknLab L;
  const ApNode *Scalar =
      L.F.getBinary(ApKind::Add, L.F.getBase(Reg::SP), L.F.getConst(16));
  const ApNode *Deref = L.F.getDeref(Scalar);
  EXPECT_EQ(oknClassOf({Scalar, Deref}), OknClass::PointerDeref);
}

TEST(Okn, ModuleLevelSet) {
  auto M = test::compileOrDie(
      "int a[100];"
      "int main() {"
      "  int i; int s; int t; s = 0; t = 0;"
      "  for (i = 0; i < 100; i = i + 1) s = s + a[i];"
      "  t = s;"
      "  return t; }",
      0);
  ASSERT_TRUE(M);
  classify::ModuleAnalysis MA(*M);
  auto Delta = oknDelinquentSet(MA);
  EXPECT_FALSE(Delta.empty());
  EXPECT_LT(Delta.size(), MA.loadPatterns().size())
      << "plain scalar reloads must not be flagged";
  // Every flagged load must be PointerDeref or Strided.
  auto Classes = oknClassify(MA);
  for (const auto &Ref : Delta)
    EXPECT_NE(Classes.at(Ref), OknClass::Other);
}

//===----------------------------------------------------------------------===//
// BDH
//===----------------------------------------------------------------------===//

namespace {

/// Builds a module, returns its BDH classes as strings keyed by the order
/// of load appearance.
std::vector<std::string> bdhClassesOf(const char *Source) {
  auto M = test::compileOrDie(Source, 0);
  if (!M)
    return {};
  classify::ModuleAnalysis MA(*M);
  BdhAnalyzer B(MA);
  std::vector<std::string> Out;
  for (const auto &[Ref, Class] : B.classes())
    Out.push_back(Class.str());
  return Out;
}

} // namespace

TEST(Bdh, SelectedClassesAreThePaperSix) {
  const std::set<std::string> &S = bdhSelectedClasses();
  EXPECT_EQ(S.size(), 6u);
  for (const char *C : {"GAN", "HSN", "HFN", "HAN", "HFP", "HAP"})
    EXPECT_TRUE(S.count(C)) << C;
  EXPECT_FALSE(S.count("SSN")) << "stack scalars are not selected";
}

TEST(Bdh, StackScalarIsSSN) {
  auto Classes = bdhClassesOf("int main() { int x; x = 1; return x; }");
  ASSERT_FALSE(Classes.empty());
  // The reload of x: stack scalar non-pointer.
  bool SawSSN = false;
  for (const std::string &C : Classes)
    SawSSN |= C == "SSN";
  EXPECT_TRUE(SawSSN) << "classes seen: " << ::testing::PrintToString(Classes);
}

TEST(Bdh, GlobalArrayIsGA) {
  auto Classes = bdhClassesOf(
      "int a[64];"
      "int main() { int i; int s; s = 0;"
      "  for (i = 0; i < 64; i = i + 1) s = s + a[i];"
      "  return s; }");
  bool SawGAN = false;
  for (const std::string &C : Classes)
    SawGAN |= C == "GAN";
  EXPECT_TRUE(SawGAN) << ::testing::PrintToString(Classes);
}

TEST(Bdh, HeapFieldPointerIsHFP) {
  auto Classes = bdhClassesOf(
      "struct Node { int v; struct Node *next; };"
      "struct Node *head;"
      "int main() {"
      "  struct Node *n; int s; s = 0;"
      "  for (n = head; n != 0; n = n->next) s = s + n->v;"
      "  return s; }");
  // The n->next load yields a pointer used as an address: HFP. The n->v
  // load is a non-pointer field: HFN (or HSN at offset 0).
  bool SawHFP = false, SawHeapN = false;
  for (const std::string &C : Classes) {
    SawHFP |= C == "HFP";
    SawHeapN |= C == "HSN" || C == "HFN";
  }
  EXPECT_TRUE(SawHFP) << ::testing::PrintToString(Classes);
  EXPECT_TRUE(SawHeapN) << ::testing::PrintToString(Classes);
}

TEST(Bdh, GlobalScalarPointerIsGSP) {
  auto Classes = bdhClassesOf(
      "struct Node { int v; struct Node *next; };"
      "struct Node *head;"
      "int main() { return head == 0 ? 1 : 0; }");
  bool SawGSP = false;
  for (const std::string &C : Classes)
    SawGSP |= C == "GSP";
  EXPECT_TRUE(SawGSP) << ::testing::PrintToString(Classes);
}

TEST(Bdh, DelinquentSetExcludesStackScalars) {
  auto M = test::compileOrDie(
      "struct Node { int v; struct Node *next; };"
      "struct Node *head;"
      "int main() {"
      "  struct Node *n; int s; s = 0;"
      "  for (n = head; n != 0; n = n->next) s = s + n->v;"
      "  return s; }",
      0);
  ASSERT_TRUE(M);
  classify::ModuleAnalysis MA(*M);
  BdhAnalyzer B(MA);
  auto Delta = B.delinquentSet();
  EXPECT_FALSE(Delta.empty());
  for (const auto &Ref : Delta) {
    const std::string C = B.classes().at(Ref).str();
    EXPECT_TRUE(bdhSelectedClasses().count(C)) << C;
  }
}
