//===- tests/CamodelTest.cpp - analytical cache-model tests --------------------//
//
// Three layers: closed-form unit tests of the hit-probability math,
// minimized MinC reproducers for the access shapes the model must get
// right (and the ones it must refuse), and registry-wide cross-validation
// of predicted per-PC miss ratios against the simulator.
//
//===----------------------------------------------------------------------===//

#include "camodel/Camodel.h"
#include "baselines/ReuseDist.h"
#include "pipeline/Pipeline.h"
#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace dlq;
using namespace dlq::camodel;

namespace {

sim::CacheConfig baseCache() { return sim::CacheConfig::baseline(); }

/// Reference P(hit | D) computed the slow exact way: D blocks land in the
/// access's set independently with probability 1/numSets; the block
/// survives iff fewer than Assoc of them do.
double referenceHitProbability(uint64_t D, const sim::CacheConfig &Cfg) {
  uint64_t Sets = Cfg.SizeBytes / (Cfg.Assoc * Cfg.BlockBytes);
  if (D < Cfg.Assoc)
    return 1.0;
  if (Sets <= 1)
    return 0.0;
  double P = 1.0 / static_cast<double>(Sets);
  double Sum = 0;
  for (uint64_t K = 0; K < Cfg.Assoc; ++K) {
    // C(D, K) p^K (1-p)^(D-K) via logs to stay finite for large D.
    double LogC = 0;
    for (uint64_t I = 0; I < K; ++I)
      LogC += std::log(static_cast<double>(D - I)) -
              std::log(static_cast<double>(I + 1));
    Sum += std::exp(LogC + static_cast<double>(K) * std::log(P) +
                    static_cast<double>(D - K) * std::log1p(-P));
  }
  return Sum;
}

/// Compiles MinC, builds the model and returns the predictions plus the
/// simulator's per-load truth for the same cache.
struct ModelAndTruth {
  std::unique_ptr<masm::Module> M;
  std::map<masm::InstrRef, Prediction> Preds;
  std::map<masm::InstrRef, sim::LoadStat> Truth;
};

ModelAndTruth modelAndTruth(std::string_view Source,
                            const sim::CacheConfig &Cfg) {
  ModelAndTruth R;
  R.M = test::compileOrDie(Source);
  masm::Layout L(*R.M);
  CacheModel Model(*R.M, L);
  R.Preds = Model.predict(Cfg);

  sim::MachineOptions MOpts;
  MOpts.DCache = Cfg;
  sim::Machine Mach(*R.M, L, MOpts);
  sim::RunResult Run = Mach.run();
  EXPECT_EQ(Run.Halt, sim::HaltReason::Exited);
  R.Truth = Run.loadStats(*R.M);
  return R;
}

/// The prediction for the most-missing load of function \p Func (execs
/// break ties): in these reproducers that is the array access under test,
/// never the equally-hot stack reloads around it.
const Prediction *hottestPrediction(const ModelAndTruth &R,
                                    const char *Func, uint64_t *Execs = nullptr,
                                    double *SimRatio = nullptr) {
  uint32_t FI = masm::InvalidIndex;
  const auto &Funcs = R.M->functions();
  for (uint32_t I = 0; I != Funcs.size(); ++I)
    if (Funcs[I].name() == Func)
      FI = I;
  if (FI == masm::InvalidIndex)
    return nullptr;
  const Prediction *Best = nullptr;
  uint64_t BestMisses = 0, BestExecs = 0;
  for (const auto &[Ref, P] : R.Preds) {
    if (Ref.FuncIdx != FI)
      continue;
    auto It = R.Truth.find(Ref);
    if (It == R.Truth.end())
      continue;
    const sim::LoadStat &St = It->second;
    if (Best && (St.Misses < BestMisses ||
                 (St.Misses == BestMisses && St.Execs <= BestExecs)))
      continue;
    BestMisses = St.Misses;
    BestExecs = St.Execs;
    Best = &P;
    if (Execs)
      *Execs = St.Execs;
    if (SimRatio)
      *SimRatio = St.Execs == 0
                      ? 0
                      : static_cast<double>(St.Misses) / St.Execs;
  }
  return Best;
}

} // namespace

//===----------------------------------------------------------------------===//
// Closed-form unit tests
//===----------------------------------------------------------------------===//

TEST(Camodel, HitProbabilityWithinAssociativityIsCertain) {
  sim::CacheConfig Cfg = baseCache(); // 4-way
  for (uint64_t D = 0; D < Cfg.Assoc; ++D)
    EXPECT_EQ(hitProbability(D, Cfg), 1.0) << "D=" << D;
}

TEST(Camodel, FullyAssociativeIsAStepFunction) {
  // One set: LRU keeps exactly Assoc blocks, so reuse distance beyond it
  // always evicts.
  sim::CacheConfig FA{4 * 32, 4, 32}; // numSets = 1
  EXPECT_EQ(hitProbability(3, FA), 1.0);
  EXPECT_EQ(hitProbability(4, FA), 0.0);
  EXPECT_EQ(hitProbability(1000, FA), 0.0);
}

TEST(Camodel, HitProbabilityMatchesBinomialReference) {
  sim::CacheConfig Cfg = baseCache(); // 64 sets, 4-way
  for (uint64_t D : {4ull, 16ull, 64ull, 256ull, 1024ull, 100000ull}) {
    double Got = hitProbability(D, Cfg);
    double Want = referenceHitProbability(D, Cfg);
    EXPECT_NEAR(Got, Want, 1e-9) << "D=" << D;
  }
}

TEST(Camodel, HitProbabilityIsMonotoneInDistanceAndGeometry) {
  sim::CacheConfig Cfg = baseCache();
  double Prev = 1.0;
  for (uint64_t D = 0; D <= 2048; D += 32) {
    double P = hitProbability(D, Cfg);
    EXPECT_LE(P, Prev + 1e-12) << "D=" << D;
    EXPECT_GE(P, 0.0);
    Prev = P;
  }
  // Bigger cache (more sets), same distance: never a lower hit
  // probability. (No such guarantee for associativity at fixed size —
  // fewer sets concentrate the interfering blocks, and beyond capacity
  // the wider cache loses; the model reproduces that.)
  sim::CacheConfig Big{64 * 1024, 4, 32};
  for (uint64_t D : {64ull, 256ull, 512ull})
    EXPECT_GE(hitProbability(D, Big), hitProbability(D, Cfg));
  sim::CacheConfig Wide{8 * 1024, 8, 32};
  EXPECT_GE(hitProbability(64, Wide), hitProbability(64, Cfg))
      << "below capacity, associativity must help";
}

//===----------------------------------------------------------------------===//
// Minimized reproducers
//===----------------------------------------------------------------------===//

TEST(Camodel, UnitStrideStreamIsPredicted) {
  // 256KB walked once: every 8th 4-byte access starts a 32-byte block.
  ModelAndTruth R = modelAndTruth(R"(
    int data[65536];
    int workload_main() {
      int i; int acc;
      acc = 0;
      for (i = 0; i < 65536; i = i + 1) acc = acc + data[i];
      print_int(acc);
      return 0;
    }
    int main() { return workload_main(); }
  )",
                                  baseCache());
  uint64_t Execs = 0;
  double Sim = 0;
  const Prediction *P = hottestPrediction(R, "workload_main", &Execs, &Sim);
  ASSERT_NE(P, nullptr);
  ASSERT_TRUE(P->Known);
  EXPECT_EQ(P->R, Regime::Streaming);
  EXPECT_GT(Execs, 60000u);
  EXPECT_NEAR(P->MissRatio, 0.125, 0.01);
  EXPECT_NEAR(P->MissRatio, Sim, 0.05);
}

TEST(Camodel, BlockStrideStreamMissesEveryAccess) {
  // Stride = block size: every access opens a new block.
  ModelAndTruth R = modelAndTruth(R"(
    int data[65536];
    int workload_main() {
      int i; int acc;
      acc = 0;
      for (i = 0; i < 65536; i = i + 8) acc = acc + data[i];
      print_int(acc);
      return 0;
    }
    int main() { return workload_main(); }
  )",
                                  baseCache());
  double Sim = 0;
  const Prediction *P = hottestPrediction(R, "workload_main", nullptr, &Sim);
  ASSERT_NE(P, nullptr);
  ASSERT_TRUE(P->Known);
  EXPECT_NEAR(P->MissRatio, 1.0, 0.01);
  EXPECT_NEAR(P->MissRatio, Sim, 0.05);
}

TEST(Camodel, ResidentArrayRewalkFits) {
  // A 2KB array re-walked 4096 times fits the 8KB cache: after the cold
  // pass everything hits, and the cold share is amortized away.
  ModelAndTruth R = modelAndTruth(R"(
    int small[512];
    int workload_main() {
      int pass; int i; int acc;
      acc = 0;
      for (pass = 0; pass < 4096; pass = pass + 1)
        for (i = 0; i < 512; i = i + 1) acc = acc + small[i];
      print_int(acc);
      return 0;
    }
    int main() { return workload_main(); }
  )",
                                  baseCache());
  double Sim = 0;
  const Prediction *P = hottestPrediction(R, "workload_main", nullptr, &Sim);
  ASSERT_NE(P, nullptr);
  ASSERT_TRUE(P->Known);
  EXPECT_EQ(P->R, Regime::Fits);
  EXPECT_LT(P->MissRatio, 0.02);
  EXPECT_NEAR(P->MissRatio, Sim, 0.05);
}

TEST(Camodel, EvictedRewalkStreamsEveryPass) {
  // A 64KB array re-walked: 8x the cache, so every pass streams.
  ModelAndTruth R = modelAndTruth(R"(
    int big[16384];
    int workload_main() {
      int pass; int i; int acc;
      acc = 0;
      for (pass = 0; pass < 64; pass = pass + 1)
        for (i = 0; i < 16384; i = i + 1) acc = acc + big[i];
      print_int(acc);
      return 0;
    }
    int main() { return workload_main(); }
  )",
                                  baseCache());
  double Sim = 0;
  const Prediction *P = hottestPrediction(R, "workload_main", nullptr, &Sim);
  ASSERT_NE(P, nullptr);
  ASSERT_TRUE(P->Known);
  EXPECT_EQ(P->R, Regime::Streaming);
  EXPECT_NEAR(P->MissRatio, 0.125, 0.02);
  EXPECT_NEAR(P->MissRatio, Sim, 0.05);
}

TEST(Camodel, PointerChaseIsHonestlyUnknown) {
  // The hot load's address is itself loaded from memory: the model must
  // refuse to guess, not report a low miss ratio.
  ModelAndTruth R = modelAndTruth(R"(
    struct Node { int value; struct Node *next; };
    struct Node pool[4096];
    int workload_main() {
      int i; int acc; struct Node *p;
      for (i = 0; i < 4096; i = i + 1) {
        pool[i].value = i;
        pool[i].next = &pool[(i * 2017 + 1) % 4096];
      }
      acc = 0;
      p = &pool[0];
      for (i = 0; i < 100000; i = i + 1) {
        acc = acc + p->value;
        p = p->next;
      }
      print_int(acc);
      return 0;
    }
    int main() { return workload_main(); }
  )",
                                  baseCache());
  // The chase loop's value load must be Unknown; a confident wrong
  // prediction here is the failure mode this backend documents away.
  uint64_t Execs = 0;
  const Prediction *P = hottestPrediction(R, "workload_main", &Execs);
  ASSERT_NE(P, nullptr);
  EXPECT_GT(Execs, 90000u);
  EXPECT_FALSE(P->Known);
  EXPECT_EQ(P->R, Regime::Unknown);
}

TEST(Camodel, SparseColumnWalkCountsBlocksNotSpan) {
  // Column-major walk of a 32x32 int matrix from inside a row loop: each
  // execution touches one block 128 bytes away, and the whole object is
  // 4KB — resident in the 8KB cache, so steady state hits.
  ModelAndTruth R = modelAndTruth(R"(
    int mat[32][32];
    int workload_main() {
      int pass; int i; int j; int acc;
      acc = 0;
      for (pass = 0; pass < 512; pass = pass + 1)
        for (i = 0; i < 32; i = i + 1)
          for (j = 0; j < 32; j = j + 1)
            acc = acc + mat[j][i];
      print_int(acc);
      return 0;
    }
    int main() { return workload_main(); }
  )",
                                  baseCache());
  double Sim = 0;
  const Prediction *P = hottestPrediction(R, "workload_main", nullptr, &Sim);
  ASSERT_NE(P, nullptr);
  ASSERT_TRUE(P->Known);
  EXPECT_LT(P->MissRatio, 0.10);
  EXPECT_NEAR(P->MissRatio, Sim, 0.10);
}

TEST(Camodel, ConditionalResetLoopDoesNotPoisonNeighbours) {
  // compress-shaped: an amortized table reset guarded by a counter. The
  // scalar reloads in the main loop must not be charged the reset's whole
  // footprint every iteration.
  ModelAndTruth R = modelAndTruth(R"(
    int table[8192];
    int workload_main() {
      int i; int k; int n; int acc;
      n = 0;
      acc = 0;
      for (i = 0; i < 8192; i = i + 1) table[i] = i;
      for (i = 0; i < 200000; i = i + 1) {
        acc = acc + table[(i * 131) % 8192] + n;
        n = n + 1;
        if (n >= 65536) {
          for (k = 0; k < 8192; k = k + 1) table[k] = 0;
          n = 0;
        }
      }
      print_int(acc);
      return 0;
    }
    int main() { return workload_main(); }
  )",
                                  baseCache());
  // Every predicted-Known load in the main loop with sim ratio ~0 must not
  // be predicted near 1: the exec-weighted error stays small.
  double ErrSum = 0, W = 0;
  for (const auto &[Ref, P] : R.Preds) {
    if (!P.Known)
      continue;
    auto It = R.Truth.find(Ref);
    if (It == R.Truth.end() || It->second.Execs < 1000)
      continue;
    double Sim = static_cast<double>(It->second.Misses) / It->second.Execs;
    ErrSum += static_cast<double>(It->second.Execs) *
              std::abs(P.MissRatio - Sim);
    W += static_cast<double>(It->second.Execs);
  }
  ASSERT_GT(W, 0);
  EXPECT_LT(ErrSum / W, 0.10);
}

//===----------------------------------------------------------------------===//
// Registry-wide cross-validation
//===----------------------------------------------------------------------===//

namespace {

/// Exec-weighted mean |predicted - simulated| over Known, executed loads.
double weightedError(const std::map<masm::InstrRef, Prediction> &Preds,
                     const std::map<masm::InstrRef, sim::LoadStat> &Truth) {
  double Err = 0, W = 0;
  for (const auto &[Ref, P] : Preds) {
    if (!P.Known)
      continue;
    auto It = Truth.find(Ref);
    if (It == Truth.end() || It->second.Execs == 0)
      continue;
    double Sim = static_cast<double>(It->second.Misses) / It->second.Execs;
    Err += static_cast<double>(It->second.Execs) *
           std::abs(P.MissRatio - Sim);
    W += static_cast<double>(It->second.Execs);
  }
  return W == 0 ? 0 : Err / W;
}

} // namespace

TEST(Camodel, RegistryCrossValidationWithinTolerance) {
  // Acceptance gate: on every registry workload, the exec-weighted mean
  // absolute error of predicted vs simulated per-PC miss ratios stays
  // within 10% absolute; on the regular array/loop categories it must be
  // well inside that.
  pipeline::Driver D;
  sim::CacheConfig Cfg = baseCache();
  const std::set<std::string> RegularCats = {
      "stencil", "strided-scans", "blocked-transform", "sparse-matvec"};
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    pipeline::GroundTruth G =
        D.groundTruth(W.Name, pipeline::InputSel::Input1, 0, Cfg);
    const pipeline::Compiled &C =
        D.compiled(W.Name, pipeline::InputSel::Input1, 0);
    CacheModel Model(*C.M, *C.L);
    auto Preds = Model.predict(Cfg);

    size_t Loads = 0, Known = 0;
    for (const auto &[Ref, P] : Preds) {
      ++Loads;
      Known += P.Known;
    }
    EXPECT_GT(Loads, 0u) << W.Name;
    // The model must commit on a substantial majority of loads (cold
    // diagnostics and scalar reloads dominate the static count).
    EXPECT_GT(static_cast<double>(Known) / Loads, 0.5) << W.Name;

    double Err = weightedError(Preds, G.Stats);
    EXPECT_LT(Err, 0.10) << W.Name;
    if (RegularCats.count(W.Category))
      EXPECT_LT(Err, 0.05) << W.Name << " (" << W.Category << ")";
  }
}

TEST(Camodel, PredictionsRespondToGeometry) {
  // Streaming ratios are block-size bound; Fits verdicts flip as the cache
  // shrinks below the footprint. Checked on the strided-scans workload.
  pipeline::Driver D;
  const pipeline::Compiled &C =
      D.compiled("art_like", pipeline::InputSel::Input1, 0);
  CacheModel Model(*C.M, *C.L);
  auto Small = Model.predict(sim::CacheConfig{1024, 4, 32});
  auto Large = Model.predict(sim::CacheConfig{1024 * 1024, 4, 32});
  double SumSmall = 0, SumLarge = 0;
  size_t N = 0;
  for (const auto &[Ref, P] : Small) {
    if (!P.Known)
      continue;
    auto It = Large.find(Ref);
    if (It == Large.end() || !It->second.Known)
      continue;
    SumSmall += P.MissRatio;
    SumLarge += It->second.MissRatio;
    ++N;
  }
  ASSERT_GT(N, 0u);
  EXPECT_LT(SumLarge, SumSmall)
      << "a 1MB cache must not predict more misses than a 1KB cache";
}

TEST(Camodel, ReuseDistBaselineFlagsStreamingLoads) {
  pipeline::Driver D;
  const pipeline::Compiled &C =
      D.compiled("art_like", pipeline::InputSel::Input1, 0);
  baselines::ReuseDistAnalyzer Rd(*C.M, *C.L, baseCache());
  EXPECT_FALSE(Rd.delinquentSet().empty());
  // The flagged set must cover most actual misses on this array workload.
  pipeline::GroundTruth G =
      D.groundTruth("art_like", pipeline::InputSel::Input1, 0, baseCache());
  uint64_t Covered = 0, Total = 0;
  for (const auto &[Ref, St] : G.Stats) {
    Total += St.Misses;
    if (Rd.delinquentSet().count(Ref))
      Covered += St.Misses;
  }
  ASSERT_GT(Total, 0u);
  EXPECT_GT(static_cast<double>(Covered) / Total, 0.8);
}
