//===- tests/CfgTest.cpp - CFG, dominators, loops ------------------------------//

#include "cfg/Cfg.h"
#include "masm/Parser.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::cfg;
using namespace dlq::masm;

namespace {

/// A diamond: entry -> (then | else) -> join.
const char *DiamondAsm = R"(
        .text
        .globl f
f:
        li   $t0, 1
        beq  $t0, $zero, Lelse
        li   $t1, 2
        j    Ljoin
Lelse:
        li   $t1, 3
Ljoin:
        li   $t2, 4
        jr   $ra
)";

/// A simple counted loop.
const char *LoopAsm = R"(
        .text
        .globl f
f:
        li   $t0, 0
        li   $t1, 10
Lhead:
        bge  $t0, $t1, Ldone
        addi $t0, $t0, 1
        j    Lhead
Ldone:
        jr   $ra
)";

} // namespace

TEST(Cfg, DiamondBlocks) {
  auto M = test::parseAsmOrDie(DiamondAsm);
  ASSERT_TRUE(M);
  Cfg G(M->functions()[0]);

  // Blocks: [0,2) entry, [2,4) then, [4,5) else, [5,7) join.
  ASSERT_EQ(G.numBlocks(), 4u);
  EXPECT_EQ(G.blocks()[0].Begin, 0u);
  EXPECT_EQ(G.blocks()[0].End, 2u);
  ASSERT_EQ(G.blocks()[0].Succs.size(), 2u);

  // Join has two predecessors.
  uint32_t Join = G.blockOf(5);
  EXPECT_EQ(G.blocks()[Join].Preds.size(), 2u);
  // jr ends the function: no successors.
  EXPECT_TRUE(G.blocks()[Join].Succs.empty());
}

TEST(Cfg, BlockOfMapsEveryInstr) {
  auto M = test::parseAsmOrDie(DiamondAsm);
  ASSERT_TRUE(M);
  Cfg G(M->functions()[0]);
  for (uint32_t I = 0; I != M->functions()[0].size(); ++I) {
    uint32_t B = G.blockOf(I);
    EXPECT_GE(I, G.blocks()[B].Begin);
    EXPECT_LT(I, G.blocks()[B].End);
  }
}

TEST(Dominators, Diamond) {
  auto M = test::parseAsmOrDie(DiamondAsm);
  ASSERT_TRUE(M);
  Cfg G(M->functions()[0]);
  DominatorTree DT(G);

  uint32_t Entry = G.entry();
  uint32_t Then = G.blockOf(2);
  uint32_t Else = G.blockOf(4);
  uint32_t Join = G.blockOf(5);

  EXPECT_TRUE(DT.dominates(Entry, Then));
  EXPECT_TRUE(DT.dominates(Entry, Else));
  EXPECT_TRUE(DT.dominates(Entry, Join));
  EXPECT_FALSE(DT.dominates(Then, Join));
  EXPECT_FALSE(DT.dominates(Else, Join));
  EXPECT_EQ(DT.idom(Join), Entry);
}

TEST(Loops, SimpleLoopDetected) {
  auto M = test::parseAsmOrDie(LoopAsm);
  ASSERT_TRUE(M);
  Cfg G(M->functions()[0]);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);

  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = LI.loops()[0];
  uint32_t Head = G.blockOf(2);
  uint32_t Body = G.blockOf(3);
  EXPECT_EQ(L.Header, Head);
  EXPECT_TRUE(L.contains(Head));
  EXPECT_TRUE(L.contains(Body));
  EXPECT_EQ(LI.depth(Head), 1u);
  EXPECT_EQ(LI.depth(G.entry()), 0u);
  uint32_t Exit = G.blockOf(5);
  EXPECT_EQ(LI.depth(Exit), 0u);
}

TEST(Loops, LatchAndExitsExposed) {
  auto M = test::parseAsmOrDie(LoopAsm);
  ASSERT_TRUE(M);
  Cfg G(M->functions()[0]);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);

  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = LI.loops()[0];
  uint32_t Head = G.blockOf(2);
  uint32_t Body = G.blockOf(3);
  ASSERT_EQ(L.Latches.size(), 1u);
  EXPECT_EQ(L.Latches[0], Body);
  // Only the header branches out of the loop.
  ASSERT_EQ(L.Exits.size(), 1u);
  EXPECT_EQ(L.Exits[0], Head);
  EXPECT_EQ(LI.loopAtHeader(Head), 0u);
  EXPECT_EQ(LI.loopAtHeader(Body), masm::InvalidIndex);
  EXPECT_FALSE(LI.hasIrreducible());
}

TEST(Loops, NestedLoopsHaveNestedDepths) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl f
f:
        li   $t0, 0
Louter:
        li   $t1, 0
Linner:
        addi $t1, $t1, 1
        blt  $t1, $t0, Linner
        addi $t0, $t0, 1
        li   $t2, 10
        blt  $t0, $t2, Louter
        jr   $ra
)");
  ASSERT_TRUE(M);
  Cfg G(M->functions()[0]);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);

  ASSERT_EQ(LI.loops().size(), 2u);
  uint32_t InnerHead = G.blockOf(2);
  uint32_t OuterHead = G.blockOf(1);
  EXPECT_EQ(LI.depth(InnerHead), 2u);
  EXPECT_EQ(LI.depth(OuterHead), 1u);
  EXPECT_EQ(LI.depth(G.entry()), 0u);

  uint32_t InnerIdx = LI.loopAtHeader(InnerHead);
  uint32_t OuterIdx = LI.loopAtHeader(OuterHead);
  ASSERT_NE(InnerIdx, masm::InvalidIndex);
  ASSERT_NE(OuterIdx, masm::InvalidIndex);
  EXPECT_TRUE(LI.loops()[OuterIdx].contains(InnerHead));
  EXPECT_FALSE(LI.loops()[InnerIdx].contains(OuterHead));
  EXPECT_FALSE(LI.hasIrreducible());
}

TEST(Loops, SharedHeaderBackEdgesMergeIntoOneLoop) {
  // A `continue` inside a while loop: two back edges to one header must
  // produce ONE loop with two latches, and body blocks at depth 1, not 2.
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl f
f:
        li   $t0, 0
Lhead:
        li   $t1, 10
        bge  $t0, $t1, Ldone
        addi $t0, $t0, 1
        li   $t2, 5
        beq  $t0, $t2, Lhead
        addi $t3, $t3, 1
        j    Lhead
Ldone:
        jr   $ra
)");
  ASSERT_TRUE(M);
  Cfg G(M->functions()[0]);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);

  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = LI.loops()[0];
  EXPECT_EQ(L.Header, G.blockOf(1));
  EXPECT_EQ(L.Latches.size(), 2u);
  for (uint32_t B : L.Blocks)
    EXPECT_EQ(LI.depth(B), 1u) << "block B" << B << " double-counted";
  EXPECT_FALSE(LI.hasIrreducible());
}

TEST(Loops, IrreducibleRetreatEdgeDetected) {
  // Classic irreducible cycle: entry branches into the middle of a cycle
  // between L1 and L2, so neither cycle node dominates the other. No
  // natural loop exists, but the retreat edge must be reported and the
  // cycle blocks conservatively marked depth >= 1.
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl f
f:
        li   $t0, 1
        beq  $t0, $zero, L2
L1:
        addi $t1, $t1, 1
        beq  $t1, $zero, Lout
        j    L2
L2:
        addi $t2, $t2, 1
        beq  $t2, $zero, Lout
        j    L1
Lout:
        jr   $ra
)");
  ASSERT_TRUE(M);
  Cfg G(M->functions()[0]);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);

  EXPECT_TRUE(LI.loops().empty());
  ASSERT_TRUE(LI.hasIrreducible());
  // The cycle blocks (everything between the entry and Lout) must not be
  // misread as straight-line code.
  uint32_t L1B = G.blockOf(2);
  uint32_t L2B = G.blockOf(5);
  EXPECT_GE(LI.depth(L1B), 1u);
  EXPECT_GE(LI.depth(L2B), 1u);
  EXPECT_EQ(LI.depth(G.entry()), 0u);
  EXPECT_EQ(LI.depth(G.blockOf(8)), 0u);
  // The reported edge really is a retreat edge inside the cycle.
  for (const IrreducibleEdge &E : LI.irreducibleEdges()) {
    EXPECT_TRUE(E.From == L1B || E.From == L2B ||
                E.From == G.blockOf(4) || E.From == G.blockOf(7));
    EXPECT_TRUE(E.To == L1B || E.To == L2B);
  }
}

TEST(Loops, StraightLineHasNone) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl f
f:
        li $t0, 1
        li $t1, 2
        jr $ra
)");
  ASSERT_TRUE(M);
  Cfg G(M->functions()[0]);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  EXPECT_EQ(G.numBlocks(), 1u);
  EXPECT_TRUE(LI.loops().empty());
}

TEST(Cfg, CallFallsThrough) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl g
g:
        jr $ra
        .globl f
f:
        jal g
        li $t0, 1
        jr $ra
)");
  ASSERT_TRUE(M);
  Cfg G(M->functions()[1]);
  // jal ends its block but falls through to the next.
  ASSERT_EQ(G.numBlocks(), 2u);
  ASSERT_EQ(G.blocks()[0].Succs.size(), 1u);
  EXPECT_EQ(G.blocks()[0].Succs[0], 1u);
}
