//===- tests/CfgTest.cpp - CFG, dominators, loops ------------------------------//

#include "cfg/Cfg.h"
#include "masm/Parser.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::cfg;
using namespace dlq::masm;

namespace {

/// A diamond: entry -> (then | else) -> join.
const char *DiamondAsm = R"(
        .text
        .globl f
f:
        li   $t0, 1
        beq  $t0, $zero, Lelse
        li   $t1, 2
        j    Ljoin
Lelse:
        li   $t1, 3
Ljoin:
        li   $t2, 4
        jr   $ra
)";

/// A simple counted loop.
const char *LoopAsm = R"(
        .text
        .globl f
f:
        li   $t0, 0
        li   $t1, 10
Lhead:
        bge  $t0, $t1, Ldone
        addi $t0, $t0, 1
        j    Lhead
Ldone:
        jr   $ra
)";

} // namespace

TEST(Cfg, DiamondBlocks) {
  auto M = test::parseAsmOrDie(DiamondAsm);
  ASSERT_TRUE(M);
  Cfg G(M->functions()[0]);

  // Blocks: [0,2) entry, [2,4) then, [4,5) else, [5,7) join.
  ASSERT_EQ(G.numBlocks(), 4u);
  EXPECT_EQ(G.blocks()[0].Begin, 0u);
  EXPECT_EQ(G.blocks()[0].End, 2u);
  ASSERT_EQ(G.blocks()[0].Succs.size(), 2u);

  // Join has two predecessors.
  uint32_t Join = G.blockOf(5);
  EXPECT_EQ(G.blocks()[Join].Preds.size(), 2u);
  // jr ends the function: no successors.
  EXPECT_TRUE(G.blocks()[Join].Succs.empty());
}

TEST(Cfg, BlockOfMapsEveryInstr) {
  auto M = test::parseAsmOrDie(DiamondAsm);
  ASSERT_TRUE(M);
  Cfg G(M->functions()[0]);
  for (uint32_t I = 0; I != M->functions()[0].size(); ++I) {
    uint32_t B = G.blockOf(I);
    EXPECT_GE(I, G.blocks()[B].Begin);
    EXPECT_LT(I, G.blocks()[B].End);
  }
}

TEST(Dominators, Diamond) {
  auto M = test::parseAsmOrDie(DiamondAsm);
  ASSERT_TRUE(M);
  Cfg G(M->functions()[0]);
  DominatorTree DT(G);

  uint32_t Entry = G.entry();
  uint32_t Then = G.blockOf(2);
  uint32_t Else = G.blockOf(4);
  uint32_t Join = G.blockOf(5);

  EXPECT_TRUE(DT.dominates(Entry, Then));
  EXPECT_TRUE(DT.dominates(Entry, Else));
  EXPECT_TRUE(DT.dominates(Entry, Join));
  EXPECT_FALSE(DT.dominates(Then, Join));
  EXPECT_FALSE(DT.dominates(Else, Join));
  EXPECT_EQ(DT.idom(Join), Entry);
}

TEST(Loops, SimpleLoopDetected) {
  auto M = test::parseAsmOrDie(LoopAsm);
  ASSERT_TRUE(M);
  Cfg G(M->functions()[0]);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);

  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = LI.loops()[0];
  uint32_t Head = G.blockOf(2);
  uint32_t Body = G.blockOf(3);
  EXPECT_EQ(L.Header, Head);
  EXPECT_TRUE(L.contains(Head));
  EXPECT_TRUE(L.contains(Body));
  EXPECT_EQ(LI.depth(Head), 1u);
  EXPECT_EQ(LI.depth(G.entry()), 0u);
  uint32_t Exit = G.blockOf(5);
  EXPECT_EQ(LI.depth(Exit), 0u);
}

TEST(Loops, StraightLineHasNone) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl f
f:
        li $t0, 1
        li $t1, 2
        jr $ra
)");
  ASSERT_TRUE(M);
  Cfg G(M->functions()[0]);
  DominatorTree DT(G);
  LoopInfo LI(G, DT);
  EXPECT_EQ(G.numBlocks(), 1u);
  EXPECT_TRUE(LI.loops().empty());
}

TEST(Cfg, CallFallsThrough) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl g
g:
        jr $ra
        .globl f
f:
        jal g
        li $t0, 1
        jr $ra
)");
  ASSERT_TRUE(M);
  Cfg G(M->functions()[1]);
  // jal ends its block but falls through to the next.
  ASSERT_EQ(G.numBlocks(), 2u);
  ASSERT_EQ(G.blocks()[0].Succs.size(), 1u);
  EXPECT_EQ(G.blocks()[0].Succs[0], 1u);
}
