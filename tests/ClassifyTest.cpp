//===- tests/ClassifyTest.cpp - heuristic, classes, trainer --------------------//

#include "classify/Delinquency.h"
#include "classify/Heuristic.h"
#include "classify/Trainer.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::classify;
using namespace dlq::ap;
using namespace dlq::masm;

namespace {

/// Builds small patterns directly for membership tests.
struct PatternLab {
  Arena A;
  ApFactory F{A};

  const ApNode *spPlus(int32_t Off) {
    return F.getBinary(ApKind::Add, F.getBase(Reg::SP), F.getConst(Off));
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Class membership
//===----------------------------------------------------------------------===//

TEST(AggClasses, AG1SpAndGp) {
  PatternLab L;
  const ApNode *SpGp = L.F.getBinary(
      ApKind::Add, L.F.getDeref(L.spPlus(8)), L.F.getGlobal("tbl", 0));
  EXPECT_TRUE(patternInClass(SpGp, AggClass::AG1));
  EXPECT_FALSE(patternInClass(L.spPlus(8), AggClass::AG1));
}

TEST(AggClasses, AG2SpTwiceNoGp) {
  PatternLab L;
  const ApNode *TwoSp = L.F.getBinary(ApKind::Add, L.F.getDeref(L.spPlus(8)),
                                      L.F.getDeref(L.spPlus(12)));
  EXPECT_TRUE(patternInClass(TwoSp, AggClass::AG2));
  // With a gp leaf present it belongs to AG1, not AG2.
  const ApNode *WithGp =
      L.F.getBinary(ApKind::Add, TwoSp, L.F.getGlobal("g", 0));
  EXPECT_FALSE(patternInClass(WithGp, AggClass::AG2));
  EXPECT_TRUE(patternInClass(WithGp, AggClass::AG1));
}

TEST(AggClasses, AG3MulShift) {
  PatternLab L;
  const ApNode *Shifted = L.F.getBinary(
      ApKind::Add, L.F.getGlobal("a", 0),
      L.F.getBinary(ApKind::Shl, L.F.getDeref(L.spPlus(0)), L.F.getConst(2)));
  EXPECT_TRUE(patternInClass(Shifted, AggClass::AG3));
  EXPECT_FALSE(patternInClass(L.spPlus(4), AggClass::AG3));
}

TEST(AggClasses, DerefDepthClasses) {
  PatternLab L;
  const ApNode *D1 = L.F.getDeref(L.spPlus(8));
  const ApNode *D2 = L.F.getDeref(L.F.getBinary(ApKind::Add, D1, L.F.getConst(4)));
  const ApNode *D3 = L.F.getDeref(L.F.getBinary(ApKind::Add, D2, L.F.getConst(4)));
  const ApNode *D4 = L.F.getDeref(D3);
  EXPECT_TRUE(patternInClass(D1, AggClass::AG4));
  EXPECT_FALSE(patternInClass(D1, AggClass::AG5));
  EXPECT_TRUE(patternInClass(D2, AggClass::AG5));
  EXPECT_TRUE(patternInClass(D3, AggClass::AG6));
  EXPECT_TRUE(patternInClass(D4, AggClass::AG6)) << "AG6 is three or more";
  EXPECT_FALSE(patternInClass(L.spPlus(8), AggClass::AG4));
}

TEST(AggClasses, AG7Recurrence) {
  PatternLab L;
  const ApNode *R = L.F.getBinary(ApKind::Add, L.F.getRecur(), L.F.getConst(4));
  EXPECT_TRUE(patternInClass(R, AggClass::AG7));
}

TEST(FreqClasses, Thresholds) {
  HeuristicOptions Opts;
  EXPECT_EQ(freqClassOf(0, Opts), FreqClass::Rare);
  EXPECT_EQ(freqClassOf(99, Opts), FreqClass::Rare);
  EXPECT_EQ(freqClassOf(100, Opts), FreqClass::Seldom);
  EXPECT_EQ(freqClassOf(999, Opts), FreqClass::Seldom);
  EXPECT_EQ(freqClassOf(1000, Opts), FreqClass::Fair);
  EXPECT_EQ(freqClassOf(1'000'000, Opts), FreqClass::Fair);
}

//===----------------------------------------------------------------------===//
// phi and the threshold
//===----------------------------------------------------------------------===//

TEST(Phi, SumsClassWeights) {
  PatternLab L;
  HeuristicOptions Opts;
  // Deref-once with a shift: AG3 + AG4 = 0.47 + 0.16.
  const ApNode *N = L.F.getDeref(L.F.getBinary(
      ApKind::Add, L.F.getGlobal("a", 0),
      L.F.getBinary(ApKind::Shl, L.F.getBase(Reg::A0), L.F.getConst(2))));
  double Score = scorePattern(N, FreqClass::Fair, Opts);
  EXPECT_NEAR(Score, 0.47 + 0.16, 1e-9);
  EXPECT_TRUE(isPossiblyDelinquent(Score, Opts));
}

TEST(Phi, MaxOverPatterns) {
  PatternLab L;
  HeuristicOptions Opts;
  std::vector<const ApNode *> Pats = {L.spPlus(4), L.F.getDeref(L.spPlus(4))};
  // Max of {0, 0.16}.
  EXPECT_NEAR(phi(Pats, FreqClass::Fair, Opts), 0.16, 1e-9);
}

TEST(Phi, FrequencyPenalties) {
  PatternLab L;
  HeuristicOptions Opts;
  const ApNode *D1 = L.F.getDeref(L.spPlus(8)); // 0.16.
  EXPECT_NEAR(scorePattern(D1, FreqClass::Seldom, Opts), 0.16 - 0.20, 1e-9);
  EXPECT_NEAR(scorePattern(D1, FreqClass::Rare, Opts), 0.16 - 0.40, 1e-9);
  // AG8/AG9 disabled: penalties vanish.
  Opts.UseFreqClasses = false;
  EXPECT_NEAR(scorePattern(D1, FreqClass::Rare, Opts), 0.16, 1e-9);
}

TEST(Phi, ThresholdBoundaryIsStrict) {
  HeuristicOptions Opts;
  EXPECT_FALSE(isPossiblyDelinquent(0.10, Opts)) << "phi must exceed delta";
  EXPECT_TRUE(isPossiblyDelinquent(0.1001, Opts));
}

//===----------------------------------------------------------------------===//
// Module-level analysis
//===----------------------------------------------------------------------===//

TEST(ModuleAnalysis, PointerChasingIsDelinquent) {
  auto M = test::compileOrDie(
      "struct Node { int val; struct Node *next; };"
      "struct Node *head;"
      "int main() {"
      "  struct Node *n; int sum; sum = 0;"
      "  for (n = head; n != 0; n = n->next) sum = sum + n->val;"
      "  return sum; }",
      0);
  ASSERT_TRUE(M);
  ModuleAnalysis MA(*M);
  HeuristicOptions Opts;
  Opts.UseFreqClasses = false;

  auto Scores = MA.scores(Opts, nullptr);
  // Find the load of n->val: it dereferences the stack slot of n, then the
  // heap node: two deref levels -> must be flagged.
  double BestScore = -1;
  for (const auto &[Ref, Phi] : Scores)
    BestScore = std::max(BestScore, Phi);
  EXPECT_GT(BestScore, Opts.Delta);

  auto Delta = MA.delinquentSet(Opts, nullptr);
  EXPECT_FALSE(Delta.empty());
  EXPECT_LT(Delta.size(), MA.loadPatterns().size())
      << "plain stack reloads must not all be flagged";
}

TEST(ModuleAnalysis, StraightScalarCodeHasNoDelinquents) {
  auto M = test::compileOrDie("int main() {"
                              "  int a; int b; a = 1; b = 2;"
                              "  return a + b; }",
                              0);
  ASSERT_TRUE(M);
  ModuleAnalysis MA(*M);
  HeuristicOptions Opts;
  Opts.UseFreqClasses = false;
  EXPECT_TRUE(MA.delinquentSet(Opts, nullptr).empty());
}

TEST(ModuleAnalysis, FreqClassesSuppressColdLoads) {
  auto M = test::compileOrDie(
      "struct Node { int val; struct Node *next; };"
      "struct Node *head;"
      "int main() {"
      "  struct Node *n; n = head;"
      "  if (n != 0) return n->val;"
      "  return 0; }",
      0);
  ASSERT_TRUE(M);
  ModuleAnalysis MA(*M);
  HeuristicOptions Opts; // UseFreqClasses = true.

  // Every load executed fewer than 100 times: AG9 pushes scores down.
  ExecCountMap Cold;
  for (const auto &[Ref, Pats] : MA.loadPatterns())
    Cold[Ref] = 1;
  auto DeltaCold = MA.delinquentSet(Opts, &Cold);
  EXPECT_TRUE(DeltaCold.empty());

  ExecCountMap Hot;
  for (const auto &[Ref, Pats] : MA.loadPatterns())
    Hot[Ref] = 1'000'000;
  auto DeltaHot = MA.delinquentSet(Opts, &Hot);
  EXPECT_FALSE(DeltaHot.empty());
}

//===----------------------------------------------------------------------===//
// Trainer (Section 7)
//===----------------------------------------------------------------------===//

TEST(Trainer, PaperWeightExample) {
  // Table 4: the m/n values of class 5 ("sp=1,gp=1") on the five relevant
  // benchmarks give W(F5) = (4/48 + 6/25 + 30/67 + 6/6 + 8/13) / 5 ~ 0.47.
  ClassTrainer T;
  struct Row {
    const char *Bench;
    double M, N; // Percentages.
  };
  Row Rows[] = {{"147.vortex", 4.34, 48.19}, {"175.vpr", 6.27, 25.14},
                {"179.art", 30.44, 67.17},   {"183.equake", 6.83, 6.72},
                {"197.parser", 8.07, 13.17}};
  for (const Row &R : Rows) {
    BenchmarkObservation Obs;
    Obs.Name = R.Bench;
    Obs.TotalMisses = 1'000'000;
    ClassDynStats S;
    S.Misses = static_cast<uint64_t>(R.N / 100.0 * 1'000'000);
    S.Execs = static_cast<uint64_t>(S.Misses / (R.M / 100.0));
    Obs.PerClass["F5"] = S;
    T.addObservation(Obs);
  }
  EXPECT_EQ(T.natureOf("F5"), ClassNature::Positive);
  // The paper rounds to 0.47; exact mean of the printed fractions is ~0.474.
  EXPECT_NEAR(T.positiveWeight("F5"), 0.47, 0.02);
}

TEST(Trainer, IrrelevantBenchmarksExcluded) {
  ClassTrainer T;
  // Relevant benchmark: strong class.
  {
    BenchmarkObservation Obs;
    Obs.Name = "hot";
    Obs.TotalMisses = 1000;
    Obs.PerClass["F"] = ClassDynStats{10'000, 500}; // m=5%, n=50%.
    T.addObservation(Obs);
  }
  // Irrelevant: tiny m and n.
  {
    BenchmarkObservation Obs;
    Obs.Name = "coldish";
    Obs.TotalMisses = 1'000'000;
    Obs.PerClass["F"] = ClassDynStats{1'000'000, 10}; // m=0.001%, n=0.001%.
    T.addObservation(Obs);
  }
  EXPECT_TRUE(T.isRelevant("F", "hot"));
  EXPECT_FALSE(T.isRelevant("F", "coldish"));
  EXPECT_EQ(T.natureOf("F"), ClassNature::Positive);
  EXPECT_NEAR(T.positiveWeight("F"), 0.05 / 0.5, 1e-9);
}

TEST(Trainer, NegativeClassRule) {
  ClassTrainer T;
  for (int B = 0; B != 3; ++B) {
    BenchmarkObservation Obs;
    Obs.Name = "bench" + std::to_string(B);
    Obs.TotalMisses = 1'000'000;
    Obs.PerClass["tiny"] = ClassDynStats{1000, 100}; // n = 0.01% < 0.5%.
    T.addObservation(Obs);
  }
  EXPECT_EQ(T.natureOf("tiny"), ClassNature::Negative);
}

TEST(Trainer, NeutralClassRule) {
  ClassTrainer T;
  // Relevant via n (share 60%), but weak: m/n = 0.008/0.6 < 1/20.
  BenchmarkObservation Obs;
  Obs.Name = "bench";
  Obs.TotalMisses = 1'000'000;
  Obs.PerClass["weak"] = ClassDynStats{75'000'000, 600'000};
  T.addObservation(Obs);
  EXPECT_EQ(T.natureOf("weak"), ClassNature::Neutral);
}

TEST(Trainer, NegativeBaseDropsExtremes) {
  ClassTrainer T;
  // Three positive classes with weights 0.1, 0.5, 0.9; the base weight is
  // -(mean of {0.5}) = -0.5.
  double Weights[] = {0.1, 0.5, 0.9};
  int Idx = 0;
  for (double W : Weights) {
    BenchmarkObservation Obs;
    Obs.Name = "b" + std::to_string(Idx);
    Obs.TotalMisses = 1'000'000;
    // n = 40%, m = W * 0.4 -> m/n = W.
    uint64_t Misses = 400'000;
    ClassDynStats S;
    S.Misses = Misses;
    S.Execs = static_cast<uint64_t>(Misses / (W * 0.4));
    Obs.PerClass["c" + std::to_string(Idx)] = S;
    T.addObservation(Obs);
    ++Idx;
  }
  EXPECT_NEAR(T.negativeBaseWeight(), -0.5, 0.01);
}

TEST(Trainer, ReportCountsFoundAndRelevant) {
  ClassTrainer T;
  {
    BenchmarkObservation Obs;
    Obs.Name = "a";
    Obs.TotalMisses = 1000;
    Obs.PerClass["F"] = ClassDynStats{100, 50};
    T.addObservation(Obs);
  }
  {
    BenchmarkObservation Obs;
    Obs.Name = "b";
    Obs.TotalMisses = 1000;
    Obs.PerClass["F"] = ClassDynStats{1'000'000, 1};
    T.addObservation(Obs);
  }
  auto Reports = T.reportAll();
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].FoundIn, 2u);
  EXPECT_EQ(Reports[0].RelevantIn, 1u);
}

TEST(Trainer, H1Labels) {
  PatternLab L;
  EXPECT_EQ(h1ClassLabel(L.spPlus(8)), "sp=1");
  const ApNode *SpGp =
      L.F.getBinary(ApKind::Add, L.spPlus(8), L.F.getGlobal("g", 0));
  EXPECT_EQ(h1ClassLabel(SpGp), "sp=1,gp=1");
  EXPECT_EQ(h1ClassLabel(L.F.getBase(Reg::A0)), "other");
  const ApNode *TwoSp = L.F.getBinary(ApKind::Add, L.F.getDeref(L.spPlus(0)),
                                      L.F.getDeref(L.spPlus(4)));
  EXPECT_EQ(h1ClassLabel(TwoSp), "sp=2");
}

TEST(Trainer, AggLabels) {
  PatternLab L;
  const ApNode *N = L.F.getDeref(L.F.getBinary(
      ApKind::Add, L.F.getGlobal("a", 0),
      L.F.getBinary(ApKind::Shl, L.F.getDeref(L.spPlus(0)), L.F.getConst(2))));
  auto Labels = aggClassLabels(N);
  // sp inside, gp outside -> AG1; shift -> AG3; two derefs -> AG5.
  EXPECT_EQ(Labels, (std::vector<std::string>{"AG1", "AG3", "AG5"}));
}
