//===- tests/ColdLibraryTest.cpp - the rarely-executed code appendix ------------//
//
// The cold library linked into every workload models the dominant property
// of real binaries: most static loads almost never execute. These tests pin
// the mechanism: the cold code runs exactly once (or never), its loads land
// in the Rare/Seldom frequency classes, and the hotspot set excludes it.
//
//===----------------------------------------------------------------------===//

#include "classify/Heuristic.h"
#include "pipeline/Pipeline.h"
#include "sim/Profile.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::pipeline;

namespace {

Driver &driver() {
  static Driver D;
  return D;
}

/// Function ordinal by name, or ~0u.
uint32_t funcIdx(const masm::Module &M, const char *Name) {
  return M.functionIndex(Name);
}

} // namespace

TEST(ColdLibrary, PresentInEveryWorkload) {
  Driver &D = driver();
  const Compiled &C = D.compiled("li_like", InputSel::Input1, 0);
  for (const char *Fn : {"cold_insert", "cold_treesum", "cold_record",
                         "cold_digest", "cold_transpose", "cold_dump_all",
                         "cold_selftest", "cold_report", "workload_main",
                         "main"})
    EXPECT_NE(funcIdx(*C.M, Fn), masm::InvalidIndex) << Fn;
}

TEST(ColdLibrary, SelfTestRunsExactlyOnce) {
  Driver &D = driver();
  const Compiled &C = D.compiled("li_like", InputSel::Input1, 0);
  const sim::RunResult &R =
      D.run("li_like", InputSel::Input1, 0, sim::CacheConfig::baseline());
  sim::BlockProfile P(*C.M, C.Cfgs, R);

  uint32_t SelfTest = funcIdx(*C.M, "cold_selftest");
  ASSERT_NE(SelfTest, masm::InvalidIndex);
  EXPECT_EQ(P.execCount(masm::InstrRef{SelfTest, 0}), 1u);
}

TEST(ColdLibrary, DumpPathNeverExecutes) {
  Driver &D = driver();
  const Compiled &C = D.compiled("li_like", InputSel::Input1, 0);
  const sim::RunResult &R =
      D.run("li_like", InputSel::Input1, 0, sim::CacheConfig::baseline());
  sim::BlockProfile P(*C.M, C.Cfgs, R);

  uint32_t Dump = funcIdx(*C.M, "cold_dump_all");
  ASSERT_NE(Dump, masm::InvalidIndex);
  EXPECT_EQ(P.execCount(masm::InstrRef{Dump, 0}), 0u)
      << "the guard is never true at runtime";
}

TEST(ColdLibrary, ColdLoadsFallIntoNegativeFreqClasses) {
  Driver &D = driver();
  GroundTruth G = D.groundTruth("li_like", InputSel::Input1, 0,
                                sim::CacheConfig::baseline());
  const Compiled &C = D.compiled("li_like", InputSel::Input1, 0);

  uint32_t Digest = funcIdx(*C.M, "cold_digest");
  ASSERT_NE(Digest, masm::InvalidIndex);

  classify::HeuristicOptions Opts;
  unsigned ColdLoads = 0, NonFair = 0;
  for (const auto &[Ref, S] : G.Stats) {
    if (Ref.FuncIdx != Digest)
      continue;
    ++ColdLoads;
    classify::FreqClass F = classify::freqClassOf(S.Execs, Opts);
    NonFair += F == classify::FreqClass::Rare ||
               F == classify::FreqClass::Seldom;
  }
  ASSERT_GT(ColdLoads, 0u);
  EXPECT_EQ(NonFair, ColdLoads)
      << "every cold_digest load must be Rare or Seldom";
}

TEST(ColdLibrary, HotspotSetExcludesColdFunctions) {
  Driver &D = driver();
  const Compiled &C = D.compiled("li_like", InputSel::Input1, 0);
  auto Hot = D.hotspotLoads("li_like", InputSel::Input1, 0,
                            sim::CacheConfig::baseline(), 0.90);

  for (const auto &Ref : Hot) {
    const std::string &Fn = C.M->functions()[Ref.FuncIdx].name();
    EXPECT_EQ(Fn.rfind("cold_", 0), std::string::npos)
        << "hotspot load in cold function " << Fn;
  }
}

TEST(ColdLibrary, ColdMissesAreNegligible) {
  Driver &D = driver();
  GroundTruth G = D.groundTruth("li_like", InputSel::Input1, 0,
                                sim::CacheConfig::baseline());
  const Compiled &C = D.compiled("li_like", InputSel::Input1, 0);

  uint64_t ColdMisses = 0;
  for (const auto &[Ref, S] : G.Stats) {
    const std::string &Fn = C.M->functions()[Ref.FuncIdx].name();
    if (Fn.rfind("cold_", 0) == 0)
      ColdMisses += S.Misses;
  }
  EXPECT_LT(static_cast<double>(ColdMisses),
            0.02 * static_cast<double>(G.TotalLoadMisses))
      << "the appendix must inflate Lambda, not the miss profile";
}

TEST(ColdLibrary, InflatesLambdaSubstantially) {
  Driver &D = driver();
  const Compiled &C = D.compiled("li_like", InputSel::Input1, 0);
  size_t ColdLoads = 0;
  for (uint32_t FI = 0; FI != C.M->functions().size(); ++FI) {
    const masm::Function &F = C.M->functions()[FI];
    if (F.name().rfind("cold_", 0) != 0)
      continue;
    for (const auto &I : F.instrs())
      ColdLoads += masm::isLoad(I.Op);
  }
  EXPECT_GT(ColdLoads, C.lambda() / 3)
      << "most real binaries are mostly-cold code; the appendix models that";
}
