//===- tests/DataflowTest.cpp - reaching defs and liveness ---------------------//

#include "dataflow/Liveness.h"
#include "dataflow/ReachingDefs.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::dataflow;
using namespace dlq::masm;

TEST(ReachingDefs, InBlockDefWins) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl f
f:
        li   $t0, 1
        li   $t0, 2
        add  $t1, $t0, $t0
        jr   $ra
)");
  ASSERT_TRUE(M);
  cfg::Cfg G(M->functions()[0]);
  ReachingDefs RD(G);

  std::vector<Def> Defs = RD.defsReaching(2, Reg::T0);
  ASSERT_EQ(Defs.size(), 1u);
  EXPECT_EQ(Defs[0].Kind, DefKind::Normal);
  EXPECT_EQ(Defs[0].InstrIdx, 1u);
}

TEST(ReachingDefs, EntryDefForLiveIn) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl f
f:
        lw $t0, 0($sp)
        jr $ra
)");
  ASSERT_TRUE(M);
  cfg::Cfg G(M->functions()[0]);
  ReachingDefs RD(G);

  std::vector<Def> Defs = RD.defsReaching(0, Reg::SP);
  ASSERT_EQ(Defs.size(), 1u);
  EXPECT_EQ(Defs[0].Kind, DefKind::Entry);
}

TEST(ReachingDefs, TwoPathsMerge) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl f
f:
        beq  $a0, $zero, Lelse
        li   $t0, 1
        j    Ljoin
Lelse:
        li   $t0, 2
Ljoin:
        add  $t1, $t0, $zero
        jr   $ra
)");
  ASSERT_TRUE(M);
  cfg::Cfg G(M->functions()[0]);
  ReachingDefs RD(G);

  std::vector<Def> Defs = RD.defsReaching(4, Reg::T0);
  ASSERT_EQ(Defs.size(), 2u);
  EXPECT_EQ(Defs[0].Kind, DefKind::Normal);
  EXPECT_EQ(Defs[1].Kind, DefKind::Normal);
}

TEST(ReachingDefs, CallClobbersCallerSaved) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl g
g:
        jr $ra
        .globl f
f:
        li   $t0, 1
        li   $s0, 2
        jal  g
        add  $t1, $t0, $s0
        jr   $ra
)");
  ASSERT_TRUE(M);
  cfg::Cfg G(M->functions()[1]);
  ReachingDefs RD(G);

  // $t0 at instr 3 reaches only the call clobber.
  std::vector<Def> T0Defs = RD.defsReaching(3, Reg::T0);
  ASSERT_EQ(T0Defs.size(), 1u);
  EXPECT_EQ(T0Defs[0].Kind, DefKind::Call);

  // $s0 is callee-saved: the li still reaches.
  std::vector<Def> S0Defs = RD.defsReaching(3, Reg::S0);
  ASSERT_EQ(S0Defs.size(), 1u);
  EXPECT_EQ(S0Defs[0].Kind, DefKind::Normal);
  EXPECT_EQ(S0Defs[0].InstrIdx, 1u);
}

TEST(ReachingDefs, LoopCarriedDef) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl f
f:
        li   $t0, 0
Lhead:
        addi $t0, $t0, 1
        blt  $t0, $a0, Lhead
        jr   $ra
)");
  ASSERT_TRUE(M);
  cfg::Cfg G(M->functions()[0]);
  ReachingDefs RD(G);

  // At the addi (instr 1), $t0 is reached by both the li and the addi
  // itself around the back edge.
  std::vector<Def> Defs = RD.defsReaching(1, Reg::T0);
  ASSERT_EQ(Defs.size(), 2u);
  bool SawInit = false, SawLoop = false;
  for (const Def &D : Defs) {
    SawInit |= D.InstrIdx == 0;
    SawLoop |= D.InstrIdx == 1;
  }
  EXPECT_TRUE(SawInit);
  EXPECT_TRUE(SawLoop);
}

TEST(Liveness, SimpleUse) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl f
f:
        add $t1, $a0, $a1
        jr  $ra
)");
  ASSERT_TRUE(M);
  cfg::Cfg G(M->functions()[0]);
  Liveness LV(G);
  EXPECT_TRUE(LV.isLiveIn(0, Reg::A0));
  EXPECT_TRUE(LV.isLiveIn(0, Reg::A1));
  EXPECT_FALSE(LV.isLiveIn(0, Reg::T1));
}

TEST(Liveness, LoopKeepsCounterLive) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl f
f:
        li   $t0, 0
Lhead:
        addi $t0, $t0, 1
        blt  $t0, $a0, Lhead
        jr   $ra
)");
  ASSERT_TRUE(M);
  cfg::Cfg G(M->functions()[0]);
  Liveness LV(G);
  uint32_t Head = G.blockOf(1);
  EXPECT_TRUE(LV.isLiveIn(Head, Reg::T0));
  EXPECT_TRUE(LV.isLiveIn(Head, Reg::A0));
}

TEST(BitVector, Ops) {
  BitVector A(130), B(130);
  A.set(0);
  A.set(64);
  A.set(129);
  B.set(64);
  EXPECT_TRUE(A.test(129));
  EXPECT_FALSE(A.test(1));
  EXPECT_EQ(A.count(), 3u);

  BitVector C = A;
  EXPECT_FALSE(C.unionWith(B)) << "B is a subset; no change expected";
  C.subtract(B);
  EXPECT_FALSE(C.test(64));
  EXPECT_TRUE(C.test(0));

  size_t Sum = 0;
  A.forEachSetBit([&](size_t Bit) { Sum += Bit; });
  EXPECT_EQ(Sum, 0u + 64u + 129u);
}
