//===- tests/ExecTest.cpp - execution layer tests --------------------------------//
//
// The src/exec subsystem: worker pool and task-set scheduling, the binary
// result codec, the persistent content-addressed store (including corruption
// and version-mismatch recovery), and the pipeline-level guarantee the whole
// layer exists for — parallel execution is byte-identical to serial.
//
//===----------------------------------------------------------------------===//

#include "exec/Hash.h"
#include "exec/JobPool.h"
#include "exec/Options.h"
#include "exec/ResultStore.h"
#include "exec/Serialize.h"
#include "pipeline/Pipeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <thread>

using namespace dlq;
using namespace dlq::exec;

namespace {

/// A store directory unique to one test, removed on destruction.
struct TempStoreDir {
  explicit TempStoreDir(const char *Name)
      : Path(std::filesystem::temp_directory_path() /
             (std::string("dlq-exec-test-") + Name)) {
    std::filesystem::remove_all(Path);
  }
  ~TempStoreDir() { std::filesystem::remove_all(Path); }
  std::string str() const { return Path.string(); }
  std::filesystem::path Path;
};

std::vector<uint8_t> readAll(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(In)),
                              std::istreambuf_iterator<char>());
}

void writeAll(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

ExecOptions execOpts(unsigned Jobs, bool UseDiskCache,
                     const std::string &CacheDir) {
  ExecOptions O;
  O.Jobs = Jobs;
  O.UseDiskCache = UseDiskCache;
  O.CacheDir = CacheDir;
  return O;
}

} // namespace

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

TEST(Hash, KnownFnv1aValues) {
  // Reference values of 64-bit FNV-1a.
  EXPECT_EQ(fnv1a("", 0), 14695981039346656037ull);
  EXPECT_EQ(fnv1a("a", 1), 12638187200555641996ull);
}

TEST(Hash, LengthPrefixPreventsConcatenationAliasing) {
  Fnv1a A, B;
  A.str("ab").str("c");
  B.str("a").str("bc");
  EXPECT_NE(A.value(), B.value());
}

TEST(Hash, HexKeyIsStable) {
  EXPECT_EQ(hexKey(0), "0000000000000000");
  EXPECT_EQ(hexKey(0xdeadbeefull), "00000000deadbeef");
}

//===----------------------------------------------------------------------===//
// JobPool
//===----------------------------------------------------------------------===//

TEST(JobPool, MapReturnsResultsInIndexOrder) {
  for (unsigned Workers : {1u, 4u, 8u}) {
    JobPool Pool(Workers);
    std::vector<int> Out =
        Pool.map<int>(64, [](size_t I) { return static_cast<int>(I * I); });
    ASSERT_EQ(Out.size(), 64u);
    for (size_t I = 0; I != Out.size(); ++I)
      EXPECT_EQ(Out[I], static_cast<int>(I * I));
  }
}

TEST(JobPool, ThrowingJobDoesNotDeadlockAndPoolSurvives) {
  JobCounters Counters;
  JobPool Pool(4, &Counters);
  EXPECT_THROW(Pool.map<int>(8,
                             [](size_t I) -> int {
                               if (I == 3)
                                 throw std::runtime_error("job 3 failed");
                               return 0;
                             }),
               std::runtime_error);
  // The pool must stay usable after a failure.
  std::vector<int> Out = Pool.map<int>(4, [](size_t I) {
    return static_cast<int>(I) + 1;
  });
  EXPECT_EQ(Out, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(Counters.JobsFailed.load(), 1u);
  EXPECT_EQ(Counters.JobsRun.load(), 12u);
}

TEST(JobPool, SmallestFailingIndexWins) {
  JobPool Pool(4);
  try {
    Pool.map<int>(16, [](size_t I) -> int {
      if (I % 5 == 2) // 2, 7, 12 fail.
        throw std::runtime_error("fail at " + std::to_string(I));
      return 0;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "fail at 2");
  }
}

TEST(JobPool, DrainCompletesInFlightWorkBeforeReturning) {
  JobPool Pool(4);
  std::atomic<unsigned> Done{0};
  for (unsigned I = 0; I != 32; ++I)
    Pool.submit([&Done] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ++Done;
    });
  Pool.drain();
  EXPECT_EQ(Done.load(), 32u) << "drain returned with work still in flight";
  EXPECT_TRUE(Pool.draining());
}

TEST(JobPool, SubmitAfterDrainThrows) {
  JobPool Pool(2);
  Pool.submit([] {});
  Pool.drain();
  EXPECT_THROW(Pool.submit([] {}), std::logic_error);
  // drain() is idempotent and the destructor must still be safe.
  Pool.drain();
}

TEST(TaskSet, DependenciesRunBeforeDependents) {
  JobPool Pool(8);
  TaskSet Tasks(Pool);
  std::atomic<int> Order{0};
  std::vector<int> WarmAt(8, -1), RowAt(8, -1);
  std::vector<size_t> WarmIds;
  for (size_t I = 0; I != 8; ++I) {
    size_t W = Tasks.add([&, I] { WarmAt[I] = Order++; });
    Tasks.add([&, I] { RowAt[I] = Order++; }, {W});
  }
  Tasks.run();
  for (size_t I = 0; I != 8; ++I) {
    EXPECT_GE(WarmAt[I], 0);
    EXPECT_GT(RowAt[I], WarmAt[I]) << "dependent ran before its dependency";
  }
}

TEST(TaskSet, FailedDependencySkipsDependentsAndRethrows) {
  JobPool Pool(4);
  TaskSet Tasks(Pool);
  std::atomic<bool> DependentRan{false};
  size_t Bad = Tasks.add([] { throw std::runtime_error("dependency died"); });
  Tasks.add([&] { DependentRan = true; }, {Bad});
  size_t Good = Tasks.add([] {});
  std::atomic<bool> GoodDependentRan{false};
  Tasks.add([&] { GoodDependentRan = true; }, {Good});
  EXPECT_THROW(Tasks.run(), std::runtime_error);
  EXPECT_FALSE(DependentRan) << "dependent of a failed task must be skipped";
  EXPECT_TRUE(GoodDependentRan) << "unrelated chains must still run";
}

TEST(TaskSet, RunIsCallableOnce) {
  JobPool Pool(2);
  TaskSet Tasks(Pool);
  Tasks.add([] {});
  Tasks.run();
  EXPECT_THROW(Tasks.run(), std::logic_error);
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

TEST(Serialize, ScalarsAndContainersRoundTrip) {
  ByteWriter W;
  W.u8(0xab);
  W.u32(0xdeadbeef);
  W.u64(0x0123456789abcdefull);
  W.i32(-42);
  W.f64(3.14159);
  W.str("payload");
  W.vecU64({1, 2, 3});

  ByteReader R(W.buffer());
  uint8_t U8;
  uint32_t U32;
  uint64_t U64;
  int32_t I32;
  double F64;
  std::string S;
  std::vector<uint64_t> V;
  ASSERT_TRUE(R.u8(U8));
  ASSERT_TRUE(R.u32(U32));
  ASSERT_TRUE(R.u64(U64));
  ASSERT_TRUE(R.i32(I32));
  ASSERT_TRUE(R.f64(F64));
  ASSERT_TRUE(R.str(S));
  ASSERT_TRUE(R.vecU64(V));
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(U8, 0xab);
  EXPECT_EQ(U32, 0xdeadbeefu);
  EXPECT_EQ(U64, 0x0123456789abcdefull);
  EXPECT_EQ(I32, -42);
  EXPECT_EQ(F64, 3.14159);
  EXPECT_EQ(S, "payload");
  EXPECT_EQ(V, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(Serialize, ReaderReportsTruncationInsteadOfOverrunning) {
  ByteWriter W;
  W.u64(123);
  std::vector<uint8_t> Buf = W.take();
  Buf.resize(Buf.size() - 1);
  ByteReader R(Buf);
  uint64_t V;
  EXPECT_FALSE(R.u64(V));
}

TEST(Serialize, RunResultRoundTripsByteExactly) {
  pipeline::Driver D(execOpts(1, false, ""));
  const sim::RunResult &R =
      D.run("li_like", pipeline::InputSel::Input1, 0,
            sim::CacheConfig::baseline());

  ByteWriter W;
  writeRunResult(W, R);
  ByteReader Reader(W.buffer());
  sim::RunResult Back;
  ASSERT_TRUE(readRunResult(Reader, Back));
  EXPECT_TRUE(Reader.atEnd());

  // Re-encoding the decoded result must reproduce the same bytes.
  ByteWriter W2;
  writeRunResult(W2, Back);
  EXPECT_EQ(W.buffer(), W2.buffer());
  EXPECT_EQ(Back.InstrsExecuted, R.InstrsExecuted);
  EXPECT_EQ(Back.LoadMisses, R.LoadMisses);
  EXPECT_EQ(Back.Output, R.Output);
}

//===----------------------------------------------------------------------===//
// ResultStore
//===----------------------------------------------------------------------===//

TEST(ResultStore, WriteThenReload) {
  TempStoreDir Dir("roundtrip");
  std::vector<uint8_t> Payload = {1, 2, 3, 4, 5};
  {
    ResultStore Store(Dir.str());
    EXPECT_TRUE(Store.store(42, Payload));
  }
  // A fresh store instance (fresh process, morally) sees the entry.
  ResultStore Store(Dir.str());
  std::vector<uint8_t> Back;
  ASSERT_TRUE(Store.lookup(42, Back));
  EXPECT_EQ(Back, Payload);
  EXPECT_EQ(Store.stats().Hits, 1u);
}

TEST(ResultStore, DisabledStoreNeverHitsOrWrites) {
  ResultStore Store;
  EXPECT_FALSE(Store.enabled());
  EXPECT_FALSE(Store.store(1, {9}));
  std::vector<uint8_t> Out;
  EXPECT_FALSE(Store.lookup(1, Out));
}

TEST(ResultStore, MissOnAbsentKey) {
  TempStoreDir Dir("miss");
  ResultStore Store(Dir.str());
  std::vector<uint8_t> Out;
  EXPECT_FALSE(Store.lookup(7, Out));
  EXPECT_EQ(Store.stats().Misses, 1u);
  EXPECT_EQ(Store.stats().Invalid, 0u);
}

TEST(ResultStore, CorruptPayloadReadsAsMissAndIsRewritten) {
  TempStoreDir Dir("corrupt");
  ResultStore Store(Dir.str());
  std::vector<uint8_t> Payload(64, 0x5a);
  ASSERT_TRUE(Store.store(99, Payload));

  // Flip one payload byte on disk.
  std::string Path = Store.pathFor(99);
  std::vector<uint8_t> Raw = readAll(Path);
  ASSERT_GT(Raw.size(), 30u);
  Raw[30] ^= 0xff;
  writeAll(Path, Raw);

  std::vector<uint8_t> Out;
  EXPECT_FALSE(Store.lookup(99, Out)) << "corrupt entry must read as a miss";
  EXPECT_EQ(Store.stats().Invalid, 1u);

  // The caller's recompute-and-rewrite path restores the entry.
  ASSERT_TRUE(Store.store(99, Payload));
  EXPECT_TRUE(Store.lookup(99, Out));
  EXPECT_EQ(Out, Payload);
}

TEST(ResultStore, VersionMismatchInvalidatesEntry) {
  TempStoreDir Dir("version");
  ResultStore Store(Dir.str());
  ASSERT_TRUE(Store.store(5, {1, 2, 3}));

  // Bump the format version field (bytes 4..7, after the 4-byte magic).
  std::string Path = Store.pathFor(5);
  std::vector<uint8_t> Raw = readAll(Path);
  ASSERT_GT(Raw.size(), 8u);
  Raw[4] = static_cast<uint8_t>(ResultStore::FormatVersion + 1);
  writeAll(Path, Raw);

  std::vector<uint8_t> Out;
  EXPECT_FALSE(Store.lookup(5, Out));
  EXPECT_EQ(Store.stats().Invalid, 1u);
}

TEST(ResultStore, TruncatedEntryReadsAsMiss) {
  TempStoreDir Dir("truncated");
  ResultStore Store(Dir.str());
  ASSERT_TRUE(Store.store(6, std::vector<uint8_t>(128, 7)));
  std::string Path = Store.pathFor(6);
  std::vector<uint8_t> Raw = readAll(Path);
  Raw.resize(Raw.size() / 2);
  writeAll(Path, Raw);

  std::vector<uint8_t> Out;
  EXPECT_FALSE(Store.lookup(6, Out));
  EXPECT_EQ(Store.stats().Invalid, 1u);
}

TEST(ResultStore, KeyMismatchIsInvalid) {
  TempStoreDir Dir("keymismatch");
  ResultStore Store(Dir.str());
  ASSERT_TRUE(Store.store(1111, {4, 4, 4}));
  // Copy the entry under a different key's filename.
  std::filesystem::copy_file(Store.pathFor(1111), Store.pathFor(2222));
  std::vector<uint8_t> Out;
  EXPECT_FALSE(Store.lookup(2222, Out))
      << "an entry must only decode under the key it was written for";
}

TEST(ResultStore, ByteTrafficIsCounted) {
  TempStoreDir Dir("bytes");
  ResultStore Store(Dir.str());
  std::vector<uint8_t> Payload(100, 0x11);
  ASSERT_TRUE(Store.store(12, Payload));
  EXPECT_GT(Store.stats().BytesWritten, Payload.size())
      << "written bytes include the entry header";
  std::vector<uint8_t> Out;
  ASSERT_TRUE(Store.lookup(12, Out));
  EXPECT_EQ(Store.stats().BytesRead, Store.stats().BytesWritten)
      << "a hit reads back exactly the bytes the write persisted";
}

/// Restores FailureInjection::None even if the test body fails early.
struct InjectionGuard {
  explicit InjectionGuard(ResultStore::FailureInjection F) {
    ResultStore::injectFailure(F);
  }
  ~InjectionGuard() {
    ResultStore::injectFailure(ResultStore::FailureInjection::None);
  }
};

// Regression test for the publish-path bug: a failed tmp→final rename (as on
// a cross-filesystem cache dir, EXDEV) used to lose the entry silently. The
// store must fall back to copy+remove and still publish a readable entry.
TEST(ResultStore, RenameFailureFallsBackToCopyAndPublishes) {
  TempStoreDir Dir("inject-rename");
  ResultStore Store(Dir.str());
  std::vector<uint8_t> Payload(64, 0x2b);
  {
    InjectionGuard G(ResultStore::FailureInjection::Rename);
    EXPECT_TRUE(Store.store(77, Payload))
        << "rename failure must not lose the entry";
  }
  EXPECT_EQ(Store.stats().Writes, 1u);
  EXPECT_EQ(Store.stats().Drops, 0u);

  std::vector<uint8_t> Out;
  ASSERT_TRUE(Store.lookup(77, Out)) << "fallback-published entry unreadable";
  EXPECT_EQ(Out, Payload);

  // The temp file must not linger next to the published entry.
  size_t Files = 0;
  for (const auto &E : std::filesystem::directory_iterator(Dir.Path)) {
    (void)E;
    ++Files;
  }
  EXPECT_EQ(Files, 1u) << "temp file left behind after copy fallback";
}

TEST(ResultStore, RenameAndCopyFailureIsACountedDrop) {
  TempStoreDir Dir("inject-drop");
  ResultStore Store(Dir.str());
  {
    InjectionGuard G(ResultStore::FailureInjection::RenameAndCopy);
    EXPECT_FALSE(Store.store(88, {1, 2, 3}))
        << "a doubly-failed publish must report failure";
  }
  EXPECT_EQ(Store.stats().Writes, 0u);
  EXPECT_EQ(Store.stats().Drops, 1u);
  EXPECT_EQ(Store.stats().BytesWritten, 0u);

  // Nothing half-written may be visible to readers.
  std::vector<uint8_t> Out;
  EXPECT_FALSE(Store.lookup(88, Out));
  EXPECT_FALSE(std::filesystem::exists(Store.pathFor(88)));

  // The store stays usable once the fault clears.
  EXPECT_TRUE(Store.store(88, {1, 2, 3}));
  EXPECT_TRUE(Store.lookup(88, Out));
  EXPECT_EQ(Out, (std::vector<uint8_t>{1, 2, 3}));
}

//===----------------------------------------------------------------------===//
// Options
//===----------------------------------------------------------------------===//

TEST(ExecOptions, ConsumesSharedFlags) {
  ExecOptions Opts;
  const char *Args[] = {"prog",        "--jobs", "3", "--cache-dir",
                        "/tmp/zzz",    "--no-cache"};
  char **Argv = const_cast<char **>(Args);
  int Argc = 6;
  for (int I = 1; I < Argc; ++I)
    EXPECT_TRUE(Opts.consumeArg(Argc, Argv, I)) << Args[I];
  EXPECT_EQ(Opts.Jobs, 3u);
  EXPECT_EQ(Opts.CacheDir, "/tmp/zzz");
  EXPECT_FALSE(Opts.UseDiskCache);

  ExecOptions Eq;
  const char *Args2[] = {"prog", "--jobs=5", "--cache-dir=/tmp/q"};
  char **Argv2 = const_cast<char **>(Args2);
  for (int I = 1; I < 3; ++I)
    EXPECT_TRUE(Eq.consumeArg(3, Argv2, I));
  EXPECT_EQ(Eq.Jobs, 5u);
  EXPECT_EQ(Eq.CacheDir, "/tmp/q");

  int I = 1;
  const char *Args3[] = {"prog", "--unrelated"};
  char **Argv3 = const_cast<char **>(Args3);
  EXPECT_FALSE(Opts.consumeArg(2, Argv3, I));
  EXPECT_EQ(I, 1);
}

TEST(ExecOptions, MalformedJobsValueSetsError) {
  for (const char *Bad : {"--jobs=abc", "--jobs=0", "--jobs=-2", "--jobs=3x"}) {
    ExecOptions Opts;
    const char *Args[] = {"prog", Bad};
    char **Argv = const_cast<char **>(Args);
    int I = 1;
    EXPECT_TRUE(Opts.consumeArg(2, Argv, I)) << Bad;
    EXPECT_FALSE(Opts.Error.empty()) << Bad;
    EXPECT_EQ(Opts.Jobs, 0u) << Bad;
  }
}

TEST(ExecOptions, EngineFlagParsesAndValidates) {
  for (const char *Kind : {"auto", "interp", "jit"}) {
    ExecOptions Opts;
    std::string Flag = std::string("--engine=") + Kind;
    const char *Args[] = {"prog", Flag.c_str()};
    char **Argv = const_cast<char **>(Args);
    int I = 1;
    EXPECT_TRUE(Opts.consumeArg(2, Argv, I)) << Kind;
    EXPECT_TRUE(Opts.Error.empty()) << Kind;
    EXPECT_EQ(Opts.Engine, Kind);
  }

  ExecOptions Opts;
  const char *Args[] = {"prog", "--engine", "turbo"};
  char **Argv = const_cast<char **>(Args);
  int I = 1;
  EXPECT_TRUE(Opts.consumeArg(3, Argv, I));
  EXPECT_FALSE(Opts.Error.empty());
  EXPECT_EQ(Opts.Engine, "auto");
}

TEST(ExecOptions, EngineComesFromDlqJitEnvironment) {
  ASSERT_EQ(setenv("DLQ_JIT", "0", 1), 0);
  EXPECT_EQ(ExecOptions::fromEnv().Engine, "interp");
  ASSERT_EQ(setenv("DLQ_JIT", "1", 1), 0);
  EXPECT_EQ(ExecOptions::fromEnv().Engine, "jit");
  ASSERT_EQ(unsetenv("DLQ_JIT"), 0);
  EXPECT_EQ(ExecOptions::fromEnv().Engine, "auto");
}

//===----------------------------------------------------------------------===//
// The end-to-end guarantee: parallel == serial, byte for byte
//===----------------------------------------------------------------------===//

TEST(ExecPipeline, ParallelResultsAreByteIdenticalToSerial) {
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  std::vector<std::string> Names;
  for (const workloads::Workload &W : workloads::allWorkloads())
    Names.push_back(W.Name);

  // Serial reference: one worker, no disk cache.
  pipeline::Driver Serial(execOpts(1, false, ""));
  std::vector<std::vector<uint8_t>> Expected;
  for (const std::string &Name : Names) {
    ByteWriter W;
    writeRunResult(
        W, Serial.run(Name, pipeline::InputSel::Input1, 0, Cache));
    Expected.push_back(W.take());
  }

  // Parallel: eight workers hammering the same driver concurrently.
  pipeline::Driver Parallel(execOpts(8, false, ""));
  std::vector<std::vector<uint8_t>> Actual =
      Parallel.pool().map<std::vector<uint8_t>>(Names.size(), [&](size_t I) {
        ByteWriter W;
        writeRunResult(
            W, Parallel.run(Names[I], pipeline::InputSel::Input1, 0, Cache));
        return W.take();
      });

  ASSERT_EQ(Actual.size(), Expected.size());
  for (size_t I = 0; I != Names.size(); ++I)
    EXPECT_EQ(Actual[I], Expected[I]) << Names[I];
}

TEST(ExecPipeline, DiskCacheReplayMatchesFreshSimulation) {
  TempStoreDir Dir("pipeline-replay");
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  const char *Name = "li_like";

  std::vector<uint8_t> Fresh, Replayed;
  {
    pipeline::Driver D(execOpts(1, true, Dir.str()));
    ByteWriter W;
    writeRunResult(W, D.run(Name, pipeline::InputSel::Input1, 0, Cache));
    Fresh = W.take();
    EXPECT_EQ(D.store().stats().Writes, 1u);
  }
  {
    pipeline::Driver D(execOpts(1, true, Dir.str()));
    ByteWriter W;
    writeRunResult(W, D.run(Name, pipeline::InputSel::Input1, 0, Cache));
    Replayed = W.take();
    EXPECT_EQ(D.store().stats().Hits, 1u);
    EXPECT_EQ(D.store().stats().Writes, 0u);
  }
  EXPECT_EQ(Fresh, Replayed);
}
