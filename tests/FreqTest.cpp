//===- tests/FreqTest.cpp - static frequency estimation tests -------------------//

#include "freq/StaticFreq.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <string>

using namespace dlq;
using namespace dlq::freq;
using namespace dlq::masm;

TEST(StaticFreq, MainRunsOnce) {
  auto M = test::compileOrDie("int main() { return 0; }", 0);
  ASSERT_TRUE(M);
  StaticFreqEstimate E(*M);
  EXPECT_DOUBLE_EQ(E.functionFreq(M->functionIndex("main")), 1.0);
}

TEST(StaticFreq, LoopsBoostFrequency) {
  auto M = test::compileOrDie("int a[8];"
                              "int main() {"
                              "  int i; int s; s = 0;"
                              "  for (i = 0; i < 8; i = i + 1) s = s + a[i];"
                              "  return s; }",
                              0);
  ASSERT_TRUE(M);

  // The array load sits in the loop; the epilogue's ra reload does not.
  auto loads = [&](const StaticFreqEstimate &E) {
    double LoopLoad = 0, StraightLoad = 0;
    const Function &F = *M->lookupFunction("main");
    for (uint32_t Idx = 0; Idx != F.size(); ++Idx) {
      if (!isLoad(F.instrs()[Idx].Op))
        continue;
      double Freq = E.instrFreq(InstrRef{M->functionIndex("main"), Idx});
      if (F.instrs()[Idx].Rd == Reg::RA)
        StraightLoad = Freq;
      else
        LoopLoad = std::max(LoopLoad, Freq);
    }
    return std::pair<double, double>(LoopLoad, StraightLoad);
  };

  // Default: the abstract interpreter proves the 8-iteration bound, so the
  // loop load carries the real trip weight instead of the blanket guess.
  auto [LoopLoad, StraightLoad] = loads(StaticFreqEstimate(*M));
  EXPECT_GT(LoopLoad, 2.0);
  EXPECT_LE(LoopLoad, 8.0);
  EXPECT_LE(StraightLoad, 1.0);

  // Knob off: the Wu-Larus blanket multiplier is back.
  StaticFreqOptions Blanket;
  Blanket.UseTripCounts = false;
  auto [BLoop, BStraight] = loads(StaticFreqEstimate(*M, Blanket));
  EXPECT_GT(BLoop, 100.0);
  EXPECT_LE(BStraight, 1.0);
}

TEST(StaticFreq, NestedLoopsMultiply) {
  auto M = test::compileOrDie("int a[4];"
                              "int main() {"
                              "  int i; int j; int s; s = 0;"
                              "  for (i = 0; i < 4; i = i + 1)"
                              "    for (j = 0; j < 4; j = j + 1)"
                              "      s = s + a[j];"
                              "  return s; }",
                              0);
  ASSERT_TRUE(M);
  uint32_t MainIdx = M->functionIndex("main");
  const Function &F = *M->lookupFunction("main");

  auto best = [&](const StaticFreqEstimate &E) {
    double Best = 0;
    for (uint32_t Idx = 0; Idx != F.size(); ++Idx)
      if (isLoad(F.instrs()[Idx].Op))
        Best = std::max(Best, E.instrFreq(InstrRef{MainIdx, Idx}));
    return Best;
  };

  // Default: both 4-iteration bounds are proven, so the inner load carries
  // roughly 4*4 (attenuated by the loop-header branch splits).
  double Best = best(StaticFreqEstimate(*M));
  EXPECT_GE(Best, 16.0 / 4) << "depth-2 loads must carry both trip counts";
  EXPECT_LE(Best, 16.0);

  // Knob off: the squared blanket weight, same attenuation allowance.
  StaticFreqOptions Blanket;
  Blanket.UseTripCounts = false;
  EXPECT_GE(best(StaticFreqEstimate(*M, Blanket)),
            Blanket.LoopBase * Blanket.LoopBase / 4)
      << "depth-2 loads must carry the squared loop weight";
}

TEST(StaticFreq, DataDependentLoopKeepsBlanketWeight) {
  // A pointer chase has no interval-proven bound; those loops must keep
  // the presumed-hot LoopBase multiplier so H5 never calls them seldom.
  auto M = test::compileOrDie("struct Node { int v; struct Node *next; };"
                              "int walk(struct Node *p) { int s; s = 0;"
                              "  while (p != 0) { s = s + p->v; p = p->next; }"
                              "  return s; }"
                              "int main() { return walk(0); }",
                              0);
  ASSERT_TRUE(M);
  StaticFreqEstimate E(*M);
  uint32_t WalkIdx = M->functionIndex("walk");
  const Function &F = *M->lookupFunction("walk");
  double Best = 0;
  for (uint32_t Idx = 0; Idx != F.size(); ++Idx)
    if (isLoad(F.instrs()[Idx].Op))
      Best = std::max(Best, E.instrFreq(InstrRef{WalkIdx, Idx}));
  EXPECT_GT(Best, 100.0);
}

TEST(StaticFreq, UncalledFunctionIsCold) {
  auto M = test::compileOrDie("int a[4];"
                              "int unused() { return a[1]; }"
                              "int main() { return 0; }",
                              0);
  ASSERT_TRUE(M);
  StaticFreqEstimate E(*M);
  EXPECT_DOUBLE_EQ(E.functionFreq(M->functionIndex("unused")), 0.0);
}

TEST(StaticFreq, CallGraphPropagates) {
  auto M = test::compileOrDie(
      "int leaf() { return 1; }"
      "int mid() { int i; int s; s = 0;"
      "  for (i = 0; i < 4; i = i + 1) s = s + leaf();"
      "  return s; }"
      "int main() { return mid(); }",
      0);
  ASSERT_TRUE(M);
  StaticFreqEstimate E(*M);
  double MidFreq = E.functionFreq(M->functionIndex("mid"));
  double LeafFreq = E.functionFreq(M->functionIndex("leaf"));
  EXPECT_NEAR(MidFreq, 1.0, 0.01);
  EXPECT_GT(LeafFreq, MidFreq) << "leaf is called from inside mid's loop";
}

TEST(StaticFreq, ConditionalCodeAttenuates) {
  auto M = test::compileOrDie("int g;"
                              "int main() {"
                              "  if (g > 0) { if (g > 1) { g = g + 1; } }"
                              "  return g; }",
                              0);
  ASSERT_TRUE(M);
  StaticFreqEstimate E(*M);
  uint32_t MainIdx = M->functionIndex("main");
  const Function &F = *M->lookupFunction("main");

  // The innermost global store's block should carry ~1/4 of entry weight.
  double MinFreq = 1e9;
  for (uint32_t Idx = 0; Idx != F.size(); ++Idx) {
    double Freq = E.instrFreq(InstrRef{MainIdx, Idx});
    if (Freq > 0)
      MinFreq = std::min(MinFreq, Freq);
  }
  EXPECT_LT(MinFreq, 0.5);
  EXPECT_GT(MinFreq, 0.1);
}

TEST(StaticFreq, RecursionIsBoundedNotInfinite) {
  auto M = test::compileOrDie("int f(int n) {"
                              "  if (n <= 0) return 1;"
                              "  return f(n - 1) + 1; }"
                              "int main() { return f(10); }",
                              0);
  ASSERT_TRUE(M);
  StaticFreqEstimate E(*M);
  double Freq = E.functionFreq(M->functionIndex("f"));
  EXPECT_GT(Freq, 0.0);
  StaticFreqOptions Opts;
  EXPECT_LE(Freq, Opts.MaxFreq);
}

TEST(StaticFreq, LoadExecCountsPlugIntoHeuristic) {
  auto M = test::compileOrDie(
      "struct Node { int v; struct Node *next; };"
      "struct Node *head;"
      "int hot() { int s; struct Node *n; s = 0;"
      "  for (n = head; n != 0; n = n->next) s = s + n->v;"
      "  return s; }"
      "int cold_path() { return head == 0 ? 1 : head->v; }"
      "int main() {"
      "  if (head != 0) return cold_path();"
      "  return hot(); }",
      0);
  ASSERT_TRUE(M);
  classify::ModuleAnalysis MA(*M);
  StaticFreqEstimate E(*M);
  classify::ExecCountMap Est = E.loadExecCounts();
  EXPECT_EQ(Est.size(), MA.loadPatterns().size());

  classify::HeuristicOptions WithH5;
  classify::HeuristicOptions NoH5;
  NoH5.UseFreqClasses = false;
  auto DeltaStatic = MA.delinquentSet(WithH5, &Est);
  auto DeltaNone = MA.delinquentSet(NoH5, nullptr);
  EXPECT_LE(DeltaStatic.size(), DeltaNone.size())
      << "static frequency classes can only suppress";
}

TEST(StaticFreq, DeepCallChainPropagatesWithinRoundBudget) {
  // main -> f1 -> ... -> f8 is exactly Rounds=8 levels deep. Propagation
  // used to start from an all-zero vector and seed main *inside* round 0,
  // which burned one round and left the deepest callee at frequency 0.
  std::string Src = "int f8(int n) { return n; }";
  for (int I = 7; I >= 1; --I)
    Src += "int f" + std::to_string(I) + "(int n) { return f" +
           std::to_string(I + 1) + "(n + 1); }";
  Src += "int main() { return f1(0); }";
  auto M = test::compileOrDie(Src.c_str(), 0);
  ASSERT_TRUE(M);
  StaticFreqEstimate E(*M);
  EXPECT_DOUBLE_EQ(E.functionFreq(M->functionIndex("f8")), 1.0);
}

TEST(StaticFreq, RecursiveFixpointIsRoundCountIndependent) {
  // A damped self-recursion (call weight 1/4) approaches its fixpoint
  // geometrically and never reaches it exactly, so the old exact-equality
  // convergence test ran every round and the answer depended on the Rounds
  // cap. With a relative tolerance both budgets stop at the same fixpoint.
  auto M = test::compileOrDie("int f(int n) {"
                              "  if (n > 0) {"
                              "    if (n > 1) { return f(n - 2); }"
                              "  }"
                              "  return 1; }"
                              "int main() { return f(9); }",
                              0);
  ASSERT_TRUE(M);
  StaticFreqOptions Short;
  Short.Rounds = 20;
  StaticFreqOptions Long;
  Long.Rounds = 40;
  double FS = StaticFreqEstimate(*M, Short).functionFreq(M->functionIndex("f"));
  double FL = StaticFreqEstimate(*M, Long).functionFreq(M->functionIndex("f"));
  EXPECT_DOUBLE_EQ(FS, FL);
  EXPECT_GT(FS, 1.0);
}
