//===- tests/FuzzRegressionTest.cpp - fuzzer-found bugs, pinned -----------------//
//
// Minimized reproducers for bugs found by the differential fuzzing harness
// (tools/fuzz_pipeline), plus replays of the exact failing campaign seeds.
// Every test here failed before its fix:
//
//  * -O1 constant folding of `>>` used a *logical* shift while the emitted
//    Srav does an arithmetic one — negative left operands produced different
//    observable output at -O0 and -O1 (campaign seed 7, indices 12 and 39).
//  * Folding INT_MIN / -1 (and % -1) performed the division on the host,
//    which faults — the compiler crashed with SIGFPE on valid MinC source at
//    -O1, and the parser crashed the same way on global initializers.
//  * Folded add/sub/mul/neg used signed host arithmetic, so overflowing
//    constants were UB (caught under -fsanitize=undefined) instead of the
//    simulator's two's-complement wraparound.
//  * Parser::evalConst accepted `%` nowhere while the -O1 folder handled it;
//    both now define the full operator set identically.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "fuzz/Generator.h"
#include "fuzz/Oracles.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dlq;

namespace {

/// Runs \p Source at both opt levels and checks the outputs and exit codes
/// agree and match \p ExpectOutput.
void expectSameBehavior(const char *Source, const std::string &ExpectOutput) {
  sim::RunResult R0 = test::compileAndRun(Source, 0);
  sim::RunResult R1 = test::compileAndRun(Source, 1);
  EXPECT_EQ(R0.Output, ExpectOutput);
  EXPECT_EQ(R1.Output, ExpectOutput);
  EXPECT_EQ(R0.ExitCode, R1.ExitCode);
}

} // namespace

TEST(FuzzRegression, NegativeShrFoldsArithmetically) {
  // Pre-fix: -O1 folded (0-3402170)>>4 logically to 268223176; -O0 executed
  // Srav and printed -212636. Minimized from campaign --seed 7, index 12.
  expectSameBehavior("int main() {"
                     "  int v;"
                     "  v = (0 - 3402170) >> 4;"
                     "  print_int(v);"
                     "  return 0; }",
                     "-212636\n");
}

TEST(FuzzRegression, GlobalInitializerNegativeShr) {
  // The parser's evalConst had the same logical-shift fold, so the global's
  // image in the data segment was wrong at every opt level.
  expectSameBehavior("int g = (0 - 8) >> 1;"
                     "int main() { print_int(g); return 0; }",
                     "-4\n");
}

TEST(FuzzRegression, IntMinDivRemByMinusOneDoesNotCrashTheCompiler) {
  // Pre-fix: folding INT_MIN / -1 executed the division on the host and the
  // compiler died with SIGFPE at -O1; the simulator defines the results as
  // INT_MIN and 0.
  expectSameBehavior("int main() {"
                     "  print_int((0 - 2147483647 - 1) / -1);"
                     "  print_int((0 - 2147483647 - 1) % -1);"
                     "  return 0; }",
                     "-2147483648\n0\n");
}

TEST(FuzzRegression, IntMinGlobalInitializerDoesNotCrashTheParser) {
  // Same fault in Parser::evalConst, reachable from a global initializer.
  expectSameBehavior("int g = (0 - 2147483647 - 1) / -1;"
                     "int h = (0 - 2147483647 - 1) % -1;"
                     "int main() { print_int(g); print_int(h); return 0; }",
                     "-2147483648\n0\n");
}

TEST(FuzzRegression, ConstantOverflowWrapsLikeTheSimulator) {
  // Signed host arithmetic in the folders was UB on overflow; now all three
  // evaluators wrap mod 2^32 exactly like the Machine's Add/Sub/Mul.
  expectSameBehavior("int main() {"
                     "  print_int(2147483647 + 1);"
                     "  print_int(2147483647 * 2);"
                     "  print_int(0 - 2147483647 - 2);"
                     "  return 0; }",
                     "-2147483648\n-2\n2147483647\n");
}

TEST(FuzzRegression, RemainderIsAConstantExpression) {
  // evalConst gained `%` alongside the folder; both sides must agree on it.
  expectSameBehavior("int g = 7 % 3;"
                     "int h = (0 - 7) % 3;"
                     "int main() { print_int(g); print_int(h); return 0; }",
                     "1\n-1\n");
}

TEST(FuzzRegression, SpillsInsideOneBranchArmDoNotLeak) {
  // Found by the deterministic campaign slice (campaign --seed 1, index 64,
  // small generator limits). A value live across a conditional expression —
  // here the `5` awaiting the ternary's result — used to be spilled by the
  // call inside one arm only; the post-join reload then read a stack slot
  // the other arm never wrote. Codegen now forces live values to their
  // slots before emitting any intra-expression branch. Pre-fix this printed
  // 3 (slot residue 0 + 3) at BOTH opt levels, so only the differential
  // harness's promotion-induced frame asymmetry exposed it.
  expectSameBehavior("int g;"
                     "int pick(int n) { return n; }"
                     "int main() {"
                     "  print_int(5 + (g == 1 ? pick(2) : 3));"
                     "  print_int((g == 0 || pick(9) > 0) + 7);"
                     "  return 0; }",
                     "8\n8\n");
}

TEST(FuzzRegression, FailingCampaignSeedsAreNowClean) {
  // The two programs of `fuzz_pipeline --seed 7` that caught the logical-Shr
  // fold, replayed through the whole oracle battery.
  for (uint64_t Index : {12ull, 39ull}) {
    uint64_t Seed = fuzz::programSeed(7, Index);
    fuzz::OracleReport Rep = fuzz::runOracles(fuzz::generateProgram(Seed));
    for (const fuzz::OracleFinding &F : Rep.Findings)
      ADD_FAILURE() << "seed " << Seed << " ["
                    << std::string(fuzz::oracleName(F.Id)) << "] " << F.Detail;
  }
}

TEST(FuzzRegression, GeneratorKeepsIndexVariablesNonNegative) {
  // The `--seed 1` full-size campaign flagged these two seeds as opt-level
  // divergences. Both were generator bugs, not miscompiles: the loop-heavy
  // helper registered i0 as provably non-negative but left it assignable, so
  // `i0 = <negative expr>;` later made `la[(i0 + k) % len]` a negative-index
  // out-of-bounds access whose result depended on the frame layout. i0 is
  // now also reassignment-protected; the same seeds must replay clean.
  for (uint64_t Seed : {4231065742721090466ull, 4704524798825719420ull}) {
    fuzz::OracleReport Rep = fuzz::runOracles(fuzz::generateProgram(Seed));
    for (const fuzz::OracleFinding &F : Rep.Findings)
      ADD_FAILURE() << "seed " << Seed << " ["
                    << std::string(fuzz::oracleName(F.Id)) << "] " << F.Detail;
  }
}
