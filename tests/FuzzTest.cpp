//===- tests/FuzzTest.cpp - robustness of the text front ends -------------------//
//
// Randomized robustness suites: the assembly parser and the MinC frontend
// must reject arbitrary garbage with diagnostics — never crash, hang or
// produce a half-built module. Seeds are fixed; failures reproduce.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "fuzz/Generator.h"
#include "fuzz/Minimizer.h"
#include "fuzz/Oracles.h"
#include "masm/Parser.h"
#include "masm/Printer.h"
#include "mcc/Compiler.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace dlq;

namespace {

/// Random printable text with assembly-ish tokens mixed in.
std::string randomAsmSoup(Rng &R, size_t Lines) {
  static const char *Tokens[] = {
      "add",  "$t0",   "$sp",  ",",     "lw",    "(",     ")",
      "8",    "-4",    ".data", ".text", ".globl", ".word", ".var",
      "main", "Lloop:", "jr",  "$ra",   "beq",   "#x",    "0x1F",
      "sw",   "la",    "sym",  ":",     "jal",   "\t",    "li"};
  std::string Out;
  for (size_t L = 0; L != Lines; ++L) {
    size_t N = R.nextBelow(8);
    for (size_t T = 0; T != N; ++T) {
      Out += Tokens[R.nextBelow(sizeof(Tokens) / sizeof(Tokens[0]))];
      Out += ' ';
    }
    Out += '\n';
  }
  return Out;
}

/// Random C-ish text.
std::string randomMinCSoup(Rng &R, size_t Tokens) {
  static const char *Toks[] = {
      "int",  "char",  "void",  "struct", "if",    "else", "while",
      "for",  "return", "break", "{",     "}",     "(",    ")",
      "[",    "]",     ";",     ",",      "*",     "&",    "=",
      "==",   "+",     "-",     "x",      "y",     "main", "42",
      "->",   ".",     "foo",   "sizeof", "malloc", "?",   ":"};
  std::string Out;
  for (size_t T = 0; T != Tokens; ++T) {
    Out += Toks[R.nextBelow(sizeof(Toks) / sizeof(Toks[0]))];
    Out += R.nextBelow(6) == 0 ? "\n" : " ";
  }
  return Out;
}

} // namespace

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Range<uint64_t>(1, 16),
                         [](const auto &Info) {
                           return "seed" + std::to_string(Info.param);
                         });

TEST_P(ParserFuzz, AsmSoupNeverCrashes) {
  Rng R(GetParam());
  for (int Trial = 0; Trial != 50; ++Trial) {
    std::string Soup = randomAsmSoup(R, 1 + R.nextBelow(20));
    masm::ParseResult Result = masm::parseAssembly(Soup);
    if (Result.ok()) {
      // Whatever parsed must survive printing and re-parsing.
      std::string Printed = masm::printModule(*Result.M);
      EXPECT_TRUE(masm::parseAssembly(Printed).ok()) << Printed;
    } else {
      EXPECT_FALSE(Result.Diags.empty());
    }
  }
}

TEST_P(ParserFuzz, MinCSoupNeverCrashes) {
  Rng R(GetParam() * 7919);
  for (int Trial = 0; Trial != 50; ++Trial) {
    std::string Soup = randomMinCSoup(R, 5 + R.nextBelow(80));
    mcc::CompileResult Result = mcc::compile(Soup);
    if (!Result.ok()) {
      EXPECT_FALSE(Result.Errors.empty());
    }
  }
}

TEST_P(ParserFuzz, RandomBytesNeverCrashEitherFrontend) {
  Rng R(GetParam() * 104729);
  for (int Trial = 0; Trial != 20; ++Trial) {
    std::string Bytes;
    size_t Len = R.nextBelow(300);
    for (size_t I = 0; I != Len; ++I)
      Bytes.push_back(static_cast<char>(R.nextBelow(127 - 9) + 9));
    (void)masm::parseAssembly(Bytes);
    (void)mcc::compile(Bytes);
  }
  SUCCEED();
}

TEST(ParserFuzz2, DeeplyNestedExpressionsAreBounded) {
  // 400 nested parens: must parse (or diagnose) without stack overflow.
  std::string Deep = "int main() { return ";
  for (int I = 0; I != 400; ++I)
    Deep += "(1 + ";
  Deep += "0";
  for (int I = 0; I != 400; ++I)
    Deep += ")";
  Deep += "; }";
  mcc::CompileResult R = mcc::compile(Deep);
  // Either outcome is fine; the process surviving is the test.
  if (!R.ok()) {
    EXPECT_FALSE(R.Errors.empty());
  }
}

TEST(ParserFuzz2, LongChainsOfStatements) {
  std::string Src = "int main() { int x; x = 0;";
  for (int I = 0; I != 2000; ++I)
    Src += " x = x + 1;";
  Src += " return x; }";
  mcc::CompileResult R = mcc::compile(Src);
  ASSERT_TRUE(R.ok()) << R.Errors;
  EXPECT_GT(R.M->totalInstrs(), 4000u);
}

//===----------------------------------------------------------------------===//
// Differential pipeline fuzzing (src/fuzz): a deterministic slice of the
// campaign that tools/fuzz_pipeline runs at scale. Fixed seeds, so a failure
// here is a plain regression, and the reproducer is `fuzz_pipeline --emit`.
//===----------------------------------------------------------------------===//

TEST(PipelineFuzz, GeneratorIsDeterministic) {
  for (uint64_t Seed : {1ull, 42ull, 0xDEADBEEFull}) {
    std::string A = fuzz::generateProgram(Seed);
    std::string B = fuzz::generateProgram(Seed);
    EXPECT_EQ(A, B) << "seed " << Seed;
    EXPECT_NE(A.find("int main()"), std::string::npos);
  }
}

TEST(PipelineFuzz, GeneratedProgramsAlwaysCompile) {
  // Validity discipline: every generated program is legal MinC.
  mcc::CompileOptions O0;
  mcc::CompileOptions O1;
  O1.OptLevel = 1;
  for (uint64_t Index = 0; Index != 64; ++Index) {
    std::string Src = fuzz::generateProgram(fuzz::programSeed(11, Index));
    mcc::CompileResult R0 = mcc::compile(Src, O0);
    mcc::CompileResult R1 = mcc::compile(Src, O1);
    EXPECT_TRUE(R0.ok()) << "index " << Index << ": " << R0.Errors;
    EXPECT_TRUE(R1.ok()) << "index " << Index << ": " << R1.Errors;
  }
}

TEST(PipelineFuzz, DeterministicCampaignSliceIsClean) {
  // ~100 programs through all four oracles. Smaller generator limits keep the
  // simulated instruction counts unit-test sized; the nightly sanitizer job
  // runs the full-size campaign.
  fuzz::GeneratorOptions Gen;
  Gen.MaxLoopBound = 8;
  Gen.MaxListLen = 12;
  fuzz::OracleOptions Oracle;
  Oracle.MaxInstrs = 5'000'000;
  unsigned Failures = 0;
  for (uint64_t Index = 0; Index != 96 && Failures < 5; ++Index) {
    uint64_t Seed = fuzz::programSeed(1, Index);
    std::string Src = fuzz::generateProgram(Seed, Gen);
    fuzz::OracleReport Rep = fuzz::runOracles(Src, Oracle);
    for (const fuzz::OracleFinding &F : Rep.Findings) {
      ++Failures;
      ADD_FAILURE() << "index " << Index << " seed " << Seed << " ["
                    << std::string(fuzz::oracleName(F.Id)) << "] " << F.Detail;
    }
  }
}

TEST(PipelineFuzz, MinimizerShrinksAndPreservesTheFinding) {
  // Plant a genuine divergence: opt-level oracle trips on a program whose
  // observable output depends on an uninitialized stack slot at -O0 vs -O1
  // is NOT generator-reachable, so instead use a trap divergence: division
  // by zero behind a branch the folder removes at -O1.
  // Simpler and fully deterministic: a program that always traps. The Trap
  // finding survives line deletion down to a tiny core.
  std::string Src = "int g0;\n"
                    "int g1;\n"
                    "int main() {\n"
                    "  int a;\n"
                    "  int b;\n"
                    "  a = 3;\n"
                    "  b = 0;\n"
                    "  print_int(a);\n"
                    "  print_int(a / b);\n"
                    "  return 0;\n"
                    "}\n";
  fuzz::OracleReport Rep = fuzz::runOracles(Src);
  ASSERT_TRUE(Rep.has(fuzz::OracleId::Trap));
  fuzz::MinimizeOptions MO;
  fuzz::MinimizeResult MR =
      fuzz::minimizeProgram(Src, fuzz::OracleId::Trap, MO);
  EXPECT_TRUE(fuzz::runOracles(MR.Program).has(fuzz::OracleId::Trap));
  EXPECT_LT(MR.Program.size(), Src.size());
  EXPECT_GT(MR.Probes, 0u);
}

TEST(PipelineFuzz, CampaignApiFindsNothingOnASmallRun) {
  fuzz::FuzzOptions FO;
  FO.Programs = 12;
  FO.Seed = 3;
  FO.Minimize = false;
  FO.Gen.MaxLoopBound = 8;
  FO.Gen.MaxListLen = 12;
  FO.Oracle.MaxInstrs = 5'000'000;
  fuzz::FuzzResult FR = fuzz::runCampaign(FO);
  EXPECT_TRUE(FR.clean());
  EXPECT_EQ(FR.Stats.Programs, 12u);
  EXPECT_GT(FR.Stats.InstrsExecuted, 0u);
}
