//===- tests/FuzzTest.cpp - robustness of the text front ends -------------------//
//
// Randomized robustness suites: the assembly parser and the MinC frontend
// must reject arbitrary garbage with diagnostics — never crash, hang or
// produce a half-built module. Seeds are fixed; failures reproduce.
//
//===----------------------------------------------------------------------===//

#include "masm/Parser.h"
#include "masm/Printer.h"
#include "mcc/Compiler.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace dlq;

namespace {

/// Random printable text with assembly-ish tokens mixed in.
std::string randomAsmSoup(Rng &R, size_t Lines) {
  static const char *Tokens[] = {
      "add",  "$t0",   "$sp",  ",",     "lw",    "(",     ")",
      "8",    "-4",    ".data", ".text", ".globl", ".word", ".var",
      "main", "Lloop:", "jr",  "$ra",   "beq",   "#x",    "0x1F",
      "sw",   "la",    "sym",  ":",     "jal",   "\t",    "li"};
  std::string Out;
  for (size_t L = 0; L != Lines; ++L) {
    size_t N = R.nextBelow(8);
    for (size_t T = 0; T != N; ++T) {
      Out += Tokens[R.nextBelow(sizeof(Tokens) / sizeof(Tokens[0]))];
      Out += ' ';
    }
    Out += '\n';
  }
  return Out;
}

/// Random C-ish text.
std::string randomMinCSoup(Rng &R, size_t Tokens) {
  static const char *Toks[] = {
      "int",  "char",  "void",  "struct", "if",    "else", "while",
      "for",  "return", "break", "{",     "}",     "(",    ")",
      "[",    "]",     ";",     ",",      "*",     "&",    "=",
      "==",   "+",     "-",     "x",      "y",     "main", "42",
      "->",   ".",     "foo",   "sizeof", "malloc", "?",   ":"};
  std::string Out;
  for (size_t T = 0; T != Tokens; ++T) {
    Out += Toks[R.nextBelow(sizeof(Toks) / sizeof(Toks[0]))];
    Out += R.nextBelow(6) == 0 ? "\n" : " ";
  }
  return Out;
}

} // namespace

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Range<uint64_t>(1, 16),
                         [](const auto &Info) {
                           return "seed" + std::to_string(Info.param);
                         });

TEST_P(ParserFuzz, AsmSoupNeverCrashes) {
  Rng R(GetParam());
  for (int Trial = 0; Trial != 50; ++Trial) {
    std::string Soup = randomAsmSoup(R, 1 + R.nextBelow(20));
    masm::ParseResult Result = masm::parseAssembly(Soup);
    if (Result.ok()) {
      // Whatever parsed must survive printing and re-parsing.
      std::string Printed = masm::printModule(*Result.M);
      EXPECT_TRUE(masm::parseAssembly(Printed).ok()) << Printed;
    } else {
      EXPECT_FALSE(Result.Diags.empty());
    }
  }
}

TEST_P(ParserFuzz, MinCSoupNeverCrashes) {
  Rng R(GetParam() * 7919);
  for (int Trial = 0; Trial != 50; ++Trial) {
    std::string Soup = randomMinCSoup(R, 5 + R.nextBelow(80));
    mcc::CompileResult Result = mcc::compile(Soup);
    if (!Result.ok())
      EXPECT_FALSE(Result.Errors.empty());
  }
}

TEST_P(ParserFuzz, RandomBytesNeverCrashEitherFrontend) {
  Rng R(GetParam() * 104729);
  for (int Trial = 0; Trial != 20; ++Trial) {
    std::string Bytes;
    size_t Len = R.nextBelow(300);
    for (size_t I = 0; I != Len; ++I)
      Bytes.push_back(static_cast<char>(R.nextBelow(127 - 9) + 9));
    (void)masm::parseAssembly(Bytes);
    (void)mcc::compile(Bytes);
  }
  SUCCEED();
}

TEST(ParserFuzz2, DeeplyNestedExpressionsAreBounded) {
  // 400 nested parens: must parse (or diagnose) without stack overflow.
  std::string Deep = "int main() { return ";
  for (int I = 0; I != 400; ++I)
    Deep += "(1 + ";
  Deep += "0";
  for (int I = 0; I != 400; ++I)
    Deep += ")";
  Deep += "; }";
  mcc::CompileResult R = mcc::compile(Deep);
  // Either outcome is fine; the process surviving is the test.
  if (!R.ok())
    EXPECT_FALSE(R.Errors.empty());
}

TEST(ParserFuzz2, LongChainsOfStatements) {
  std::string Src = "int main() { int x; x = 0;";
  for (int I = 0; I != 2000; ++I)
    Src += " x = x + 1;";
  Src += " return x; }";
  mcc::CompileResult R = mcc::compile(Src);
  ASSERT_TRUE(R.ok()) << R.Errors;
  EXPECT_GT(R.M->totalInstrs(), 4000u);
}
