//===- tests/IpaTest.cpp - interprocedural summary tests ---------------------//
//
// Part of the delinq project test suite.
//
//===----------------------------------------------------------------------===//

#include "absint/Lint.h"
#include "ap/Pattern.h"
#include "classify/Delinquency.h"
#include "ipa/CallGraph.h"
#include "ipa/Summaries.h"
#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace dlq;
using namespace dlq::ipa;
using absint::AbsValue;
using absint::SymBase;

namespace {

IpaOptions ipaOn(unsigned K = 2, unsigned MaxContexts = 8) {
  IpaOptions O;
  O.Enable = true;
  O.ContextK = K;
  O.MaxContextsPerFunction = MaxContexts;
  return O;
}

/// Position of \p F in \p Order (asserts membership).
size_t orderPos(const std::vector<uint32_t> &Order, uint32_t F) {
  auto It = std::find(Order.begin(), Order.end(), F);
  EXPECT_NE(It, Order.end());
  return static_cast<size_t>(It - Order.begin());
}

//===----------------------------------------------------------------------===//
// Call graph
//===----------------------------------------------------------------------===//

TEST(IpaCallGraph, DirectEdgesAndBottomUpOrder) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        jal f
        jr  $ra
        .globl f
f:
        jal g
        jal h
        jr  $ra
        .globl g
g:
        jr  $ra
        .globl h
h:
        jal g
        jr  $ra
)");
  CallGraph CG(*M);
  uint32_t Main = M->functionIndex("main"), F = M->functionIndex("f"),
           G = M->functionIndex("g"), H = M->functionIndex("h");

  EXPECT_EQ(CG.calleesOf(Main), (std::vector<uint32_t>{F}));
  EXPECT_EQ(CG.calleesOf(F), (std::vector<uint32_t>{G, H}));
  EXPECT_EQ(CG.callersOf(G), (std::vector<uint32_t>{F, H}));
  EXPECT_TRUE(CG.callersOf(Main).empty());
  EXPECT_FALSE(CG.moduleHasUnknownCalls());
  EXPECT_FALSE(CG.moduleHasIndirectCalls());
  for (uint32_t X : {Main, F, G, H})
    EXPECT_FALSE(CG.isRecursive(X));

  // Callees precede callers for every cross-SCC edge.
  const std::vector<uint32_t> &BU = CG.bottomUpOrder();
  EXPECT_LT(orderPos(BU, G), orderPos(BU, F));
  EXPECT_LT(orderPos(BU, G), orderPos(BU, H));
  EXPECT_LT(orderPos(BU, H), orderPos(BU, F));
  EXPECT_LT(orderPos(BU, F), orderPos(BU, Main));
}

TEST(IpaCallGraph, RuntimeJalIsUnknownButNotIndirect) {
  // `jal malloc` leaves the module, so the callee is unknown — but the
  // runtime never re-enters guest code, so it adds no hidden callers and
  // must NOT count as indirect control flow.
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        li  $a0, 16
        jal malloc
        jr  $ra
)");
  CallGraph CG(*M);
  uint32_t Main = M->functionIndex("main");
  EXPECT_TRUE(CG.hasUnknownCallee(Main));
  EXPECT_TRUE(CG.moduleHasUnknownCalls());
  EXPECT_FALSE(CG.moduleHasIndirectCalls());
  ASSERT_EQ(CG.sitesIn(Main).size(), 1u);
  EXPECT_FALSE(CG.sitesIn(Main)[0].known());
  EXPECT_FALSE(CG.sitesIn(Main)[0].Indirect);
}

TEST(IpaCallGraph, JalrIsIndirect) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        la   $t0, f
        jalr $t0
        jr   $ra
        .globl f
f:
        jr   $ra
)");
  CallGraph CG(*M);
  uint32_t Main = M->functionIndex("main");
  EXPECT_TRUE(CG.moduleHasUnknownCalls());
  EXPECT_TRUE(CG.moduleHasIndirectCalls());
  ASSERT_EQ(CG.sitesIn(Main).size(), 1u);
  EXPECT_TRUE(CG.sitesIn(Main)[0].Indirect);
}

TEST(IpaCallGraph, MutualRecursionSharesScc) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        jal a
        jr  $ra
        .globl a
a:
        jal b
        jr  $ra
        .globl b
b:
        jal a
        jr  $ra
        .globl c
c:
        jal c
        jr  $ra
)");
  CallGraph CG(*M);
  uint32_t A = M->functionIndex("a"), B = M->functionIndex("b"),
           C = M->functionIndex("c"), Main = M->functionIndex("main");
  EXPECT_EQ(CG.sccOf(A), CG.sccOf(B));
  EXPECT_EQ(CG.sccSize(A), 2u);
  EXPECT_TRUE(CG.isRecursive(A));
  EXPECT_TRUE(CG.isRecursive(B));
  EXPECT_TRUE(CG.isRecursive(C)) << "direct self edge";
  EXPECT_EQ(CG.sccSize(C), 1u);
  EXPECT_FALSE(CG.isRecursive(Main));
  EXPECT_NE(CG.sccOf(Main), CG.sccOf(A));
}

//===----------------------------------------------------------------------===//
// containsValue
//===----------------------------------------------------------------------===//

TEST(IpaContainsValue, IntervalAndStride) {
  auto iv = [](int64_t Lo, int64_t Hi, uint64_t Stride) {
    AbsValue V;
    V.Base = SymBase::none();
    V.Lo = Lo;
    V.Hi = Hi;
    V.Stride = Stride;
    return V;
  };
  EXPECT_TRUE(containsValue(AbsValue::top(), AbsValue::constant(3)));
  EXPECT_FALSE(containsValue(AbsValue::constant(3), AbsValue::top()));
  EXPECT_TRUE(containsValue(iv(0, 10, 1), AbsValue::constant(7)));
  EXPECT_FALSE(containsValue(iv(0, 10, 1), AbsValue::constant(11)));
  EXPECT_TRUE(containsValue(iv(0, 16, 4), iv(0, 8, 4)));
  EXPECT_FALSE(containsValue(iv(0, 16, 4), iv(1, 9, 4)))
      << "misaligned congruence anchor";
  EXPECT_FALSE(containsValue(iv(0, 16, 4), iv(0, 16, 2)))
      << "finer stride admits values the coarser one excludes";
  // Different symbolic bases never contain one another.
  EXPECT_FALSE(
      containsValue(AbsValue::entry(masm::Reg::A0), AbsValue::constant(0)));
  EXPECT_TRUE(containsValue(AbsValue::entry(masm::Reg::A0),
                            AbsValue::entry(masm::Reg::A0)));
}

//===----------------------------------------------------------------------===//
// Summaries
//===----------------------------------------------------------------------===//

TEST(IpaSummaries, ConstantReturnPropagates) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        jal f
        jr  $ra
        .globl f
f:
        li  $v0, 7
        jr  $ra
)");
  masm::Layout L(*M);
  ModuleSummaries MS(*M, L, ipaOn());
  const FuncSummary &S = MS.summary(M->functionIndex("f"));
  EXPECT_TRUE(S.HasRet);
  EXPECT_EQ(S.RetV0, AbsValue::constant(7));
}

TEST(IpaSummaries, ArgOffsetReturnIsEntryRelative) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        jal f
        jr   $ra
        .globl f
f:
        addi $v0, $a0, 8
        jr   $ra
)");
  masm::Layout L(*M);
  ModuleSummaries MS(*M, L, ipaOn());
  const FuncSummary &S = MS.summary(M->functionIndex("f"));
  ASSERT_TRUE(S.HasRet);
  EXPECT_EQ(S.RetV0.Base, SymBase::entryReg(masm::Reg::A0));
  EXPECT_EQ(S.RetV0.Lo, 8);
  EXPECT_EQ(S.RetV0.Hi, 8);
}

TEST(IpaSummaries, EntryFactsResolveArgBase) {
  auto M = test::parseAsmOrDie(R"(
        .data
g:      .space 64
        .text
        .globl main
main:
        la  $a0, g
        jal f
        jr  $ra
        .globl f
f:
        lw  $t0, 8($a0)
        jr  $ra
)");
  masm::Layout L(*M);
  ModuleSummaries MS(*M, L, ipaOn());
  uint32_t F = M->functionIndex("f");
  const FuncSummary &S = MS.summary(F);
  EXPECT_TRUE(S.HasEntryFacts);
  EXPECT_EQ(S.Contexts, 1u);
  EXPECT_FALSE(S.BudgetHit);
  EXPECT_TRUE(S.ReadsArg[0]);
  const absint::State *EF = MS.entryStateFor(F);
  ASSERT_NE(EF, nullptr);
  const AbsValue &A0 = EF->reg(masm::Reg::A0);
  EXPECT_FALSE(A0.isTop());
  EXPECT_NE(A0, AbsValue::entry(masm::Reg::A0))
      << "the fact must be sharper than the generic entry symbol";
}

TEST(IpaSummaries, RecursiveFunctionsStayGeneric) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        li  $a0, 5
        jal f
        jr  $ra
        .globl f
f:
        beq  $a0, $zero, Ldone
        addi $a0, $a0, -1
        jal  f
Ldone:
        jr  $ra
)");
  masm::Layout L(*M);
  ModuleSummaries MS(*M, L, ipaOn());
  uint32_t F = M->functionIndex("f");
  EXPECT_TRUE(MS.summary(F).Recursive);
  EXPECT_FALSE(MS.summary(F).HasEntryFacts);
  EXPECT_EQ(MS.entryStateFor(F), nullptr);
}

TEST(IpaSummaries, ContextBudgetWidensBackToGeneric) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        li  $a0, 1
        jal f
        li  $a0, 2
        jal f
        jr  $ra
        .globl f
f:
        lw  $v0, 0($a0)
        jr  $ra
)");
  masm::Layout L(*M);
  // Budget 1, but main presents two distinct argument contexts.
  ModuleSummaries MS(*M, L, ipaOn(2, 1));
  uint32_t F = M->functionIndex("f");
  EXPECT_TRUE(MS.summary(F).BudgetHit);
  EXPECT_FALSE(MS.summary(F).HasEntryFacts);
  EXPECT_EQ(MS.entryStateFor(F), nullptr);

  // A budget of 8 keeps both contexts and joins them into one fact.
  ModuleSummaries Wide(*M, L, ipaOn());
  EXPECT_FALSE(Wide.summary(F).BudgetHit);
  EXPECT_TRUE(Wide.summary(F).HasEntryFacts);
  EXPECT_EQ(Wide.summary(F).Contexts, 2u);
  const absint::State *EF = Wide.entryStateFor(F);
  ASSERT_NE(EF, nullptr);
  EXPECT_TRUE(containsValue(EF->reg(masm::Reg::A0), AbsValue::constant(1)));
  EXPECT_TRUE(containsValue(EF->reg(masm::Reg::A0), AbsValue::constant(2)));
}

TEST(IpaSummaries, KLimitStopsDeepPropagation) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        li  $a0, 1
        jal d1
        jr  $ra
        .globl d1
d1:
        jal d2
        jr  $ra
        .globl d2
d2:
        jal d3
        jr  $ra
        .globl d3
d3:
        lw  $v0, 0($a0)
        jr  $ra
)");
  masm::Layout L(*M);
  ModuleSummaries MS(*M, L, ipaOn(2));
  EXPECT_TRUE(MS.summary(M->functionIndex("d1")).HasEntryFacts ||
              MS.summary(M->functionIndex("d2")).HasEntryFacts);
  EXPECT_FALSE(MS.summary(M->functionIndex("d3")).HasEntryFacts)
      << "d3 sits at call depth 3 > k=2";
  EXPECT_EQ(MS.callDepth(M->functionIndex("main")), 0u);
  EXPECT_EQ(MS.callDepth(M->functionIndex("d3")), 3u);
}

TEST(IpaSummaries, UnreachableCallerContributesNothing) {
  // `dead` passes an unconstrained pointer to f, but nothing calls `dead`,
  // so the entry fact for f comes from main's constant alone.
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        li  $a0, 3
        jal f
        jr  $ra
        .globl f
f:
        lw  $v0, 0($a0)
        jr  $ra
        .globl dead
dead:
        jal f
        jr  $ra
)");
  masm::Layout L(*M);
  ModuleSummaries MS(*M, L, ipaOn());
  uint32_t F = M->functionIndex("f");
  EXPECT_EQ(MS.callDepth(M->functionIndex("dead")), masm::InvalidIndex);
  ASSERT_TRUE(MS.summary(F).HasEntryFacts);
  EXPECT_EQ(MS.entryStateFor(F)->reg(masm::Reg::A0), AbsValue::constant(3));
  EXPECT_TRUE(checkInterprocSoundness(*M, L, ipaOn()).empty())
      << "facts scoped to reachable callers must still verify";
}

TEST(IpaSummaries, SoundnessCheckCleanOnCallChain) {
  auto M = test::parseAsmOrDie(R"(
        .data
tbl:    .space 128
        .text
        .globl main
main:
        la   $a0, tbl
        li   $a1, 4
        jal  mid
        move $a0, $v0
        jal  leaf
        jr   $ra
        .globl mid
mid:
        jal  leaf
        addi $v0, $v0, 4
        jr   $ra
        .globl leaf
leaf:
        addi $v0, $a0, 8
        jr   $ra
)");
  masm::Layout L(*M);
  std::vector<std::string> V = checkInterprocSoundness(*M, L, ipaOn());
  EXPECT_TRUE(V.empty()) << (V.empty() ? "" : V.front());
}

//===----------------------------------------------------------------------===//
// Interprocedural address patterns (classify::ModuleAnalysis)
//===----------------------------------------------------------------------===//

TEST(ModuleAnalysisIpa, ArgPatternSubstitutesCallerBase) {
  auto M = test::parseAsmOrDie(R"(
        .data
g:      .space 64
        .text
        .globl main
main:
        la  $a0, g
        jal f
        jr  $ra
        .globl f
f:
        lw  $t0, 8($a0)
        jr  $ra
)");
  uint32_t F = M->functionIndex("f");
  masm::InstrRef Load{F, 0};

  classify::ModuleAnalysis Off(*M);
  ASSERT_EQ(Off.loadPatterns().at(Load).size(), 1u);
  EXPECT_EQ(ap::printPattern(Off.loadPatterns().at(Load)[0]), "a0+8");

  classify::ModuleAnalysis On(*M, ap::ApBuilderOptions(), ipaOn());
  ASSERT_NE(On.callGraph(), nullptr);
  ASSERT_EQ(On.loadPatterns().at(Load).size(), 1u);
  EXPECT_EQ(ap::printPattern(On.loadPatterns().at(Load)[0]), "&g+8")
      << "the caller's global base must replace the reg_param leaf";
  ASSERT_EQ(On.ipaStats().size(), M->functions().size());
  EXPECT_GE(On.ipaStats()[F].ArgSubsts, 1u);
}

TEST(ModuleAnalysisIpa, ReturnPatternSubstitutesAtCallSite) {
  auto M = test::parseAsmOrDie(R"(
        .data
tbl:    .space 64
        .text
        .globl main
main:
        jal g
        lw  $t0, 4($v0)
        jr  $ra
        .globl g
g:
        la  $v0, tbl
        jr  $ra
)");
  uint32_t Main = M->functionIndex("main");
  masm::InstrRef Load{Main, 1};

  classify::ModuleAnalysis Off(*M);
  ASSERT_EQ(Off.loadPatterns().at(Load).size(), 1u);
  EXPECT_EQ(ap::printPattern(Off.loadPatterns().at(Load)[0]), "v0+4");

  classify::ModuleAnalysis On(*M, ap::ApBuilderOptions(), ipaOn());
  ASSERT_EQ(On.loadPatterns().at(Load).size(), 1u);
  EXPECT_EQ(ap::printPattern(On.loadPatterns().at(Load)[0]), "&tbl+4")
      << "the callee's return pattern must replace the reg_ret leaf";
  EXPECT_GE(On.ipaStats()[Main].CallSubsts, 1u);
  EXPECT_GE(On.ipaStats()[M->functionIndex("g")].RetPatternsExported, 1u);
}

TEST(ModuleAnalysisIpa, DisabledIsBitIdenticalToIntra) {
  auto M = test::parseAsmOrDie(R"(
        .data
buf:    .space 256
        .text
        .globl main
main:
        la   $a0, buf
        jal  f
        lw   $t0, 0($v0)
        jr   $ra
        .globl f
f:
        lw   $t1, 4($a0)
        jal  g
        addi $v0, $v0, 12
        jr   $ra
        .globl g
g:
        lw   $v0, 16($a0)
        jr   $ra
)");
  classify::ModuleAnalysis Intra(*M);
  IpaOptions OffOpts; // Enable defaults to false.
  classify::ModuleAnalysis Off(*M, ap::ApBuilderOptions(), OffOpts);

  EXPECT_EQ(Off.callGraph(), nullptr);
  ASSERT_EQ(Intra.loadPatterns().size(), Off.loadPatterns().size());
  for (const auto &[Ref, Pats] : Intra.loadPatterns()) {
    const auto &OffPats = Off.loadPatterns().at(Ref);
    ASSERT_EQ(Pats.size(), OffPats.size());
    for (size_t I = 0; I != Pats.size(); ++I)
      EXPECT_EQ(ap::printPattern(Pats[I]), ap::printPattern(OffPats[I]))
          << "IPA-off must reproduce the intraprocedural patterns exactly";
  }
}

//===----------------------------------------------------------------------===//
// Arg-use-before-set lint
//===----------------------------------------------------------------------===//

TEST(IpaLint, ArgClobberedByCallIsFlagged) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        addi $sp, $sp, -8
        li   $a0, 1
        jal  f
        jal  g
        addi $sp, $sp, 8
        jr   $ra
        .globl f
f:
        li   $v0, 0
        jr   $ra
        .globl g
g:
        lw   $v0, 0($a0)
        jr   $ra
)");
  masm::Layout L(*M);
  ModuleSummaries MS(*M, L, ipaOn());
  EXPECT_TRUE(MS.calleeReadsArg(M->functionIndex("g"), 0));
  EXPECT_FALSE(MS.calleeReadsArg(M->functionIndex("f"), 0));

  absint::LintOptions LO;
  LO.Ipa = &MS;
  std::vector<absint::LintFinding> Fs = absint::lintModule(*M, LO);
  bool Found = false;
  for (const absint::LintFinding &F : Fs)
    if (F.Check == absint::LintCheck::ArgUseBeforeSet) {
      Found = true;
      EXPECT_EQ(F.Function, "main");
      EXPECT_EQ(F.InstrIdx, 3u) << "the jal g consuming the stale $a0";
    }
  EXPECT_TRUE(Found);
}

TEST(IpaLint, ArgRewrittenBetweenCallsIsClean) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        addi $sp, $sp, -8
        li   $a0, 1
        jal  f
        li   $a0, 2
        jal  g
        addi $sp, $sp, 8
        jr   $ra
        .globl f
f:
        li   $v0, 0
        jr   $ra
        .globl g
g:
        lw   $v0, 0($a0)
        jr   $ra
)");
  masm::Layout L(*M);
  ModuleSummaries MS(*M, L, ipaOn());
  absint::LintOptions LO;
  LO.Ipa = &MS;
  for (const absint::LintFinding &F : absint::lintModule(*M, LO))
    EXPECT_NE(F.Check, absint::LintCheck::ArgUseBeforeSet) << F.str();
}

} // namespace
