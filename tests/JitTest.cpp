//===- tests/JitTest.cpp - JIT-vs-interpreter engine differential -----------//
//
// The JIT's whole contract is bit-identity with the interpreter: same halt
// state, same output, same aggregate counters, same per-PC ExecCounts and
// MissCounts, for every program including ones that trap, run out of fuel
// mid-block, or exit from inside compiled code. These tests hold small
// hand-written assembly and compiled MinC programs to that contract with
// the hotness threshold forced to 1 so every reachable block compiles.
//
//===----------------------------------------------------------------------===//

#include "jit/CodeBuffer.h"
#include "obs/Counters.h"
#include "sim/Machine.h"
#include "support/Format.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::masm;
using namespace dlq::sim;

namespace {

/// Runs \p M under both engines and checks every observable matches. The
/// JIT run forces HotThreshold=1 so each visited leader compiles.
void expectEnginesAgree(const Module &M, MachineOptions Base = {}) {
  if (!jit::available())
    GTEST_SKIP() << "no executable memory on this host";
  Layout L(M);

  MachineOptions IOpts = Base;
  IOpts.Engine = EngineKind::Interp;
  Machine Interp(M, L, IOpts);
  ASSERT_FALSE(Interp.usingJit());
  RunResult RI = Interp.run();

  MachineOptions JOpts = Base;
  JOpts.Engine = EngineKind::Jit;
  JOpts.JitHotThreshold = 1;
  Machine Jit(M, L, JOpts);
  ASSERT_TRUE(Jit.usingJit());
  RunResult RJ = Jit.run();

  EXPECT_EQ(RI.Halt, RJ.Halt);
  EXPECT_EQ(RI.TrapMessage, RJ.TrapMessage);
  EXPECT_EQ(RI.ExitCode, RJ.ExitCode);
  EXPECT_EQ(RI.Output, RJ.Output);
  EXPECT_EQ(RI.InstrsExecuted, RJ.InstrsExecuted);
  EXPECT_EQ(RI.DataAccesses, RJ.DataAccesses);
  EXPECT_EQ(RI.LoadMisses, RJ.LoadMisses);
  EXPECT_EQ(RI.StoreMisses, RJ.StoreMisses);
  EXPECT_EQ(RI.PrefetchesIssued, RJ.PrefetchesIssued);
  EXPECT_EQ(RI.PrefetchFills, RJ.PrefetchFills);
  EXPECT_EQ(RI.PrefetchUseful, RJ.PrefetchUseful);
  EXPECT_EQ(RI.PrefetchLate, RJ.PrefetchLate);
  ASSERT_EQ(RI.PrefetchPerPc.size(), RJ.PrefetchPerPc.size());
  for (size_t I = 0; I != RI.PrefetchPerPc.size(); ++I) {
    EXPECT_EQ(RI.PrefetchPerPc[I].FlatPc, RJ.PrefetchPerPc[I].FlatPc);
    EXPECT_EQ(RI.PrefetchPerPc[I].Issued, RJ.PrefetchPerPc[I].Issued);
    EXPECT_EQ(RI.PrefetchPerPc[I].Useful, RJ.PrefetchPerPc[I].Useful);
    EXPECT_EQ(RI.PrefetchPerPc[I].Late, RJ.PrefetchPerPc[I].Late);
  }
  ASSERT_EQ(RI.ExecCounts.size(), RJ.ExecCounts.size());
  for (size_t I = 0; I != RI.ExecCounts.size(); ++I)
    EXPECT_EQ(RI.ExecCounts[I], RJ.ExecCounts[I]) << "ExecCounts[" << I << "]";
  for (size_t I = 0; I != RI.MissCounts.size(); ++I)
    EXPECT_EQ(RI.MissCounts[I], RJ.MissCounts[I]) << "MissCounts[" << I << "]";
}

void expectBodyAgrees(const std::string &Body, MachineOptions Base = {}) {
  std::string Asm = "        .text\n        .globl main\nmain:\n" + Body +
                    "        jr   $ra\n";
  auto M = test::parseAsmOrDie(Asm);
  ASSERT_TRUE(M);
  expectEnginesAgree(*M, Base);
}

TEST(JitDifferential, AluAndShiftCorners) {
  expectBodyAgrees("        li   $t0, 2147483647\n"
                   "        li   $t1, 1\n"
                   "        add  $t2, $t0, $t1\n"
                   "        sub  $t3, $t2, $t1\n"
                   "        li   $t4, 65536\n"
                   "        mul  $t5, $t4, $t4\n"
                   "        li   $t6, -7\n"
                   "        li   $t7, 2\n"
                   "        div  $s0, $t6, $t7\n"
                   "        rem  $s1, $t6, $t7\n"
                   "        nor  $s2, $t0, $t1\n"
                   "        slt  $s3, $t6, $t7\n"
                   "        sltu $s4, $t6, $t7\n"
                   "        li   $t8, 33\n"
                   "        sllv $s5, $t1, $t8\n"
                   "        srav $s6, $t6, $t8\n"
                   "        srlv $s7, $t6, $t8\n"
                   "        sra  $a1, $t6, 1\n"
                   "        srl  $a2, $t6, 1\n"
                   "        sll  $a3, $t1, 31\n"
                   "        xori $v0, $s3, 1\n"
                   "        andi $v1, $t6, 255\n"
                   "        ori  $v0, $v0, 4\n"
                   "        slti $v0, $t6, -6\n"
                   "        sltiu $v0, $t6, -6\n"
                   "        lui  $v0, 18\n"
                   "        addi $v0, $v0, -18\n");
}

TEST(JitDifferential, DivRemIntMinByMinusOne) {
  expectBodyAgrees("        li   $t0, -2147483648\n"
                   "        li   $t1, -1\n"
                   "        div  $t2, $t0, $t1\n"
                   "        rem  $t3, $t0, $t1\n"
                   "        add  $v0, $t2, $t3\n");
}

TEST(JitDifferential, DivByZeroTrapsIdentically) {
  expectBodyAgrees("        li   $t0, 5\n"
                   "        li   $t1, 0\n"
                   "        div  $v0, $t0, $t1\n");
}

TEST(JitDifferential, RemByZeroTrapsIdentically) {
  expectBodyAgrees("        li   $t0, 5\n"
                   "        li   $t1, 0\n"
                   "        rem  $v0, $t0, $t1\n");
}

TEST(JitDifferential, DivByZeroAfterHotLoopDeopts) {
  // The divide sits in a block that runs hot (and compiles) with valid
  // divisors before the zero arrives: the trap must come from the deopt
  // path with counters identical to pure interpretation.
  expectBodyAgrees("        li   $t0, 40\n"
                   "loop:\n"
                   "        addi $t0, $t0, -1\n"
                   "        div  $t1, $t0, $t0\n"
                   "        bgt  $t0, $zero, loop\n"
                   "        li   $v0, 0\n");
}

TEST(JitDifferential, LoadStoreWidthsAndSignExtension) {
  expectBodyAgrees("        li   $t0, 0x20000000\n"
                   "        li   $t1, -2\n"
                   "        sw   $t1, 0($t0)\n"
                   "        lb   $t2, 0($t0)\n"
                   "        lbu  $t3, 0($t0)\n"
                   "        lh   $t4, 0($t0)\n"
                   "        lhu  $t5, 0($t0)\n"
                   "        lw   $t6, 0($t0)\n"
                   "        sh   $t1, 4($t0)\n"
                   "        sb   $t1, 6($t0)\n"
                   "        lw   $v0, 4($t0)\n");
}

TEST(JitDifferential, UnalignedAndWrappingAccesses) {
  // Unaligned word/half accesses assemble bytes; addresses at the very top
  // of the 4 GiB space wrap byte-wise. The compiled fast path must bail to
  // the same byte-assembly the interpreter uses.
  expectBodyAgrees("        li   $t0, 0x20000001\n"
                   "        li   $t1, 0x12345678\n"
                   "        sw   $t1, 0($t0)\n"
                   "        lw   $t2, 0($t0)\n"
                   "        lh   $t3, 0($t0)\n"
                   "        sh   $t1, 8($t0)\n"
                   "        li   $t4, -2\n" // 0xFFFFFFFE: word wraps to 0/1
                   "        sw   $t1, 0($t4)\n"
                   "        lw   $t5, 0($t4)\n"
                   "        lb   $t6, 3($t4)\n"
                   "        lhu  $t7, 0($t4)\n"
                   "        li   $v0, 0\n");
}

TEST(JitDifferential, BranchesTakenAndNot) {
  expectBodyAgrees("        li   $t0, 3\n"
                   "        li   $t1, 5\n"
                   "        li   $v0, 0\n"
                   "        beq  $t0, $t1, skip1\n"
                   "        addi $v0, $v0, 1\n"
                   "skip1:\n"
                   "        bne  $t0, $t1, skip2\n"
                   "        addi $v0, $v0, 100\n"
                   "skip2:\n"
                   "        blt  $t0, $t1, skip3\n"
                   "        addi $v0, $v0, 100\n"
                   "skip3:\n"
                   "        bge  $t1, $t0, skip4\n"
                   "        addi $v0, $v0, 100\n"
                   "skip4:\n"
                   "        ble  $t1, $t0, skip5\n"
                   "        addi $v0, $v0, 1\n"
                   "skip5:\n"
                   "        bgt  $t0, $t1, skip6\n"
                   "        addi $v0, $v0, 1\n"
                   "skip6:\n");
}

TEST(JitDifferential, HotLoopWithMemoryTraffic) {
  expectBodyAgrees("        li   $t0, 0x20000000\n"
                   "        li   $t1, 0\n"
                   "        li   $t2, 2000\n"
                   "loop:\n"
                   "        sll  $t3, $t1, 2\n"
                   "        add  $t3, $t0, $t3\n"
                   "        sw   $t1, 0($t3)\n"
                   "        lw   $t4, 0($t3)\n"
                   "        addi $t1, $t1, 1\n"
                   "        blt  $t1, $t2, loop\n"
                   "        move $v0, $t1\n");
}

TEST(JitDifferential, JalrAndJrComputedTargets) {
  expectBodyAgrees("        li   $v0, 0\n"
                   "        jal  helper\n"
                   "        jal  helper\n"
                   "        jr   $ra\n"
                   "helper:\n"
                   "        addi $v0, $v0, 7\n"
                   "        jr   $ra\n");
}

TEST(JitDifferential, JrToBadAddressTrapsIdentically) {
  expectBodyAgrees("        li   $t0, 3\n" // unaligned, below text base
                   "        jr   $t0\n");
}

TEST(JitDifferential, JrMisalignedInTextTrapsIdentically) {
  expectBodyAgrees("        li   $t0, 0x00400002\n"
                   "        jr   $t0\n");
}

TEST(JitDifferential, JalrToBadAddressTrapsIdentically) {
  expectBodyAgrees("        li   $t0, 16\n"
                   "        jalr $t0\n");
}

TEST(JitDifferential, JrPastTextEndTrapsIdentically) {
  // In-range encoding, out-of-text target: the flat index lands past the
  // sentinel and must produce the interpreter's "pc out of text" trap.
  expectBodyAgrees("        li   $t0, 0x00500000\n"
                   "        jr   $t0\n");
}

TEST(JitDifferential, UnresolvedCallTrapsIdentically) {
  auto M = test::parseAsmOrDie("        .text\n"
                               "        .globl main\n"
                               "main:\n"
                               "        jal  nowhere\n"
                               "        jr   $ra\n");
  ASSERT_TRUE(M);
  expectEnginesAgree(*M);
}

TEST(JitDifferential, UnresolvedLaTrapsIdentically) {
  auto M = test::parseAsmOrDie("        .text\n"
                               "        .globl main\n"
                               "main:\n"
                               "        la   $t0, missing_sym\n"
                               "        jr   $ra\n");
  ASSERT_TRUE(M);
  expectEnginesAgree(*M);
}

TEST(JitDifferential, RuntimeCallsInsideHotLoop) {
  expectBodyAgrees("        li   $s0, 0\n"
                   "loop:\n"
                   "        move $a0, $s0\n"
                   "        jal  print_int\n"
                   "        addi $s0, $s0, 1\n"
                   "        li   $t0, 30\n"
                   "        blt  $s0, $t0, loop\n"
                   "        li   $a0, 65\n"
                   "        jal  print_char\n"
                   "        li   $v0, 0\n");
}

TEST(JitDifferential, MallocFreeRandExit) {
  expectBodyAgrees("        li   $a0, 64\n"
                   "        jal  malloc\n"
                   "        move $s0, $v0\n"
                   "        li   $t0, 99\n"
                   "        sw   $t0, 0($s0)\n"
                   "        move $a0, $s0\n"
                   "        jal  free\n"
                   "        li   $a0, 7\n"
                   "        jal  srand\n"
                   "        jal  rand\n"
                   "        li   $a0, 3\n"
                   "        jal  exit\n");
}

TEST(JitDifferential, FuelExhaustedMidLoopMatchesExactly) {
  // Fuel runs out partway through a compiled block: the block must retire
  // nothing and hand the tail to the interpreter, landing on the same
  // per-PC counts as pure interpretation for several boundary values.
  for (uint64_t Fuel : {1ull, 2ull, 7ull, 16ull, 17ull, 18ull, 19ull, 100ull}) {
    MachineOptions Base;
    Base.MaxInstrs = Fuel;
    expectBodyAgrees("        li   $t0, 0\n"
                     "loop:\n"
                     "        addi $t0, $t0, 1\n"
                     "        addi $t1, $t0, 2\n"
                     "        addi $t2, $t1, 3\n"
                     "        li   $t3, 1000\n"
                     "        blt  $t0, $t3, loop\n"
                     "        li   $v0, 0\n",
                     Base);
  }
}

TEST(JitDifferential, JumpIntoMiddleOfCompiledBlock) {
  // A branch targets an instruction that sits mid-block in another trace;
  // the target must execute as its own (also compiled) leader with correct
  // counts for the overlapping instructions.
  expectBodyAgrees("        li   $t0, 0\n"
                   "        li   $t1, 0\n"
                   "        j    entry\n"
                   "mid:\n"
                   "        addi $t1, $t1, 10\n"
                   "entry:\n"
                   "        addi $t0, $t0, 1\n"
                   "        li   $t2, 50\n"
                   "        blt  $t0, $t2, mid\n"
                   "        move $v0, $t1\n");
}

TEST(JitDifferential, PrefetchingLoadsCountIdentically) {
  MachineOptions Base;
  Base.PrefetchLoads.insert(InstrRef{0, 4}); // The lw inside the loop.
  expectBodyAgrees("        li   $t0, 0x20000000\n"
                   "        li   $t1, 0\n"
                   "loop:\n"
                   "        sll  $t2, $t1, 2\n"
                   "        add  $t2, $t0, $t2\n"
                   "        lw   $t3, 0($t2)\n"
                   "        addi $t1, $t1, 1\n"
                   "        li   $t4, 500\n"
                   "        blt  $t1, $t4, loop\n"
                   "        li   $v0, 0\n",
                   Base);
}

TEST(JitDifferential, PcaxArmedLoadsCountIdentically) {
  // The pcax policy consumes the loaded value (pointer scheme) and per-pc
  // runtime state; both engines must drive the shared engine through the
  // same hook sequence, including the useful/late settlement.
  MachineOptions Base;
  Base.PrefetchPolicy = prefetch::Policy::Pcax;
  Base.PrefetchLoads.insert(InstrRef{0, 4});
  Base.PrefetchHints[InstrRef{0, 4}] = {prefetch::PatternClass::Stride, 4};
  expectBodyAgrees("        li   $t0, 0x20000000\n"
                   "        li   $t1, 0\n"
                   "loop:\n"
                   "        sll  $t2, $t1, 2\n"
                   "        add  $t2, $t0, $t2\n"
                   "        lw   $t3, 0($t2)\n"
                   "        addi $t1, $t1, 1\n"
                   "        li   $t4, 500\n"
                   "        blt  $t1, $t4, loop\n"
                   "        li   $v0, 0\n",
                   Base);
}

TEST(JitDifferential, PcaxPointerChaseCountsIdentically) {
  // A descending in-memory chase: each loaded word is the next address. The
  // pointer scheme prefetches through the loaded value, which the JIT hands
  // to the engine from a register the interpreter never materializes the
  // same way.
  MachineOptions Base;
  Base.PrefetchPolicy = prefetch::Policy::Pcax;
  Base.PrefetchLoads.insert(InstrRef{0, 11});
  Base.PrefetchHints[InstrRef{0, 11}] = {prefetch::PatternClass::Pointer, 0};
  expectBodyAgrees("        li   $t0, 0x20000000\n"
                   "        li   $t1, 0\n"
                   "build:\n"
                   "        sll  $t2, $t1, 6\n"
                   "        add  $t2, $t0, $t2\n"
                   "        addi $t3, $t2, 64\n"
                   "        sw   $t3, 0($t2)\n"
                   "        addi $t1, $t1, 1\n"
                   "        li   $t4, 100\n"
                   "        blt  $t1, $t4, build\n"
                   "        move $t5, $t0\n"
                   "        li   $t6, 0\n"
                   "chase:\n"
                   "        lw   $t5, 0($t5)\n"
                   "        addi $t6, $t6, 1\n"
                   "        li   $t4, 99\n"
                   "        blt  $t6, $t4, chase\n"
                   "        li   $v0, 0\n",
                   Base);
}

TEST(JitDifferential, ArgsReachMain) {
  MachineOptions Base;
  Base.Args = {11, 22, 33, 44};
  expectBodyAgrees("        add  $t0, $a0, $a1\n"
                   "        add  $t0, $t0, $a2\n"
                   "        add  $v0, $t0, $a3\n");
}

TEST(JitDifferential, CompiledMinCWorkloadAtBothOptLevels) {
  const char *Src = "int sum;\n"
                    "int arr[256];\n"
                    "int main() {\n"
                    "  int i;\n"
                    "  int j;\n"
                    "  sum = 0;\n"
                    "  for (i = 0; i < 64; i = i + 1) {\n"
                    "    arr[i] = i * 3;\n"
                    "  }\n"
                    "  for (j = 0; j < 8; j = j + 1) {\n"
                    "    for (i = 0; i < 64; i = i + 1) {\n"
                    "      sum = sum + arr[i] % 7;\n"
                    "    }\n"
                    "  }\n"
                    "  print_int(sum);\n"
                    "  return sum % 251;\n"
                    "}\n";
  for (unsigned OptLevel : {0u, 1u}) {
    auto M = test::compileOrDie(Src, OptLevel);
    ASSERT_TRUE(M);
    expectEnginesAgree(*M);
  }
}

TEST(JitEngine, SelectionRespectsOptionsAndEnvironment) {
  if (!jit::available())
    GTEST_SKIP() << "no executable memory on this host";
  auto M = test::parseAsmOrDie("        .text\n        .globl main\nmain:\n"
                               "        li  $v0, 0\n        jr  $ra\n");
  ASSERT_TRUE(M);
  Layout L(*M);

  MachineOptions Opts;
  Opts.Engine = EngineKind::Interp;
  EXPECT_FALSE(Machine(*M, L, Opts).usingJit());
  Opts.Engine = EngineKind::Jit;
  EXPECT_TRUE(Machine(*M, L, Opts).usingJit());
  Opts.Engine = EngineKind::Auto;
  ::setenv("DLQ_JIT", "0", 1);
  EXPECT_FALSE(Machine(*M, L, Opts).usingJit());
  ::setenv("DLQ_JIT", "1", 1);
  EXPECT_TRUE(Machine(*M, L, Opts).usingJit());
  ::unsetenv("DLQ_JIT");

  // The paged backing and I-cache simulation rule the JIT out.
  Opts.Engine = EngineKind::Jit;
  Opts.MemBacking = Memory::Backing::Paged;
  EXPECT_FALSE(Machine(*M, L, Opts).usingJit());
  Opts.MemBacking = Memory::Backing::Auto;
  Opts.SimulateICache = true;
  EXPECT_FALSE(Machine(*M, L, Opts).usingJit());
}

TEST(JitEngine, EngineKindParses) {
  EXPECT_EQ(engineKindFromString("interp"), EngineKind::Interp);
  EXPECT_EQ(engineKindFromString("jit"), EngineKind::Jit);
  EXPECT_EQ(engineKindFromString("auto"), EngineKind::Auto);
  EXPECT_EQ(engineKindFromString(""), EngineKind::Auto);
}

TEST(JitEngine, CompilesBlocksAndReportsCounters) {
  if (!jit::available())
    GTEST_SKIP() << "no executable memory on this host";
  uint64_t Before =
      obs::counters().counter("sim.jit.blocks_compiled").value();
  auto M = test::parseAsmOrDie("        .text\n        .globl main\nmain:\n"
                               "        li   $t0, 0\n"
                               "loop:\n"
                               "        addi $t0, $t0, 1\n"
                               "        li   $t1, 200\n"
                               "        blt  $t0, $t1, loop\n"
                               "        li   $v0, 0\n"
                               "        jr   $ra\n");
  ASSERT_TRUE(M);
  Layout L(*M);
  MachineOptions Opts;
  Opts.Engine = EngineKind::Jit;
  Opts.JitHotThreshold = 1;
  Machine Mach(*M, L, Opts);
  ASSERT_TRUE(Mach.usingJit());
  RunResult R = Mach.run();
  EXPECT_EQ(R.Halt, HaltReason::Exited) << R.TrapMessage;
  uint64_t After = obs::counters().counter("sim.jit.blocks_compiled").value();
  EXPECT_GT(After, Before);
}

} // namespace
