//===- tests/LintTest.cpp - codegen lint suite tests -------------------------//
//
// Part of the delinq project test suite.
//
//===----------------------------------------------------------------------===//

#include "absint/Lint.h"
#include "workloads/Workloads.h"
#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::absint;

namespace {

std::vector<LintFinding> lintAsm(std::string_view Asm) {
  auto M = test::parseAsmOrDie(Asm);
  return lintModule(*M);
}

bool hasCheck(const std::vector<LintFinding> &Fs, LintCheck C) {
  for (const LintFinding &F : Fs)
    if (F.Check == C)
      return true;
  return false;
}

TEST(Lint, SpillLeakAcrossBranchJoinIsFlagged) {
  // The PR-3 miscompile class: a value spilled inside one branch arm and
  // reloaded after the join, so the other path reads a never-written slot.
  // Equivalent to reverting the genCondBranch spill-before-branch fix.
  std::vector<LintFinding> Fs = lintAsm(R"(
        .text
        .globl main
main:
        addi $sp, $sp, -8
        li   $t0, 5
        beq  $a0, $zero, Lelse
        sw   $t0, 0($sp)
        j    Ljoin
Lelse:
        li   $t0, 7
Ljoin:
        lw   $t1, 0($sp)
        move $v0, $t1
        addi $sp, $sp, 8
        jr   $ra
)");
  ASSERT_EQ(Fs.size(), 1u);
  EXPECT_EQ(Fs[0].Check, LintCheck::UseBeforeWrite);
  EXPECT_EQ(Fs[0].Function, "main");
  EXPECT_EQ(Fs[0].InstrIdx, 6u); // The lw after the join.
}

TEST(Lint, SpillWrittenOnBothArmsIsClean) {
  std::vector<LintFinding> Fs = lintAsm(R"(
        .text
        .globl main
main:
        addi $sp, $sp, -8
        li   $t0, 5
        beq  $a0, $zero, Lelse
        sw   $t0, 0($sp)
        j    Ljoin
Lelse:
        li   $t0, 7
        sw   $t0, 0($sp)
Ljoin:
        lw   $t1, 0($sp)
        move $v0, $t1
        addi $sp, $sp, 8
        jr   $ra
)");
  EXPECT_TRUE(Fs.empty());
}

TEST(Lint, CallClobberedTemporaryUseIsFlagged) {
  std::vector<LintFinding> Fs = lintAsm(R"(
        .text
        .globl helper
helper:
        jr   $ra
        .globl main
main:
        addi $sp, $sp, -8
        sw   $ra, 4($sp)
        li   $t3, 9
        jal  helper
        move $v0, $t3
        lw   $ra, 4($sp)
        addi $sp, $sp, 8
        jr   $ra
)");
  ASSERT_TRUE(hasCheck(Fs, LintCheck::CallClobberedUse));
  // Reading the call's result out of $v0 must NOT be flagged.
  std::vector<LintFinding> Clean = lintAsm(R"(
        .text
        .globl helper
helper:
        li   $v0, 1
        jr   $ra
        .globl main
main:
        addi $sp, $sp, -8
        sw   $ra, 4($sp)
        jal  helper
        move $t0, $v0
        lw   $ra, 4($sp)
        addi $sp, $sp, 8
        jr   $ra
)");
  EXPECT_FALSE(hasCheck(Clean, LintCheck::CallClobberedUse));
}

TEST(Lint, CalleeSavedClobberWithoutRestoreIsFlagged) {
  std::vector<LintFinding> Fs = lintAsm(R"(
        .text
        .globl f
f:
        li   $s0, 3
        move $v0, $s0
        jr   $ra
)");
  ASSERT_TRUE(hasCheck(Fs, LintCheck::CalleeSavedClobber));
  // The standard save/restore protocol is clean.
  std::vector<LintFinding> Clean = lintAsm(R"(
        .text
        .globl f
f:
        addi $sp, $sp, -8
        sw   $s0, 0($sp)
        li   $s0, 3
        move $v0, $s0
        lw   $s0, 0($sp)
        addi $sp, $sp, 8
        jr   $ra
)");
  EXPECT_TRUE(Clean.empty());
}

TEST(Lint, UnbalancedStackPointerAtReturnIsFlagged) {
  std::vector<LintFinding> Fs = lintAsm(R"(
        .text
        .globl f
f:
        addi $sp, $sp, -16
        jr   $ra
)");
  ASSERT_TRUE(hasCheck(Fs, LintCheck::UnbalancedSp));
}

TEST(Lint, GpAccessOutsideDataSectionIsFlagged) {
  // No .data at all: any gp-relative access is out of bounds.
  std::vector<LintFinding> Fs = lintAsm(R"(
        .text
        .globl f
f:
        lw   $v0, 4096($gp)
        jr   $ra
)");
  ASSERT_TRUE(hasCheck(Fs, LintCheck::GpOutOfData));
  // An access inside a declared global is clean.
  std::vector<LintFinding> Clean = lintAsm(R"(
        .data
g:      .word 1, 2, 3, 4
        .text
        .globl f
f:
        lw   $v0, -32768($gp)
        jr   $ra
)");
  EXPECT_FALSE(hasCheck(Clean, LintCheck::GpOutOfData));
}

TEST(Lint, UnreachableBlockIsFlagged) {
  std::vector<LintFinding> Fs = lintAsm(R"(
        .text
        .globl f
f:
        li   $v0, 1
        jr   $ra
        li   $v0, 2
        jr   $ra
)");
  ASSERT_TRUE(hasCheck(Fs, LintCheck::UnreachableBlock));
}

TEST(Lint, FindingsAreCappedPerCheck) {
  // Twenty unreachable blocks, MaxPerCheck 3: the report stays bounded.
  std::string Asm = "        .text\n        .globl f\nf:\n        jr   $ra\n";
  for (int I = 0; I != 20; ++I)
    Asm += "        li   $v0, 1\n        jr   $ra\n";
  auto M = test::parseAsmOrDie(Asm);
  LintOptions Opts;
  Opts.MaxPerCheck = 3;
  std::vector<LintFinding> Fs = lintModule(*M, Opts);
  EXPECT_EQ(Fs.size(), 3u);
}

TEST(Lint, CompiledProgramsAreCleanAtBothOptLevels) {
  const char *Source = R"(
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() {
  int a[8]; int i; int s;
  s = 0;
  for (i = 0; i < 8; i = i + 1) { a[i] = fib(i); }
  for (i = 0; i < 8; i = i + 1) { s = s + a[i]; }
  print_int(s);
  return 0;
}
)";
  for (unsigned Opt = 0; Opt <= 1; ++Opt) {
    auto M = test::compileOrDie(Source, Opt);
    std::vector<LintFinding> Fs = lintModule(*M);
    std::string All;
    for (const LintFinding &F : Fs)
      All += F.str() + "\n";
    EXPECT_TRUE(Fs.empty()) << "-O" << Opt << " findings:\n" << All;
  }
}

TEST(Lint, WorkloadRegistryIsCleanAtBothOptLevels) {
  // The CI gate in test form: every registry workload, both opt levels,
  // zero findings. Any miscompile pattern the lint can see fails here.
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    std::string Source = workloads::instantiate(W, W.Input1);
    for (unsigned Opt = 0; Opt <= 1; ++Opt) {
      auto M = test::compileOrDie(Source, Opt);
      std::vector<LintFinding> Fs = lintModule(*M);
      std::string All;
      for (const LintFinding &F : Fs)
        All += F.str() + "\n";
      EXPECT_TRUE(Fs.empty())
          << W.Name << " -O" << Opt << " findings:\n" << All;
    }
  }
}

} // namespace
