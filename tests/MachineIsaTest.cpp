//===- tests/MachineIsaTest.cpp - instruction-level executor semantics ----------//
//
// Exact semantics of each opcode family, exercised through tiny assembly
// programs whose exit code carries the observation. Parameterized tables
// cover the signed/unsigned and sign-extension corners.
//
//===----------------------------------------------------------------------===//

#include "masm/Parser.h"
#include "sim/Machine.h"
#include "support/Format.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::masm;
using namespace dlq::sim;

namespace {

/// Runs a main body (without prologue; must set $v0 and `jr $ra`).
int32_t runBody(const std::string &Body) {
  std::string Asm = "        .text\n        .globl main\nmain:\n" + Body +
                    "        jr   $ra\n";
  auto M = test::parseAsmOrDie(Asm);
  if (!M)
    return INT32_MIN;
  Layout L(*M);
  Machine Mach(*M, L, MachineOptions());
  RunResult R = Mach.run();
  EXPECT_EQ(R.Halt, HaltReason::Exited) << R.TrapMessage << "\n" << Asm;
  return R.ExitCode;
}

struct AluCase {
  const char *Name;
  std::string Body;
  int32_t Expected;
};

std::vector<AluCase> aluCases() {
  auto li2 = [](int32_t A, int32_t B) {
    return formatString("        li $t0, %d\n        li $t1, %d\n", A, B);
  };
  std::vector<AluCase> Cases;
  Cases.push_back({"AddWraps",
                   li2(INT32_MAX, 1) + "        add $v0, $t0, $t1\n",
                   INT32_MIN});
  Cases.push_back({"SubWraps",
                   li2(INT32_MIN, 1) + "        sub $v0, $t0, $t1\n",
                   INT32_MAX});
  Cases.push_back({"MulWraps",
                   li2(65536, 65536) + "        mul $v0, $t0, $t1\n", 0});
  Cases.push_back({"DivTruncatesTowardZero",
                   li2(-7, 2) + "        div $v0, $t0, $t1\n", -3});
  Cases.push_back({"RemSignFollowsDividend",
                   li2(-7, 2) + "        rem $v0, $t0, $t1\n", -1});
  Cases.push_back({"DivIntMinByMinusOne",
                   li2(INT32_MIN, -1) + "        div $v0, $t0, $t1\n",
                   INT32_MIN});
  Cases.push_back({"Nor", li2(0x0F, 0xF0) + "        nor $v0, $t0, $t1\n",
                   static_cast<int32_t>(~0xFFu)});
  Cases.push_back({"SltSigned", li2(-1, 1) + "        slt $v0, $t0, $t1\n",
                   1});
  Cases.push_back({"SltuUnsigned",
                   li2(-1, 1) + "        sltu $v0, $t0, $t1\n", 0});
  Cases.push_back({"SraKeepsSign",
                   li2(-64, 0) + "        sra $v0, $t0, 3\n", -8});
  Cases.push_back({"SrlZeroFills",
                   li2(-64, 0) + "        srl $v0, $t0, 28\n", 0xF});
  Cases.push_back({"SllvMasksShiftAmount",
                   li2(1, 33) + "        sllv $v0, $t0, $t1\n", 2});
  Cases.push_back({"SravVariable",
                   li2(-256, 4) + "        srav $v0, $t0, $t1\n", -16});
  Cases.push_back({"XoriZeroExtends",
                   li2(0, 0) + "        li $t0, 5\n"
                               "        xori $v0, $t0, 3\n",
                   6});
  Cases.push_back({"SltiuLogicalNotIdiom",
                   li2(0, 0) + "        sltiu $v0, $t0, 1\n", 1});
  Cases.push_back({"LuiShifts16", "        lui $v0, 5\n", 5 << 16});
  Cases.push_back({"MoveCopies",
                   li2(77, 0) + "        move $v0, $t0\n", 77});
  Cases.push_back({"ZeroRegisterIgnoresWrites",
                   "        li $zero, 99\n        move $v0, $zero\n", 0});
  return Cases;
}

} // namespace

class MachineAlu : public ::testing::TestWithParam<AluCase> {};

INSTANTIATE_TEST_SUITE_P(Ops, MachineAlu, ::testing::ValuesIn(aluCases()),
                         [](const auto &Info) { return Info.param.Name; });

TEST_P(MachineAlu, ExactResult) {
  EXPECT_EQ(runBody(GetParam().Body), GetParam().Expected);
}

//===----------------------------------------------------------------------===//
// Memory access widths and sign extension
//===----------------------------------------------------------------------===//

TEST(MachineMem, ByteSignExtension) {
  EXPECT_EQ(runBody("        li   $t0, -1\n"
                    "        sb   $t0, 0($sp)\n"
                    "        lb   $v0, 0($sp)\n"),
            -1);
  EXPECT_EQ(runBody("        li   $t0, -1\n"
                    "        sb   $t0, 0($sp)\n"
                    "        lbu  $v0, 0($sp)\n"),
            255);
}

TEST(MachineMem, HalfSignExtension) {
  EXPECT_EQ(runBody("        li   $t0, -2\n"
                    "        sh   $t0, 0($sp)\n"
                    "        lh   $v0, 0($sp)\n"),
            -2);
  EXPECT_EQ(runBody("        li   $t0, -2\n"
                    "        sh   $t0, 0($sp)\n"
                    "        lhu  $v0, 0($sp)\n"),
            65534);
}

TEST(MachineMem, NarrowStoreLeavesNeighbors) {
  EXPECT_EQ(runBody("        li   $t0, -1\n"
                    "        sw   $t0, 0($sp)\n"
                    "        li   $t1, 0\n"
                    "        sb   $t1, 1($sp)\n"
                    "        lw   $v0, 0($sp)\n"),
            static_cast<int32_t>(0xFFFF00FF));
}

//===----------------------------------------------------------------------===//
// Branches
//===----------------------------------------------------------------------===//

namespace {

struct BranchCase {
  const char *Name;
  const char *Op;
  int32_t A, B;
  bool Taken;
};

std::vector<BranchCase> branchCases() {
  return {
      {"BeqTaken", "beq", 5, 5, true},
      {"BeqNotTaken", "beq", 5, 6, false},
      {"BneTaken", "bne", 5, 6, true},
      {"BltSignedTaken", "blt", -1, 0, true},
      {"BltSignedNotTaken", "blt", 0, -1, false},
      {"BgeEqualTaken", "bge", 3, 3, true},
      {"BleTaken", "ble", 2, 3, true},
      {"BgtNotTakenOnEqual", "bgt", 3, 3, false},
  };
}

} // namespace

class MachineBranch : public ::testing::TestWithParam<BranchCase> {};

INSTANTIATE_TEST_SUITE_P(Ops, MachineBranch,
                         ::testing::ValuesIn(branchCases()),
                         [](const auto &Info) { return Info.param.Name; });

TEST_P(MachineBranch, TakenOrNot) {
  const BranchCase &C = GetParam();
  std::string Body = formatString("        li   $t0, %d\n"
                                  "        li   $t1, %d\n"
                                  "        li   $v0, 0\n"
                                  "        %s $t0, $t1, Ltaken\n"
                                  "        jr   $ra\n"
                                  "Ltaken:\n"
                                  "        li   $v0, 1\n",
                                  C.A, C.B, C.Op);
  EXPECT_EQ(runBody(Body), C.Taken ? 1 : 0);
}

//===----------------------------------------------------------------------===//
// Indirect calls and prefetching
//===----------------------------------------------------------------------===//

TEST(MachineCalls, JalrThroughFunctionAddress) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl target
target:
        li $v0, 42
        jr $ra
        .globl main
main:
        addi $sp, $sp, -8
        sw   $ra, 4($sp)
        la   $t0, target
        jalr $t0
        lw   $ra, 4($sp)
        addi $sp, $sp, 8
        jr   $ra
)");
  ASSERT_TRUE(M);
  Layout L(*M);
  Machine Mach(*M, L, MachineOptions());
  RunResult R = Mach.run();
  ASSERT_EQ(R.Halt, HaltReason::Exited) << R.TrapMessage;
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(MachinePrefetch, NextLinePrefetchHalvesScanMisses) {
  const char *ScanAsm = R"(
        .data
arr:    .space 65536
        .text
        .globl main
main:
        li   $t0, 0
        li   $t1, 65536
        la   $t2, arr
Lhead:
        add  $t3, $t2, $t0
        lw   $t4, 0($t3)
        addi $t0, $t0, 32
        blt  $t0, $t1, Lhead
        li   $v0, 0
        jr   $ra
)";
  auto M = test::parseAsmOrDie(ScanAsm);
  ASSERT_TRUE(M);
  Layout L(*M);

  MachineOptions Plain;
  Machine M1(*M, L, Plain);
  RunResult R1 = M1.run();
  ASSERT_EQ(R1.Halt, HaltReason::Exited);
  EXPECT_EQ(R1.LoadMisses, 65536u / 32u) << "one miss per block";

  MachineOptions WithPf = Plain;
  WithPf.PrefetchLoads.insert(InstrRef{0, 4}); // The lw in the loop.
  Machine M2(*M, L, WithPf);
  RunResult R2 = M2.run();
  ASSERT_EQ(R2.Halt, HaltReason::Exited);
  EXPECT_GT(R2.PrefetchesIssued, 0u);
  // Next-line prefetch on a block-strided scan: all but the first block
  // arrive early.
  EXPECT_LE(R2.LoadMisses, 2u) << "prefetching should hide the scan";
  EXPECT_EQ(R2.ExitCode, R1.ExitCode) << "prefetching never changes results";
}

TEST(MachinePrefetch, PrefetchOnColdLoadDoesNothingUseful) {
  const char *OnceAsm = R"(
        .data
g:      .word 7
        .text
        .globl main
main:
        la  $t0, g
        lw  $v0, 0($t0)
        jr  $ra
)";
  auto M = test::parseAsmOrDie(OnceAsm);
  ASSERT_TRUE(M);
  Layout L(*M);
  MachineOptions Opts;
  Opts.PrefetchLoads.insert(InstrRef{0, 1});
  Machine Mach(*M, L, Opts);
  RunResult R = Mach.run();
  ASSERT_EQ(R.Halt, HaltReason::Exited);
  EXPECT_EQ(R.PrefetchesIssued, 1u);
  EXPECT_EQ(R.LoadMisses, 1u) << "the demand miss still happens";
}
