//===- tests/MasmTest.cpp - assembly IR, parser, printer tests ----------------//

#include "masm/Module.h"
#include "masm/Opcode.h"
#include "masm/Parser.h"
#include "masm/Printer.h"
#include "masm/Register.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::masm;

TEST(Register, Names) {
  EXPECT_EQ(regName(Reg::SP), "$sp");
  EXPECT_EQ(regName(Reg::Zero), "$zero");
  EXPECT_EQ(regName(Reg::T7), "$t7");
}

TEST(Register, ParseNames) {
  EXPECT_EQ(parseRegName("$sp"), Reg::SP);
  EXPECT_EQ(parseRegName("sp"), Reg::SP);
  EXPECT_EQ(parseRegName("$29"), Reg::SP);
  EXPECT_EQ(parseRegName("$v0"), Reg::V0);
  EXPECT_FALSE(parseRegName("$bogus").has_value());
  EXPECT_FALSE(parseRegName("$32").has_value());
  EXPECT_FALSE(parseRegName("").has_value());
}

TEST(Register, BasicRegPredicates) {
  EXPECT_TRUE(isBasicReg(Reg::SP));
  EXPECT_TRUE(isBasicReg(Reg::GP));
  EXPECT_TRUE(isBasicReg(Reg::A0));
  EXPECT_TRUE(isBasicReg(Reg::A3));
  EXPECT_TRUE(isBasicReg(Reg::V0));
  EXPECT_FALSE(isBasicReg(Reg::T0));
  EXPECT_FALSE(isBasicReg(Reg::S5));
  EXPECT_FALSE(isBasicReg(Reg::RA));
}

TEST(Register, SavedPredicates) {
  EXPECT_TRUE(isCallerSaved(Reg::T0));
  EXPECT_TRUE(isCallerSaved(Reg::V0));
  EXPECT_TRUE(isCallerSaved(Reg::A2));
  EXPECT_TRUE(isCallerSaved(Reg::RA));
  EXPECT_FALSE(isCallerSaved(Reg::S0));
  EXPECT_TRUE(isCalleeSaved(Reg::SP));
  EXPECT_TRUE(isCalleeSaved(Reg::GP));
  EXPECT_FALSE(isCalleeSaved(Reg::T9));
}

TEST(Opcode, NamesRoundTrip) {
  for (unsigned I = 0; I != NumOpcodes; ++I) {
    Opcode Op = static_cast<Opcode>(I);
    EXPECT_EQ(parseOpcodeName(opcodeName(Op)), Op);
  }
}

TEST(Opcode, Traits) {
  EXPECT_TRUE(isLoad(Opcode::Lw));
  EXPECT_TRUE(isLoad(Opcode::Lbu));
  EXPECT_FALSE(isLoad(Opcode::Sw));
  EXPECT_TRUE(isStore(Opcode::Sb));
  EXPECT_TRUE(isCondBranch(Opcode::Bgt));
  EXPECT_FALSE(isCondBranch(Opcode::J));
  EXPECT_TRUE(isCall(Opcode::Jal));
  EXPECT_TRUE(isCall(Opcode::Jalr));
  EXPECT_EQ(accessSize(Opcode::Lw), 4u);
  EXPECT_EQ(accessSize(Opcode::Lh), 2u);
  EXPECT_EQ(accessSize(Opcode::Sb), 1u);
  EXPECT_EQ(accessSize(Opcode::Add), 0u);
  EXPECT_TRUE(writesRd(Opcode::La));
  EXPECT_FALSE(writesRd(Opcode::Sw));
  EXPECT_TRUE(readsRt(Opcode::Sw));
  EXPECT_FALSE(readsRt(Opcode::Lw));
}

static const char *TinyProgram = R"(
        .data
buf:    .space 64
        .gvar buf 64 array noptr
vals:   .word 7, -3
        .gvar vals 8 array noptr
        .text
        .globl main
main:
        addi $sp, $sp, -16
        sw   $ra, 12($sp)
        .var 0 4 scalar noptr
        li   $t0, 5
        sw   $t0, 0($sp)
        la   $t1, vals
        lw   $t2, 4($t1)
        beq  $t2, $zero, Ldone
        lw   $t3, 0($sp)
Ldone:
        lw   $ra, 12($sp)
        addi $sp, $sp, 16
        jr   $ra
)";

TEST(Parser, ParsesTinyProgram) {
  auto M = test::parseAsmOrDie(TinyProgram);
  ASSERT_TRUE(M);
  EXPECT_EQ(M->functions().size(), 1u);
  EXPECT_EQ(M->globals().size(), 2u);
  const Function *Main = M->lookupFunction("main");
  ASSERT_TRUE(Main);
  EXPECT_EQ(Main->size(), 11u);
  EXPECT_EQ(M->countLoads(), 3u);

  const Global *Vals = M->lookupGlobal("vals");
  ASSERT_TRUE(Vals);
  EXPECT_EQ(Vals->Size, 8u);
  ASSERT_EQ(Vals->Init.size(), 8u);
  EXPECT_EQ(Vals->Init[0], 7u);

  // Branch target resolved.
  const Instr &Branch = Main->instrs()[6];
  EXPECT_EQ(Branch.Op, Opcode::Beq);
  EXPECT_EQ(Branch.TargetIndex, 8u);
}

TEST(Parser, TypeDirectives) {
  auto M = test::parseAsmOrDie(TinyProgram);
  ASSERT_TRUE(M);
  const VarType *BufTy = M->typeInfo().lookupGlobal("buf");
  ASSERT_TRUE(BufTy);
  EXPECT_EQ(BufTy->Kind, VarKind::Array);
  EXPECT_FALSE(BufTy->IsPointer);

  const FunctionTypeInfo *FTI = M->typeInfo().lookupFunction("main");
  ASSERT_TRUE(FTI);
  ASSERT_EQ(FTI->Vars.size(), 1u);
  auto Resolved = FTI->resolve(0);
  ASSERT_TRUE(Resolved.has_value());
  EXPECT_EQ(Resolved->Kind, VarKind::Scalar);
}

TEST(Parser, ReportsUnknownMnemonic) {
  auto R = parseAssembly(".text\n.globl f\nf:\n  frobnicate $t0\n");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.diagText().find("unknown mnemonic"), std::string::npos);
}

TEST(Parser, ReportsUnresolvedLabel) {
  auto R = parseAssembly(".text\n.globl f\nf:\n  j nowhere\n");
  EXPECT_FALSE(R.ok());
}

TEST(Parser, ReportsBadRegister) {
  auto R = parseAssembly(".text\n.globl f\nf:\n  add $t0, $qq, $t1\n");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.diagText().find("expected register"), std::string::npos);
}

TEST(Parser, ReportsInstructionOutsideFunction) {
  auto R = parseAssembly(".text\n  add $t0, $t1, $t2\n");
  EXPECT_FALSE(R.ok());
}

TEST(Printer, RoundTrip) {
  auto M1 = test::parseAsmOrDie(TinyProgram);
  ASSERT_TRUE(M1);
  std::string Text1 = printModule(*M1);
  auto R2 = parseAssembly(Text1);
  ASSERT_TRUE(R2.ok()) << R2.diagText() << "\nprinted:\n" << Text1;
  std::string Text2 = printModule(*R2.M);
  EXPECT_EQ(Text1, Text2) << "printer output is not a fixed point";
}

TEST(Printer, InstrForms) {
  Instr I;
  I.Op = Opcode::Lw;
  I.Rd = Reg::T2;
  I.Rs = Reg::SP;
  I.Imm = 8;
  EXPECT_EQ(printInstr(I), "lw    $t2, 8($sp)");

  Instr S;
  S.Op = Opcode::Sw;
  S.Rt = Reg::T1;
  S.Rs = Reg::GP;
  S.Imm = -4;
  EXPECT_EQ(printInstr(S), "sw    $t1, -4($gp)");

  Instr B;
  B.Op = Opcode::Bne;
  B.Rs = Reg::A0;
  B.Rt = Reg::Zero;
  B.Sym = "L1";
  EXPECT_EQ(printInstr(B), "bne   $a0, $zero, L1");
}

TEST(Layout, AssignsAddresses) {
  auto M = test::parseAsmOrDie(TinyProgram);
  ASSERT_TRUE(M);
  Layout L(*M);

  EXPECT_EQ(L.functionEntry(0), LayoutConstants::TextBase);
  EXPECT_EQ(L.pcOf(InstrRef{0, 3}), LayoutConstants::TextBase + 12);

  InstrRef Ref;
  ASSERT_TRUE(L.refOf(LayoutConstants::TextBase + 12, Ref));
  EXPECT_EQ(Ref.FuncIdx, 0u);
  EXPECT_EQ(Ref.InstrIdx, 3u);
  EXPECT_FALSE(L.refOf(LayoutConstants::TextBase - 4, Ref));

  uint32_t BufAddr = L.globalAddress("buf");
  uint32_t ValsAddr = L.globalAddress("vals");
  EXPECT_EQ(BufAddr, LayoutConstants::DataBase);
  EXPECT_EQ(ValsAddr, BufAddr + 64);

  uint32_t Off = 0;
  const Global *G = L.globalAt(ValsAddr + 5, Off);
  ASSERT_TRUE(G);
  EXPECT_EQ(G->Name, "vals");
  EXPECT_EQ(Off, 5u);
  EXPECT_EQ(L.globalAt(L.dataEnd() + 100, Off), nullptr);
}

TEST(Module, CountsAndLookups) {
  Module M;
  Function &F = M.addFunction("f");
  Instr I;
  I.Op = Opcode::Lw;
  F.append(I);
  F.append(I);
  I.Op = Opcode::Sw;
  F.append(I);
  EXPECT_EQ(M.totalInstrs(), 3u);
  EXPECT_EQ(M.countLoads(), 2u);
  EXPECT_EQ(M.functionIndex("f"), 0u);
  EXPECT_EQ(M.functionIndex("g"), InvalidIndex);
}
