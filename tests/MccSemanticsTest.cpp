//===- tests/MccSemanticsTest.cpp - language-lawyer tests for MinC --------------//
//
// Precedence, associativity, conversions, aggregate layout and diagnostic
// coverage beyond the execution smoke tests in MccTest.cpp.
//
//===----------------------------------------------------------------------===//

#include "mcc/Frontend.h"
#include "support/Format.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::mcc;

namespace {

int32_t evalExpr(const std::string &Expr) {
  std::string Program =
      formatString("int main() { print_int(%s); return 0; }", Expr.c_str());
  sim::RunResult R = test::compileAndRun(Program, 0);
  int32_t Value = 0;
  std::sscanf(R.Output.c_str(), "%d", &Value);
  return Value;
}

} // namespace

//===----------------------------------------------------------------------===//
// Precedence and associativity
//===----------------------------------------------------------------------===//

struct PrecCase {
  const char *Name;
  const char *Expr;
  int32_t Expected;
};

class Precedence : public ::testing::TestWithParam<PrecCase> {};

INSTANTIATE_TEST_SUITE_P(
    Matrix, Precedence,
    ::testing::Values(
        PrecCase{"MulOverAdd", "2 + 3 * 4", 14},
        PrecCase{"ShiftBelowAdd", "1 << 2 + 1", 8},
        PrecCase{"CompareBelowShift", "1 << 2 < 8", 1},
        PrecCase{"AndBelowCompare", "3 & 2 == 2", 1},
        PrecCase{"XorBetweenAndOr", "1 | 2 ^ 2 & 3", 1},
        PrecCase{"LogicalOrLowest", "0 && 1 || 1", 1},
        PrecCase{"SubLeftAssoc", "10 - 4 - 3", 3},
        PrecCase{"DivLeftAssoc", "100 / 5 / 2", 10},
        PrecCase{"ShiftLeftAssoc", "1 << 2 << 3", 32},
        PrecCase{"UnaryBindsTighter", "-2 * 3", -6},
        PrecCase{"NotOverCompare", "!0 == 1", 1},
        PrecCase{"TernaryRightAssoc", "1 ? 2 : 0 ? 3 : 4", 2},
        PrecCase{"ParensOverride", "(2 + 3) * 4", 20},
        PrecCase{"RemSamePrecAsMul", "7 % 3 * 2", 2},
        PrecCase{"BitNotOnce", "~~5", 5}),
    [](const auto &Info) { return Info.param.Name; });

TEST_P(Precedence, MatchesC) {
  EXPECT_EQ(evalExpr(GetParam().Expr), GetParam().Expected)
      << GetParam().Expr;
}

//===----------------------------------------------------------------------===//
// Conversions and layout
//===----------------------------------------------------------------------===//

TEST(MccSemantics, CharTruncatesOnStore) {
  EXPECT_EQ(evalExpr("0"), 0);
  sim::RunResult R = test::compileAndRun(
      "char c; int main() { c = 300; return c; }", 0);
  EXPECT_EQ(R.ExitCode, 44) << "300 mod 256 = 44, char stores truncate";
}

TEST(MccSemantics, CharIsSigned) {
  sim::RunResult R = test::compileAndRun(
      "char c; int main() { c = 200; return c; }", 0);
  EXPECT_EQ(R.ExitCode, 200 - 256) << "lb sign-extends";
}

TEST(MccSemantics, StructPadding) {
  auto R = parseMinC("struct S { char a; char b; int c; char d; };"
                     "int main() { return sizeof(struct S); }");
  ASSERT_TRUE(R.ok()) << R.diagText();
  StructDecl *S = R.Unit->Types.lookupStruct("S");
  ASSERT_TRUE(S);
  EXPECT_EQ(S->Fields[0].Offset, 0u);
  EXPECT_EQ(S->Fields[1].Offset, 1u);
  EXPECT_EQ(S->Fields[2].Offset, 4u) << "int aligns to 4";
  EXPECT_EQ(S->Fields[3].Offset, 8u);
  EXPECT_EQ(S->Size, 12u) << "tail padding to alignment";
}

TEST(MccSemantics, NestedStructPointers) {
  sim::RunResult R = test::compileAndRun(
      "struct Inner { int v; };"
      "struct Outer { int tag; struct Inner *in; };"
      "int main() {"
      "  struct Inner i; struct Outer o;"
      "  i.v = 41; o.tag = 1; o.in = &i;"
      "  o.in->v = o.in->v + o.tag;"
      "  return i.v; }",
      0);
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(MccSemantics, ArrayDimensionsAreConstExprs) {
  sim::RunResult R = test::compileAndRun(
      "int a[4 * 8 + 2];"
      "int main() { return sizeof(int) * 0 + 34; }", 0);
  EXPECT_EQ(R.ExitCode, 34);
}

TEST(MccSemantics, MultiDeclarators) {
  sim::RunResult R = test::compileAndRun(
      "int x = 3, y = 4;"
      "int main() { int a, b; a = x; b = y; return a * 10 + b; }", 0);
  EXPECT_EQ(R.ExitCode, 34);
}

TEST(MccSemantics, GlobalConstInitializers) {
  sim::RunResult R = test::compileAndRun(
      "int a = 5 + 3;"
      "int b = 1 << 4;"
      "int c = -(2 * 3);"
      "int main() { return a + b + c; }",
      0);
  EXPECT_EQ(R.ExitCode, 8 + 16 - 6);
}

TEST(MccSemantics, VoidPointerInterchange) {
  sim::RunResult R = test::compileAndRun(
      "int main() {"
      "  int *p; void *v;"
      "  p = (int*)malloc(8);"
      "  *p = 7;"
      "  v = (void*)p;"
      "  free(v);"
      "  return 7; }",
      0);
  EXPECT_EQ(R.ExitCode, 7);
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

struct DiagCase {
  const char *Name;
  const char *Source;
  const char *MessagePart;
};

class Diagnostics : public ::testing::TestWithParam<DiagCase> {};

INSTANTIATE_TEST_SUITE_P(
    Errors, Diagnostics,
    ::testing::Values(
        DiagCase{"AssignToRValue", "int main() { 1 = 2; return 0; }",
                 "not assignable"},
        DiagCase{"AddressOfLiteral", "int main() { int *p; p = &5; return 0; }",
                 "address"},
        DiagCase{"StructAssignment",
                 "struct S { int x; };"
                 "int main() { struct S a; struct S b; a = b; return 0; }",
                 "aggregate"},
        DiagCase{"RedefinedVariable",
                 "int main() { int x; int x; return 0; }", "redefinition"},
        DiagCase{"RedefinedFunction", "int f() { return 0; } int f() { return 1; }",
                 "redefinition"},
        DiagCase{"VoidVariable", "int main() { void v; return 0; }", "void"},
        DiagCase{"IncompleteStructField",
                 "struct A { struct B inner; };", "incomplete"},
        DiagCase{"NegativeArraySize", "int a[0]; int main() { return 0; }",
                 "positive"},
        DiagCase{"TooManyParams",
                 "int f(int a, int b, int c, int d, int e) { return 0; }"
                 "int main() { return 0; }",
                 "at most 4"},
        DiagCase{"BreakOutsideLoop", "int main() { break; return 0; }",
                 "break"},
        DiagCase{"ReturnValueFromVoid",
                 "void f() { return 3; } int main() { return 0; }",
                 "void function"},
        DiagCase{"PointerTimesInt",
                 "int main() { int *p; int x; x = p * 2; return x; }",
                 "invalid operands"},
        DiagCase{"NonConstGlobalInit",
                 "int g = 5; int h = g; int main() { return h; }",
                 "constant"}),
    [](const auto &Info) { return Info.param.Name; });

TEST_P(Diagnostics, RejectedWithMessage) {
  const DiagCase &C = GetParam();
  mcc::CompileResult R = mcc::compile(C.Source);
  EXPECT_FALSE(R.ok()) << C.Source;
  EXPECT_NE(R.Errors.find(C.MessagePart), std::string::npos)
      << "diagnostics were:\n"
      << R.Errors;
}

//===----------------------------------------------------------------------===//
// Register promotion specifics (-O1)
//===----------------------------------------------------------------------===//

TEST(MccO1, AddressTakenVariablesStayInMemory) {
  // &x forces x to a stack slot even at -O1; the pointer write must be
  // visible through direct reads of x.
  sim::RunResult R = test::compileAndRun("int main() {"
                                         "  int x; int *p;"
                                         "  x = 1; p = &x; *p = 42;"
                                         "  return x; }",
                                         1);
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(MccO1, PromotionSurvivesCalls) {
  // Promoted locals live in callee-saved registers: values must survive
  // deep call chains that clobber everything caller-saved.
  sim::RunResult R = test::compileAndRun(
      "int chew(int n) {"
      "  int a; int b; int c;"
      "  if (n == 0) return 1;"
      "  a = n * 3; b = a - n; c = chew(n - 1);"
      "  return a - b + c; }"
      "int main() {"
      "  int keep; int sum; int i;"
      "  keep = 1000; sum = 0;"
      "  for (i = 0; i < 4; i = i + 1) sum = sum + chew(3);"
      "  return keep + sum; }",
      1);
  // chew(3): a-b+chew(2) = n + chew(n-1) telescopes to 3+2+1+1 = 7.
  EXPECT_EQ(R.ExitCode, 1000 + 4 * 7);
}

TEST(MccO1, FoldsConstantConditions) {
  auto M1 = test::compileOrDie("int main() { return 2 * 3 + (4 << 2); }", 1);
  ASSERT_TRUE(M1);
  // At -O1 the whole expression folds to a single li.
  unsigned LiCount = 0;
  bool SawArith = false;
  for (const auto &I : M1->lookupFunction("main")->instrs()) {
    LiCount += I.Op == masm::Opcode::Li;
    SawArith |= I.Op == masm::Opcode::Mul || I.Op == masm::Opcode::Sllv ||
                I.Op == masm::Opcode::Add;
  }
  EXPECT_GE(LiCount, 1u);
  EXPECT_FALSE(SawArith) << "constant expression should fold at -O1";
}
