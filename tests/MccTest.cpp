//===- tests/MccTest.cpp - MinC compiler end-to-end tests ----------------------//
//
// Most tests compile a program and execute it on the simulator, checking the
// observable result — the strongest statement that lexer, parser, sema and
// codegen agree. Each runs at both -O0 and -O1 (parameterized), which pins
// down that register promotion preserves semantics.
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"
#include "masm/Printer.h"
#include "mcc/Compiler.h"
#include "mcc/Frontend.h"
#include "mcc/Lexer.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::mcc;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, BasicTokens) {
  auto Toks = tokenize("int x = 0x1F + 'a';");
  ASSERT_GE(Toks.size(), 8u);
  EXPECT_EQ(Toks[0].Kind, TokKind::KwInt);
  EXPECT_EQ(Toks[1].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[1].Text, "x");
  EXPECT_EQ(Toks[2].Kind, TokKind::Assign);
  EXPECT_EQ(Toks[3].Kind, TokKind::IntLit);
  EXPECT_EQ(Toks[3].IntValue, 31);
  EXPECT_EQ(Toks[4].Kind, TokKind::Plus);
  EXPECT_EQ(Toks[5].IntValue, 'a');
}

TEST(Lexer, CommentsSkipped) {
  auto Toks = tokenize("a // line\n /* block\n */ b");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Text, "a");
  EXPECT_EQ(Toks[1].Text, "b");
  EXPECT_EQ(Toks[1].Line, 3u);
}

TEST(Lexer, TwoCharOperators) {
  auto Toks = tokenize("-> == != <= >= << >> && ||");
  TokKind Expected[] = {TokKind::Arrow,     TokKind::EqEq,  TokKind::BangEq,
                        TokKind::LessEq,    TokKind::GreaterEq, TokKind::Shl,
                        TokKind::Shr,       TokKind::AmpAmp, TokKind::PipePipe,
                        TokKind::Eof};
  ASSERT_EQ(Toks.size(), 10u);
  for (size_t I = 0; I != 10; ++I)
    EXPECT_EQ(Toks[I].Kind, Expected[I]) << "token " << I;
}

TEST(Lexer, ReportsBadChar) {
  auto Toks = tokenize("int $x;");
  bool SawError = false;
  for (const Token &T : Toks)
    SawError |= T.Kind == TokKind::Error;
  EXPECT_TRUE(SawError);
}

//===----------------------------------------------------------------------===//
// Frontend diagnostics
//===----------------------------------------------------------------------===//

TEST(Frontend, UndeclaredIdentifier) {
  auto R = parseMinC("int main() { return nope; }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.diagText().find("undeclared"), std::string::npos);
}

TEST(Frontend, ArgCountMismatch) {
  auto R = parseMinC("int f(int a) { return a; } int main() { return f(); }");
  EXPECT_FALSE(R.ok());
}

TEST(Frontend, BadFieldName) {
  auto R = parseMinC(
      "struct P { int x; }; int main() { struct P p; return p.y; }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.diagText().find("no field 'y'"), std::string::npos);
}

TEST(Frontend, DerefNonPointer) {
  auto R = parseMinC("int main() { int x; return *x; }");
  EXPECT_FALSE(R.ok());
}

TEST(Frontend, StructLayout) {
  auto R = parseMinC(
      "struct N { char c; int v; struct N *next; };"
      "int main() { return sizeof(struct N); }");
  ASSERT_TRUE(R.ok()) << R.diagText();
  StructDecl *S = R.Unit->Types.lookupStruct("N");
  ASSERT_TRUE(S);
  EXPECT_EQ(S->Fields[0].Offset, 0u);
  EXPECT_EQ(S->Fields[1].Offset, 4u) << "int field aligned to 4";
  EXPECT_EQ(S->Fields[2].Offset, 8u);
  EXPECT_EQ(S->Size, 12u);
}

//===----------------------------------------------------------------------===//
// Execution semantics at -O0 and -O1
//===----------------------------------------------------------------------===//

class MccExec : public ::testing::TestWithParam<unsigned> {
protected:
  int32_t runProgram(const std::string &Source) {
    sim::RunResult R = test::compileAndRun(Source, GetParam());
    return R.ExitCode;
  }
  std::string runOutput(const std::string &Source) {
    sim::RunResult R = test::compileAndRun(Source, GetParam());
    return R.Output;
  }
};

INSTANTIATE_TEST_SUITE_P(OptLevels, MccExec, ::testing::Values(0u, 1u),
                         [](const auto &Info) {
                           return "O" + std::to_string(Info.param);
                         });

TEST_P(MccExec, ReturnConstant) {
  EXPECT_EQ(runProgram("int main() { return 42; }"), 42);
}

TEST_P(MccExec, Arithmetic) {
  EXPECT_EQ(runProgram("int main() { return (3 + 4) * 5 - 36 / 6 % 4; }"),
            (3 + 4) * 5 - 36 / 6 % 4);
}

TEST_P(MccExec, BitwiseAndShifts) {
  EXPECT_EQ(runProgram("int main() { int a; int b; a = 0xF0; b = 0x1F;"
                       "  return ((a & b) | (a ^ 3)) + (1 << 6) + (256 >> 2); }"),
            ((0xF0 & 0x1F) | (0xF0 ^ 3)) + (1 << 6) + (256 >> 2));
}

TEST_P(MccExec, Comparisons) {
  EXPECT_EQ(runProgram("int main() {"
                       "  int r; r = 0;"
                       "  if (1 < 2) r = r + 1;"
                       "  if (2 <= 2) r = r + 10;"
                       "  if (3 > 2) r = r + 100;"
                       "  if (2 >= 3) r = r + 1000;"
                       "  if (5 == 5) r = r + 10000;"
                       "  if (5 != 5) r = r + 100000;"
                       "  return r; }"),
            10111);
}

TEST_P(MccExec, NegativeNumbers) {
  EXPECT_EQ(runProgram("int main() { int x; x = -7; return -x * 3 + (-2); }"),
            19);
}

TEST_P(MccExec, LogicalOperators) {
  EXPECT_EQ(runProgram("int main() {"
                       "  int a; int r; a = 5; r = 0;"
                       "  if (a > 0 && a < 10) r = r + 1;"
                       "  if (a < 0 || a > 4) r = r + 10;"
                       "  if (!(a == 5)) r = r + 100;"
                       "  return r + (a && 0) + (0 || 7 != 0); }"),
            12);
}

TEST_P(MccExec, ShortCircuitSideEffects) {
  // The right operand must not evaluate when the left decides.
  EXPECT_EQ(runProgram("int g;"
                       "int bump() { g = g + 1; return 1; }"
                       "int main() {"
                       "  g = 0;"
                       "  if (0 && bump()) { }"
                       "  if (1 || bump()) { }"
                       "  return g; }"),
            0);
}

TEST_P(MccExec, TernaryOperator) {
  EXPECT_EQ(runProgram("int main() { int x; x = 3;"
                       "  return (x > 2 ? 10 : 20) + (x > 5 ? 1 : 2); }"),
            12);
}

TEST_P(MccExec, WhileLoopSum) {
  EXPECT_EQ(runProgram("int main() {"
                       "  int i; int sum; i = 1; sum = 0;"
                       "  while (i <= 100) { sum = sum + i; i = i + 1; }"
                       "  return sum; }"),
            5050);
}

TEST_P(MccExec, ForLoopWithBreakContinue) {
  EXPECT_EQ(runProgram("int main() {"
                       "  int i; int sum; sum = 0;"
                       "  for (i = 0; i < 100; i = i + 1) {"
                       "    if (i % 2 == 0) continue;"
                       "    if (i > 10) break;"
                       "    sum = sum + i;"
                       "  }"
                       "  return sum; }"),
            1 + 3 + 5 + 7 + 9);
}

TEST_P(MccExec, NestedLoops) {
  EXPECT_EQ(runProgram("int main() {"
                       "  int i; int j; int c; c = 0;"
                       "  for (i = 0; i < 10; i = i + 1)"
                       "    for (j = 0; j < i; j = j + 1)"
                       "      c = c + 1;"
                       "  return c; }"),
            45);
}

TEST_P(MccExec, FunctionCalls) {
  EXPECT_EQ(runProgram("int add3(int a, int b, int c) { return a + b + c; }"
                       "int main() { return add3(1, add3(2, 3, 4), 5); }"),
            15);
}

TEST_P(MccExec, Recursion) {
  EXPECT_EQ(runProgram("int fib(int n) {"
                       "  if (n < 2) return n;"
                       "  return fib(n - 1) + fib(n - 2); }"
                       "int main() { return fib(12); }"),
            144);
}

TEST_P(MccExec, GlobalVariables) {
  EXPECT_EQ(runProgram("int g = 7;"
                       "int counter;"
                       "void bump() { counter = counter + g; }"
                       "int main() { bump(); bump(); return counter; }"),
            14);
}

TEST_P(MccExec, GlobalArray) {
  EXPECT_EQ(runProgram("int a[10];"
                       "int main() {"
                       "  int i;"
                       "  for (i = 0; i < 10; i = i + 1) a[i] = i * i;"
                       "  return a[3] + a[7]; }"),
            9 + 49);
}

TEST_P(MccExec, LocalArray) {
  EXPECT_EQ(runProgram("int main() {"
                       "  int a[8]; int i; int s; s = 0;"
                       "  for (i = 0; i < 8; i = i + 1) a[i] = i + 1;"
                       "  for (i = 0; i < 8; i = i + 1) s = s + a[i];"
                       "  return s; }"),
            36);
}

TEST_P(MccExec, TwoDimensionalArray) {
  EXPECT_EQ(runProgram("int m[4][5];"
                       "int main() {"
                       "  int i; int j;"
                       "  for (i = 0; i < 4; i = i + 1)"
                       "    for (j = 0; j < 5; j = j + 1)"
                       "      m[i][j] = i * 10 + j;"
                       "  return m[2][3] + m[3][4]; }"),
            23 + 34);
}

TEST_P(MccExec, CharArraysUseByteAccess) {
  EXPECT_EQ(runProgram("char buf[16];"
                       "int main() {"
                       "  int i;"
                       "  for (i = 0; i < 16; i = i + 1) buf[i] = i * 2;"
                       "  return buf[5] + buf[10]; }"),
            10 + 20);
}

TEST_P(MccExec, PointerBasics) {
  EXPECT_EQ(runProgram("int main() {"
                       "  int x; int *p; x = 5; p = &x;"
                       "  *p = *p + 37;"
                       "  return x; }"),
            42);
}

TEST_P(MccExec, PointerArithmetic) {
  EXPECT_EQ(runProgram("int a[10];"
                       "int main() {"
                       "  int *p; int i;"
                       "  for (i = 0; i < 10; i = i + 1) a[i] = i;"
                       "  p = a; p = p + 4;"
                       "  return *p + p[2] + *(p + 3); }"),
            4 + 6 + 7);
}

TEST_P(MccExec, PointerDifference) {
  EXPECT_EQ(runProgram("int a[10];"
                       "int main() {"
                       "  int *p; int *q; p = &a[2]; q = &a[9];"
                       "  return q - p; }"),
            7);
}

TEST_P(MccExec, StructsOnStack) {
  EXPECT_EQ(runProgram("struct Point { int x; int y; };"
                       "int main() {"
                       "  struct Point p;"
                       "  p.x = 11; p.y = 31;"
                       "  return p.x + p.y; }"),
            42);
}

TEST_P(MccExec, StructPointersAndArrow) {
  EXPECT_EQ(runProgram("struct Point { int x; int y; };"
                       "int get(struct Point *p) { return p->x * p->y; }"
                       "int main() {"
                       "  struct Point p;"
                       "  p.x = 6; p.y = 7;"
                       "  return get(&p); }"),
            42);
}

TEST_P(MccExec, MallocLinkedList) {
  EXPECT_EQ(runProgram(
                "struct Node { int val; struct Node *next; };"
                "int main() {"
                "  struct Node *head; struct Node *n; int i; int sum;"
                "  head = 0;"
                "  for (i = 1; i <= 10; i = i + 1) {"
                "    n = (struct Node*)malloc(sizeof(struct Node));"
                "    n->val = i; n->next = head; head = n;"
                "  }"
                "  sum = 0;"
                "  for (n = head; n != 0; n = n->next) sum = sum + n->val;"
                "  return sum; }"),
            55);
}

TEST_P(MccExec, StructWithArrayField) {
  EXPECT_EQ(runProgram("struct Rec { int tag; int vals[4]; };"
                       "int main() {"
                       "  struct Rec r; int i;"
                       "  r.tag = 2;"
                       "  for (i = 0; i < 4; i = i + 1) r.vals[i] = i * 3;"
                       "  return r.vals[r.tag]; }"),
            6);
}

TEST_P(MccExec, ArrayOfStructs) {
  EXPECT_EQ(runProgram("struct P { int x; int y; };"
                       "struct P pts[5];"
                       "int main() {"
                       "  int i;"
                       "  for (i = 0; i < 5; i = i + 1) {"
                       "    pts[i].x = i; pts[i].y = i * i;"
                       "  }"
                       "  return pts[3].x + pts[4].y; }"),
            3 + 16);
}

TEST_P(MccExec, RandIsDeterministic) {
  // Two calls to the program give identical streams (seeded simulator RNG).
  std::string Src = "int main() { srand(7); return rand() % 1000; }";
  EXPECT_EQ(runProgram(Src), runProgram(Src));
}

TEST_P(MccExec, PrintOutput) {
  EXPECT_EQ(runOutput("int main() {"
                      "  int i;"
                      "  for (i = 0; i < 3; i = i + 1) print_int(i * 5);"
                      "  return 0; }"),
            "0\n5\n10\n");
}

TEST_P(MccExec, SizeofValues) {
  EXPECT_EQ(runProgram("struct S { int a; char c; };"
                       "int main() {"
                       "  return sizeof(int) + sizeof(char) * 10 +"
                       "         sizeof(int*) * 100 + sizeof(struct S) * 1000; }"),
            4 + 10 + 400 + 8000);
}

TEST_P(MccExec, DeepExpressionSpills) {
  // Deep enough to exhaust the 8-register pool and force stack spills.
  EXPECT_EQ(runProgram("int main() {"
                       "  return 1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 +"
                       "         (9 + (10 + (11 + 12)))))))))); }"),
            78);
}

TEST_P(MccExec, CallInsideExpression) {
  EXPECT_EQ(runProgram("int sq(int x) { return x * x; }"
                       "int main() { int a; a = 3; return a + sq(a) + a * 2; }"),
            3 + 9 + 6);
}

TEST_P(MccExec, AssignmentChains) {
  EXPECT_EQ(runProgram("int main() { int a; int b; int c;"
                       "  a = b = c = 14; return a + b + c; }"),
            42);
}

TEST_P(MccExec, VoidFunction) {
  EXPECT_EQ(runProgram("int g;"
                       "void setg(int v) { g = v; if (v > 100) return; g = g + 1; }"
                       "int main() { setg(5); return g; }"),
            6);
}

TEST_P(MccExec, HashLoopMatchesHost) {
  // A xorshift-style hash evaluated both here and by the compiled program.
  int32_t H = 1;
  for (int I = 0; I != 50; ++I) {
    H = static_cast<int32_t>(static_cast<int64_t>(H) * 31 + I);
    H = H ^ ((H >> 7) != 0 ? (H >> 3) & 1023 : 7);
  }
  EXPECT_EQ(runProgram("int main() {"
                       "  int h; int i; h = 1;"
                       "  for (i = 0; i < 50; i = i + 1) {"
                       "    h = h * 31 + i;"
                       "    h = h ^ (h >> 7 ? (h >> 3) & 1023 : 7);"
                       "  }"
                       "  return h; }"),
            H);
}

//===----------------------------------------------------------------------===//
// Code shape properties
//===----------------------------------------------------------------------===//

TEST(MccCodeShape, UnoptimizedKeepsLocalsOnStack) {
  auto M = test::compileOrDie("int main() { int i; int s; s = 0;"
                              "  for (i = 0; i < 10; i = i + 1) s = s + i;"
                              "  return s; }",
                              /*OptLevel=*/0);
  ASSERT_TRUE(M);
  // Loads from $sp must appear (reloading i and s each iteration).
  unsigned SpLoads = 0;
  for (const auto &I : M->lookupFunction("main")->instrs())
    if (masm::isLoad(I.Op) && I.Rs == masm::Reg::SP)
      ++SpLoads;
  EXPECT_GE(SpLoads, 3u) << printModule(*M);
}

TEST(MccCodeShape, OptimizedPromotesLocals) {
  auto M = test::compileOrDie("int main() { int i; int s; s = 0;"
                              "  for (i = 0; i < 10; i = i + 1) s = s + i;"
                              "  return s; }",
                              /*OptLevel=*/1);
  ASSERT_TRUE(M);
  // i and s live in $s-registers: no loop-carried sp loads besides the
  // epilogue restores.
  unsigned SpLoads = 0;
  for (const auto &I : M->lookupFunction("main")->instrs())
    if (masm::isLoad(I.Op) && I.Rs == masm::Reg::SP)
      ++SpLoads;
  // Epilogue restores: ra + 2 promoted regs.
  EXPECT_LE(SpLoads, 3u) << printModule(*M);
}

TEST(MccCodeShape, GlobalsAddressedViaLa) {
  auto M = test::compileOrDie("int g; int main() { g = 1; return g; }", 0);
  ASSERT_TRUE(M);
  bool SawLa = false;
  for (const auto &I : M->lookupFunction("main")->instrs())
    SawLa |= I.Op == masm::Opcode::La && I.Sym == "g";
  EXPECT_TRUE(SawLa);
}

TEST(MccCodeShape, EmitsTypeMetadata) {
  auto M = test::compileOrDie(
      "struct N { int v; struct N *next; };"
      "struct N *head;"
      "int table[64];"
      "int main() { struct N n; int x; x = 0; n.v = x; return n.v; }",
      0);
  ASSERT_TRUE(M);
  const masm::VarType *HeadTy = M->typeInfo().lookupGlobal("head");
  ASSERT_TRUE(HeadTy);
  EXPECT_EQ(HeadTy->Kind, masm::VarKind::Scalar);
  EXPECT_TRUE(HeadTy->IsPointer);

  const masm::VarType *TableTy = M->typeInfo().lookupGlobal("table");
  ASSERT_TRUE(TableTy);
  EXPECT_EQ(TableTy->Kind, masm::VarKind::Array);

  const masm::FunctionTypeInfo *FTI = M->typeInfo().lookupFunction("main");
  ASSERT_TRUE(FTI);
  // n (struct with a pointer field) and x (scalar).
  bool SawStruct = false;
  for (const auto &V : FTI->Vars)
    if (V.Type.Kind == masm::VarKind::StructObj) {
      SawStruct = true;
      ASSERT_EQ(V.Type.Fields.size(), 2u);
      EXPECT_FALSE(V.Type.Fields[0].IsPointer);
      EXPECT_TRUE(V.Type.Fields[1].IsPointer);
    }
  EXPECT_TRUE(SawStruct);
}

TEST(MccCodeShape, NoUnreachableCodeAfterTerminatedArms) {
  // Both arms of the if/else return, so there is no jump-over-else, no join
  // code, and nothing after the statement: every emitted block must be
  // reachable from the entry.
  for (int OptLevel : {0, 1}) {
    auto M = test::compileOrDie(
        "int f(int c) { if (c > 0) { return 1; } else { return 2; } }"
        "int main() { int i; int s; s = 0;"
        "  for (i = 0; i < 4; i = i + 1) {"
        "    if (i == 2) { continue; }"
        "    s = s + f(i);"
        "  }"
        "  return s; }",
        OptLevel);
    ASSERT_TRUE(M);
    for (const masm::Function &F : M->functions()) {
      cfg::Cfg G(F);
      std::vector<uint8_t> Seen(G.numBlocks(), 0);
      std::vector<uint32_t> Work{G.entry()};
      Seen[G.entry()] = 1;
      while (!Work.empty()) {
        uint32_t B = Work.back();
        Work.pop_back();
        for (uint32_t S : G.blocks()[B].Succs)
          if (!Seen[S]) {
            Seen[S] = 1;
            Work.push_back(S);
          }
      }
      for (uint32_t B = 0; B != G.numBlocks(); ++B)
        EXPECT_TRUE(Seen[B]) << F.name() << " block B" << B
                             << " unreachable at -O" << OptLevel << "\n"
                             << G.dump();
    }
    // And the program still computes the right thing.
    sim::RunResult R = test::compileAndRun(
        "int f(int c) { if (c > 0) { return 1; } else { return 2; } }"
        "int main() { int i; int s; s = 0;"
        "  for (i = 0; i < 4; i = i + 1) {"
        "    if (i == 2) { continue; }"
        "    s = s + f(i);"
        "  }"
        "  print_int(s); return 0; }",
        OptLevel);
    EXPECT_EQ(R.Output, "4\n"); // f(0)+f(1)+f(3) = 2+1+1, i==2 skipped.
  }
}

TEST(MccCodeShape, CompiledModuleParsesBack) {
  auto M = test::compileOrDie(
      "int a[100];"
      "int main() { int i; for (i = 0; i < 100; i = i + 1) a[i] = i;"
      "  return a[50]; }",
      0);
  ASSERT_TRUE(M);
  std::string Text = printModule(*M);
  auto M2 = test::parseAsmOrDie(Text);
  ASSERT_TRUE(M2);
  EXPECT_EQ(M2->totalInstrs(), M->totalInstrs());
  // And the re-parsed module still runs.
  masm::Layout L(*M2);
  sim::Machine Mach(*M2, L, sim::MachineOptions());
  sim::RunResult R = Mach.run();
  ASSERT_EQ(R.Halt, sim::HaltReason::Exited);
  EXPECT_EQ(R.ExitCode, 50);
}
