//===- tests/MetricsTest.cpp - pi/rho/xi/ideal/combination tests ---------------//

#include "metrics/Metrics.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::metrics;
using namespace dlq::masm;

namespace {

InstrRef ref(uint32_t Idx) { return InstrRef{0, Idx}; }

/// Stats with loads 0..4: misses 100, 50, 30, 10, 0; execs 1000 each.
LoadStatsMap sampleStats() {
  LoadStatsMap S;
  uint64_t Misses[] = {100, 50, 30, 10, 0};
  for (uint32_t I = 0; I != 5; ++I)
    S[ref(I)] = sim::LoadStat{1000, Misses[I]};
  return S;
}

} // namespace

TEST(Metrics, EvaluateBasic) {
  LoadStatsMap S = sampleStats();
  LoadSet Delta = {ref(0), ref(1)};
  EvalResult E = evaluate(/*Lambda=*/10, Delta, S);
  EXPECT_EQ(E.Lambda, 10u);
  EXPECT_EQ(E.DeltaSize, 2u);
  EXPECT_EQ(E.TotalMisses, 190u);
  EXPECT_EQ(E.CoveredMisses, 150u);
  EXPECT_DOUBLE_EQ(E.pi(), 0.2);
  EXPECT_NEAR(E.rho(), 150.0 / 190.0, 1e-12);
}

TEST(Metrics, EvaluateEmptyDelta) {
  EvalResult E = evaluate(10, {}, sampleStats());
  EXPECT_DOUBLE_EQ(E.pi(), 0.0);
  EXPECT_DOUBLE_EQ(E.rho(), 0.0);
}

TEST(Metrics, IdealGreedyTakesBiggestFirst) {
  LoadStatsMap S = sampleStats();
  // 79% of 190 = 150.1 misses: needs loads 0 and 1 and 2 (100+50=150 < 150.1).
  LoadSet Ideal = idealSetForCoverage(S, 0.79);
  EXPECT_EQ(Ideal.size(), 3u);
  EXPECT_TRUE(Ideal.count(ref(0)));
  EXPECT_TRUE(Ideal.count(ref(1)));
  EXPECT_TRUE(Ideal.count(ref(2)));

  // 50% of 190 = 95: the single biggest load suffices.
  LoadSet Ideal50 = idealSetForCoverage(S, 0.50);
  EXPECT_EQ(Ideal50.size(), 1u);
  EXPECT_TRUE(Ideal50.count(ref(0)));
}

TEST(Metrics, IdealIgnoresZeroMissLoads) {
  LoadSet Ideal = idealSetForCoverage(sampleStats(), 1.0);
  EXPECT_EQ(Ideal.size(), 4u) << "the zero-miss load is never needed";
}

TEST(Metrics, FalsePositiveImpact) {
  LoadStatsMap S = sampleStats();
  LoadSet Delta = {ref(0), ref(3), ref(4)};
  LoadSet Ideal = {ref(0), ref(1)};
  // False positives: loads 3 and 4 -> 2000 execs of 5000 total.
  EXPECT_NEAR(falsePositiveImpact(Delta, Ideal, S), 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(falsePositiveImpact(Ideal, Ideal, S), 0.0);
}

TEST(Metrics, CombineEpsilonZeroIsIntersection) {
  LoadSet DeltaP = {ref(0), ref(1), ref(2)};
  LoadSet DeltaH = {ref(1), ref(2), ref(3), ref(4)};
  std::map<InstrRef, double> Scores = {
      {ref(3), 0.9}, {ref(4), 0.5}, {ref(1), 0.3}, {ref(2), 0.2}};
  LoadSet C0 = combineWithProfiling(DeltaP, DeltaH, Scores, 0.0);
  EXPECT_EQ(C0, (LoadSet{ref(1), ref(2)}));
}

TEST(Metrics, CombineEpsilonAddsHighestScoring) {
  LoadSet DeltaP = {ref(0), ref(1)};
  LoadSet DeltaH = {ref(1), ref(2), ref(3), ref(4), ref(5)};
  std::map<InstrRef, double> Scores = {
      {ref(2), 0.1}, {ref(3), 0.9}, {ref(4), 0.5}, {ref(5), 0.2}};
  // Delta_d = {2,3,4,5}; epsilon=0.5 takes the top 2 by score: 3 and 4.
  LoadSet C = combineWithProfiling(DeltaP, DeltaH, Scores, 0.5);
  EXPECT_EQ(C, (LoadSet{ref(1), ref(3), ref(4)}));
}

// Regression tests for the epsilon-mixing truncation bug: the take count is
// round(eps * |Delta_d|) (half away from zero), not a float-to-int truncate.
TEST(Metrics, CombineEpsilonRoundsToNearest) {
  LoadSet DeltaP = {ref(0)};
  LoadSet DeltaH = {ref(0), ref(1), ref(2), ref(3), ref(4)};
  std::map<InstrRef, double> Scores = {
      {ref(1), 0.4}, {ref(2), 0.8}, {ref(3), 0.6}, {ref(4), 0.1}};
  // Delta_d = {1,2,3,4}; 0.15 * 4 = 0.6 rounds to 1 (truncation gave 0).
  LoadSet C = combineWithProfiling(DeltaP, DeltaH, Scores, 0.15);
  EXPECT_EQ(C, (LoadSet{ref(0), ref(2)}));
  // 0.1 * 4 = 0.4 rounds to 0.
  LoadSet CDown = combineWithProfiling(DeltaP, DeltaH, Scores, 0.1);
  EXPECT_EQ(CDown, (LoadSet{ref(0)}));
}

TEST(Metrics, CombineEpsilonRoundsHalfAwayFromZero) {
  LoadSet DeltaP = {ref(0)};
  LoadSet DeltaH = {ref(1), ref(2), ref(3), ref(4), ref(5)};
  std::map<InstrRef, double> Scores = {{ref(1), 0.9}, {ref(2), 0.7},
                                       {ref(3), 0.5}, {ref(4), 0.3},
                                       {ref(5), 0.1}};
  // Delta_d = {1..5}; 0.5 * 5 = 2.5 rounds up to 3 (truncation gave 2).
  LoadSet C = combineWithProfiling(DeltaP, DeltaH, Scores, 0.5);
  EXPECT_EQ(C, (LoadSet{ref(1), ref(2), ref(3)}));
}

TEST(Metrics, CombineEpsilonOneTakesAll) {
  LoadSet DeltaP = {ref(0)};
  LoadSet DeltaH = {ref(1), ref(2)};
  std::map<InstrRef, double> Scores;
  LoadSet C = combineWithProfiling(DeltaP, DeltaH, Scores, 1.0);
  EXPECT_EQ(C, DeltaH);
}

TEST(Metrics, RandomSampleCoverageBounds) {
  LoadStatsMap S = sampleStats();
  LoadSet Pool = {ref(0), ref(1), ref(2), ref(3), ref(4)};
  Rng R(7);
  double Rho = randomSampleCoverage(Pool, 2, S, R, 10);
  EXPECT_GE(Rho, 0.0);
  EXPECT_LE(Rho, 1.0);
  // Sampling everything covers everything.
  Rng R2(7);
  EXPECT_DOUBLE_EQ(randomSampleCoverage(Pool, 5, S, R2, 2), 1.0);
}

TEST(Metrics, RandomSampleDeterministicUnderSeed) {
  LoadStatsMap S = sampleStats();
  LoadSet Pool = {ref(0), ref(1), ref(2), ref(3), ref(4)};
  Rng A(42), B(42);
  EXPECT_DOUBLE_EQ(randomSampleCoverage(Pool, 2, S, A, 3),
                   randomSampleCoverage(Pool, 2, S, B, 3));
}
