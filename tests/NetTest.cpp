//===- tests/NetTest.cpp - frame codec and delinqd server tests -----------==//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
//===----------------------------------------------------------------------===//
//
// Two layers. The FrameDecoder tests hammer the codec with truncation,
// hostile lengths and randomized re-chunking — the properties that keep a
// byte stream from ever turning into an over-read or an attacker-sized
// allocation. The Server tests boot a real delinqd instance on an ephemeral
// loopback port with serve() on its own thread and drive it through the
// blocking Client, including the drain-under-load ordering guarantee.
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"
#include "net/Frame.h"
#include "net/Protocol.h"
#include "net/Server.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <chrono>
#include <cstring>
#include <memory>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace dlq;
using namespace dlq::net;

namespace {

//===----------------------------------------------------------------------===//
// Frame codec
//===----------------------------------------------------------------------===//

void putU16(std::vector<uint8_t> &B, uint16_t V) {
  B.push_back(static_cast<uint8_t>(V));
  B.push_back(static_cast<uint8_t>(V >> 8));
}

void putU32(std::vector<uint8_t> &B, uint32_t V) {
  for (unsigned I = 0; I != 4; ++I)
    B.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &B, uint64_t V) {
  for (unsigned I = 0; I != 8; ++I)
    B.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

/// A raw header with every field under test control.
std::vector<uint8_t> rawHeader(uint32_t Magic, uint16_t Version, uint16_t Op,
                               uint64_t Id, uint32_t Len) {
  std::vector<uint8_t> B;
  putU32(B, Magic);
  putU16(B, Version);
  putU16(B, Op);
  putU64(B, Id);
  putU32(B, Len);
  return B;
}

TEST(Frame, RoundTripsThroughDecoder) {
  Frame In;
  In.Op = static_cast<uint16_t>(Opcode::Run);
  In.RequestId = 0x0123456789ABCDEFull;
  In.Payload = {1, 2, 3, 250, 251, 252};
  std::vector<uint8_t> Wire = encodeFrame(In);
  ASSERT_EQ(Wire.size(), kHeaderBytes + In.Payload.size());

  FrameDecoder Dec;
  Dec.feed(Wire.data(), Wire.size());
  Frame Out;
  ASSERT_EQ(Dec.next(Out), FrameDecoder::Status::Ready);
  EXPECT_EQ(Out.Op, In.Op);
  EXPECT_EQ(Out.RequestId, In.RequestId);
  EXPECT_EQ(Out.Payload, In.Payload);
  EXPECT_EQ(Dec.next(Out), FrameDecoder::Status::NeedMore);
  EXPECT_EQ(Dec.buffered(), 0u);
}

TEST(Frame, ByteAtATimeFeedYieldsTheFrameOnlyWhenComplete) {
  Frame In;
  In.Op = static_cast<uint16_t>(Opcode::Ping);
  In.RequestId = 7;
  In.Payload = {9, 8, 7};
  std::vector<uint8_t> Wire = encodeFrame(In);

  FrameDecoder Dec;
  Frame Out;
  for (size_t I = 0; I + 1 < Wire.size(); ++I) {
    Dec.feed(&Wire[I], 1);
    ASSERT_EQ(Dec.next(Out), FrameDecoder::Status::NeedMore)
        << "frame produced after only " << I + 1 << " bytes";
  }
  Dec.feed(&Wire[Wire.size() - 1], 1);
  ASSERT_EQ(Dec.next(Out), FrameDecoder::Status::Ready);
  EXPECT_EQ(Out.Payload, In.Payload);
}

TEST(Frame, TruncatedHeaderIsNeedMoreNotCorrupt) {
  std::vector<uint8_t> H = rawHeader(kMagic, kVersion, 0, 1, 0);
  FrameDecoder Dec;
  Dec.feed(H.data(), kHeaderBytes - 1);
  Frame Out;
  EXPECT_EQ(Dec.next(Out), FrameDecoder::Status::NeedMore);
}

TEST(Frame, OversizedLengthIsRejectedBeforeAnyAllocation) {
  // A forged length just under 4 GiB: the decoder must latch Corrupt from
  // the 20 header bytes alone, never sizing a buffer from the claim.
  std::vector<uint8_t> H = rawHeader(kMagic, kVersion, 0, 1, 0xFFFFFF00u);
  FrameDecoder Dec;
  Dec.feed(H.data(), H.size());
  Frame Out;
  ASSERT_EQ(Dec.next(Out), FrameDecoder::Status::Corrupt);
  EXPECT_NE(Dec.error().find("length"), std::string::npos) << Dec.error();
  // Only what was actually received is buffered.
  EXPECT_LE(Dec.buffered(), kHeaderBytes);
}

TEST(Frame, BadMagicIsCorrupt) {
  std::vector<uint8_t> H = rawHeader(0xDEADBEEF, kVersion, 0, 1, 0);
  FrameDecoder Dec;
  Dec.feed(H.data(), H.size());
  Frame Out;
  ASSERT_EQ(Dec.next(Out), FrameDecoder::Status::Corrupt);
  EXPECT_NE(Dec.error().find("magic"), std::string::npos) << Dec.error();
}

TEST(Frame, BadVersionIsCorrupt) {
  std::vector<uint8_t> H = rawHeader(kMagic, 99, 0, 1, 0);
  FrameDecoder Dec;
  Dec.feed(H.data(), H.size());
  Frame Out;
  ASSERT_EQ(Dec.next(Out), FrameDecoder::Status::Corrupt);
  EXPECT_NE(Dec.error().find("version"), std::string::npos) << Dec.error();
}

TEST(Frame, DecoderStaysDeadAfterCorruption) {
  std::vector<uint8_t> Bad = rawHeader(0, 0, 0, 0, 0);
  FrameDecoder Dec;
  Dec.feed(Bad.data(), Bad.size());
  Frame Out;
  ASSERT_EQ(Dec.next(Out), FrameDecoder::Status::Corrupt);
  // Even a perfectly valid frame cannot revive a stream that lost framing.
  Frame Good;
  Good.Op = 0;
  std::vector<uint8_t> Wire = encodeFrame(Good);
  Dec.feed(Wire.data(), Wire.size());
  EXPECT_EQ(Dec.next(Out), FrameDecoder::Status::Corrupt);
}

TEST(Frame, RandomizedChunkingPreservesEveryFrame) {
  // Fuzz the re-chunking: many frames with varied payloads, delivered in
  // random slices, must come out intact and in order regardless of where
  // the slice boundaries fall.
  Rng Rand(0xF00D);
  std::vector<Frame> Sent;
  std::vector<uint8_t> Stream;
  for (unsigned I = 0; I != 50; ++I) {
    Frame F;
    F.Op = static_cast<uint16_t>(Rand.nextBelow(6));
    F.RequestId = Rand.next();
    F.Payload.resize(Rand.nextBelow(5000));
    for (uint8_t &B : F.Payload)
      B = static_cast<uint8_t>(Rand.nextBelow(256));
    appendFrame(Stream, F);
    Sent.push_back(std::move(F));
  }

  FrameDecoder Dec;
  std::vector<Frame> Got;
  size_t Off = 0;
  while (Off != Stream.size()) {
    size_t N = std::min<size_t>(1 + Rand.nextBelow(700),
                                Stream.size() - Off);
    Dec.feed(Stream.data() + Off, N);
    Off += N;
    Frame Out;
    while (Dec.next(Out) == FrameDecoder::Status::Ready)
      Got.push_back(std::move(Out));
  }
  ASSERT_EQ(Got.size(), Sent.size());
  for (size_t I = 0; I != Sent.size(); ++I) {
    EXPECT_EQ(Got[I].Op, Sent[I].Op);
    EXPECT_EQ(Got[I].RequestId, Sent[I].RequestId);
    EXPECT_EQ(Got[I].Payload, Sent[I].Payload) << "frame " << I;
  }
  EXPECT_EQ(Dec.buffered(), 0u);
}

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

/// Boots a hermetic delinqd (no disk cache, ephemeral loopback port) with
/// serve() on a background thread; tears it down with a drain.
class NetServer : public ::testing::Test {
protected:
  void boot() {
    ServerOptions O;
    O.Exec.UseDiskCache = false;
    O.Exec.Jobs = 2;
    std::string Err;
    S = std::make_unique<Server>(O);
    ASSERT_TRUE(S->start(Err)) << Err;
    Serving = std::thread([this] { ServeResult = S->serve(); });
  }

  void TearDown() override {
    if (Serving.joinable()) {
      S->requestDrain();
      Serving.join();
    }
  }

  std::unique_ptr<Server> S;
  std::thread Serving;
  int ServeResult = -1;
};

TEST_F(NetServer, PingEchoes) {
  boot();
  Client C;
  std::string Err;
  ASSERT_TRUE(C.connect("127.0.0.1", S->port(), Err)) << Err;
  Status St = Status::Internal;
  ASSERT_TRUE(C.ping("hello delinqd", St, Err)) << Err;
  EXPECT_EQ(St, Status::Ok);
}

TEST_F(NetServer, AnalyzeCountsLoads) {
  boot();
  Client C;
  std::string Err;
  ASSERT_TRUE(C.connect("127.0.0.1", S->port(), Err)) << Err;
  AnalyzeRequest Req;
  Req.Workload = "li_like";
  AnalyzeResponse Resp;
  Status St = Status::Internal;
  ASSERT_TRUE(C.analyze(Req, Resp, St, Err)) << Err;
  ASSERT_EQ(St, Status::Ok) << Err;
  EXPECT_GT(Resp.Loads, 0u);
  EXPECT_LE(Resp.Flagged, Resp.Loads);
}

TEST_F(NetServer, RunSimulatesToCompletion) {
  boot();
  Client C;
  std::string Err;
  ASSERT_TRUE(C.connect("127.0.0.1", S->port(), Err)) << Err;
  RunRequest Req;
  Req.Workload = "li_like";
  RunResponse Resp;
  Status St = Status::Internal;
  ASSERT_TRUE(C.run(Req, Resp, St, Err)) << Err;
  ASSERT_EQ(St, Status::Ok) << Err;
  EXPECT_GT(Resp.Instrs, 0u);
  EXPECT_GT(Resp.DataAccesses, 0u);
}

TEST_F(NetServer, ClassifyReportsCoverage) {
  boot();
  Client C;
  std::string Err;
  ASSERT_TRUE(C.connect("127.0.0.1", S->port(), Err)) << Err;
  ClassifyRequest Req;
  Req.Workload = "li_like";
  ClassifyResponse Resp;
  Status St = Status::Internal;
  ASSERT_TRUE(C.classify(Req, Resp, St, Err)) << Err;
  ASSERT_EQ(St, Status::Ok) << Err;
  EXPECT_GT(Resp.Lambda, 0u);
  EXPECT_LE(Resp.CoveredMisses, Resp.TotalMisses);
}

TEST_F(NetServer, UnknownWorkloadIsAStatusNotAClosedConnection) {
  boot();
  Client C;
  std::string Err;
  ASSERT_TRUE(C.connect("127.0.0.1", S->port(), Err)) << Err;
  AnalyzeRequest Req;
  Req.Workload = "no_such_workload";
  AnalyzeResponse Resp;
  Status St = Status::Ok;
  ASSERT_TRUE(C.analyze(Req, Resp, St, Err)) << Err;
  EXPECT_EQ(St, Status::UnknownWorkload);
  // The connection survives an application-level error.
  ASSERT_TRUE(C.ping("still here", St, Err)) << Err;
  EXPECT_EQ(St, Status::Ok);
}

TEST_F(NetServer, MalformedBodyIsBadRequest) {
  boot();
  Client C;
  std::string Err;
  ASSERT_TRUE(C.connect("127.0.0.1", S->port(), Err)) << Err;
  Frame Resp;
  ASSERT_TRUE(C.call(Opcode::Analyze, {0xDE, 0xAD}, Resp, Err)) << Err;
  exec::ByteReader Body(Resp.Payload);
  Status St = Status::Ok;
  std::string Remote;
  ASSERT_TRUE(decodeResponseHead(Body, St, Remote));
  EXPECT_EQ(St, Status::BadRequest);
}

TEST_F(NetServer, UnknownOpcodeIsUnsupportedAndKeepsTheConnection) {
  boot();
  Client C;
  std::string Err;
  ASSERT_TRUE(C.connect("127.0.0.1", S->port(), Err)) << Err;
  Frame Resp;
  ASSERT_TRUE(C.call(static_cast<Opcode>(99), {}, Resp, Err)) << Err;
  exec::ByteReader Body(Resp.Payload);
  Status St = Status::Ok;
  std::string Remote;
  ASSERT_TRUE(decodeResponseHead(Body, St, Remote));
  EXPECT_EQ(St, Status::Unsupported);
  Status PingSt = Status::Internal;
  ASSERT_TRUE(C.ping("after unknown opcode", PingSt, Err)) << Err;
  EXPECT_EQ(PingSt, Status::Ok);
}

TEST_F(NetServer, BrokenFramingCostsTheConnection) {
  boot();
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(S->port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr), 1);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);
  // At least one full header of non-protocol bytes, so the decoder sees the
  // bad magic immediately rather than waiting for more.
  const char Garbage[] = "GET / HTTP/1.1\r\nHost: delinqd\r\n\r\n";
  static_assert(sizeof(Garbage) - 1 >= kHeaderBytes);
  ASSERT_GT(::send(Fd, Garbage, sizeof(Garbage) - 1, 0), 0);
  // The server must close; recv sees EOF (or a reset), never a response.
  uint8_t Buf[64];
  ssize_t R = ::recv(Fd, Buf, sizeof(Buf), 0);
  EXPECT_LE(R, 0);
  ::close(Fd);
}

TEST_F(NetServer, StatsReflectTrafficAndLatencies) {
  boot();
  Client C;
  std::string Err;
  ASSERT_TRUE(C.connect("127.0.0.1", S->port(), Err)) << Err;
  Status St = Status::Internal;
  ASSERT_TRUE(C.ping("one", St, Err)) << Err;
  StatsResponse Stats;
  ASSERT_TRUE(C.stats(Stats, St, Err)) << Err;
  ASSERT_EQ(St, Status::Ok);
  EXPECT_GE(Stats.FramesIn, 2u);
  EXPECT_GE(Stats.Accepts, 1u);
  bool SawPing = false;
  for (const OpcodeLatency &L : Stats.Latencies)
    if (L.Op == static_cast<uint16_t>(Opcode::Ping)) {
      SawPing = true;
      EXPECT_GT(L.Count, 0u);
      EXPECT_GE(L.P99Ns, L.P50Ns);
    }
  EXPECT_TRUE(SawPing);
  EXPECT_NE(Stats.CountersJson.find("net.frames.in"), std::string::npos);
}

TEST_F(NetServer, DrainUnderLoadDeliversEveryInFlightResponse) {
  boot();
  // Client A puts a real simulation in flight...
  Client A;
  std::string ErrA;
  ASSERT_TRUE(A.connect("127.0.0.1", S->port(), ErrA)) << ErrA;
  Status StA = Status::Internal;
  RunResponse RespA;
  bool OkA = false;
  std::thread InFlight([&] {
    RunRequest Req;
    Req.Workload = "mcf_like";
    OkA = A.run(Req, RespA, StA, ErrA);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // ...while client B asks for a graceful shutdown.
  Client B;
  std::string ErrB;
  ASSERT_TRUE(B.connect("127.0.0.1", S->port(), ErrB)) << ErrB;
  Status StB = Status::Internal;
  ASSERT_TRUE(B.drain(StB, ErrB)) << ErrB;
  EXPECT_EQ(StB, Status::Ok);

  // The RUN response was delivered before the server exited.
  InFlight.join();
  ASSERT_TRUE(OkA) << ErrA;
  EXPECT_EQ(StA, Status::Ok);
  EXPECT_GT(RespA.Instrs, 0u);

  Serving.join();
  EXPECT_EQ(ServeResult, 0);
}

TEST_F(NetServer, RequestDrainFromOutsideTheLoopExitsCleanly) {
  boot();
  S->requestDrain();
  Serving.join();
  EXPECT_EQ(ServeResult, 0);
}

} // namespace
