//===- tests/ObjectFileTest.cpp - binary encode/decode tests --------------------//

#include "masm/ObjectFile.h"
#include "masm/Parser.h"
#include "masm/Printer.h"
#include "sim/Machine.h"
#include "support/Rng.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::masm;

namespace {

std::unique_ptr<Module> sampleModule() {
  return test::compileOrDie(
      "struct Node { int v; struct Node *next; };"
      "struct Node *head;"
      "int table[256];"
      "int walk() {"
      "  struct Node *n; int s; s = 0;"
      "  for (n = head; n != 0; n = n->next)"
      "    s = s + n->v + table[n->v & 255];"
      "  return s; }"
      "int main() { return walk(); }",
      0);
}

} // namespace

TEST(ObjectFile, RoundTripStructure) {
  auto M = sampleModule();
  ASSERT_TRUE(M);
  std::vector<uint8_t> Bytes = encodeModule(*M);
  ASSERT_FALSE(Bytes.empty());

  DecodeResult D = decodeModule(Bytes);
  ASSERT_TRUE(D.ok()) << D.Error;
  EXPECT_EQ(D.M->functions().size(), M->functions().size());
  EXPECT_EQ(D.M->globals().size(), M->globals().size());
  EXPECT_EQ(D.M->totalInstrs(), M->totalInstrs());
  EXPECT_EQ(D.M->countLoads(), M->countLoads());
}

TEST(ObjectFile, RoundTripPreservesTypeInfo) {
  auto M = sampleModule();
  ASSERT_TRUE(M);
  DecodeResult D = decodeModule(encodeModule(*M));
  ASSERT_TRUE(D.ok()) << D.Error;

  const VarType *Head = D.M->typeInfo().lookupGlobal("head");
  ASSERT_TRUE(Head);
  EXPECT_TRUE(Head->IsPointer);
  const VarType *Table = D.M->typeInfo().lookupGlobal("table");
  ASSERT_TRUE(Table);
  EXPECT_EQ(Table->Kind, VarKind::Array);

  const FunctionTypeInfo *FTI = D.M->typeInfo().lookupFunction("walk");
  ASSERT_TRUE(FTI);
  EXPECT_FALSE(FTI->Vars.empty());
}

TEST(ObjectFile, DecodedModuleRunsIdentically) {
  auto M = sampleModule();
  ASSERT_TRUE(M);
  DecodeResult D = decodeModule(encodeModule(*M));
  ASSERT_TRUE(D.ok()) << D.Error;

  auto runIt = [](const Module &Mod) {
    Layout L(Mod);
    sim::Machine Mach(Mod, L, sim::MachineOptions());
    return Mach.run();
  };
  sim::RunResult A = runIt(*M);
  sim::RunResult B = runIt(*D.M);
  ASSERT_EQ(A.Halt, sim::HaltReason::Exited);
  ASSERT_EQ(B.Halt, sim::HaltReason::Exited);
  EXPECT_EQ(A.ExitCode, B.ExitCode);
  EXPECT_EQ(A.InstrsExecuted, B.InstrsExecuted);
  EXPECT_EQ(A.LoadMisses, B.LoadMisses);
}

TEST(ObjectFile, DecodedModulePrintsAsValidAssembly) {
  auto M = sampleModule();
  ASSERT_TRUE(M);
  DecodeResult D = decodeModule(encodeModule(*M));
  ASSERT_TRUE(D.ok()) << D.Error;
  std::string Text = printModule(*D.M);
  auto Reparsed = parseAssembly(Text);
  EXPECT_TRUE(Reparsed.ok()) << Reparsed.diagText();
}

TEST(ObjectFile, DoubleRoundTripIsStable) {
  auto M = sampleModule();
  ASSERT_TRUE(M);
  std::vector<uint8_t> Once = encodeModule(*M);
  DecodeResult D1 = decodeModule(Once);
  ASSERT_TRUE(D1.ok()) << D1.Error;
  std::vector<uint8_t> Twice = encodeModule(*D1.M);
  DecodeResult D2 = decodeModule(Twice);
  ASSERT_TRUE(D2.ok()) << D2.Error;
  // Second-generation encodings are byte-identical.
  EXPECT_EQ(Twice, encodeModule(*D2.M));
}

TEST(ObjectFile, RejectsBadMagic) {
  std::vector<uint8_t> Bytes = {1, 2, 3, 4, 5, 6, 7, 8};
  DecodeResult D = decodeModule(Bytes);
  EXPECT_FALSE(D.ok());
  EXPECT_NE(D.Error.find("magic"), std::string::npos);
}

TEST(ObjectFile, RejectsEmptyInput) {
  DecodeResult D = decodeModule({});
  EXPECT_FALSE(D.ok());
}

TEST(ObjectFile, RejectsTruncation) {
  auto M = sampleModule();
  ASSERT_TRUE(M);
  std::vector<uint8_t> Bytes = encodeModule(*M);
  // Every strict prefix must fail cleanly (never crash).
  for (size_t Len : {size_t(4), size_t(9), Bytes.size() / 2,
                     Bytes.size() - 1}) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + Len);
    DecodeResult D = decodeModule(Cut);
    EXPECT_FALSE(D.ok()) << "prefix of " << Len << " bytes decoded";
  }
}

TEST(ObjectFile, RejectsCorruptedOpcodes) {
  auto M = sampleModule();
  ASSERT_TRUE(M);
  std::vector<uint8_t> Bytes = encodeModule(*M);
  // Flip bytes across the file; decoding must either fail cleanly or
  // produce a structurally valid module — never crash.
  Rng R(99);
  for (int Trial = 0; Trial != 200; ++Trial) {
    std::vector<uint8_t> Fuzzed = Bytes;
    size_t At = static_cast<size_t>(R.nextBelow(Fuzzed.size()));
    Fuzzed[At] ^= static_cast<uint8_t>(1 + R.nextBelow(255));
    DecodeResult D = decodeModule(Fuzzed);
    if (D.ok()) {
      EXPECT_TRUE(D.M->finalize());
    } else {
      EXPECT_FALSE(D.Error.empty());
    }
  }
}

TEST(ObjectFile, EncodesEmptyModule) {
  Module M;
  std::vector<uint8_t> Bytes = encodeModule(M);
  DecodeResult D = decodeModule(Bytes);
  ASSERT_TRUE(D.ok()) << D.Error;
  EXPECT_TRUE(D.M->functions().empty());
  EXPECT_TRUE(D.M->globals().empty());
}
