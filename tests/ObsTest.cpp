//===- tests/ObsTest.cpp - observability layer tests ------------------------==//
//
// Covers the src/obs tracing + counters subsystem: counter/histogram
// arithmetic, span nesting across threads, counter merge on pool shutdown,
// Chrome-trace JSON validity (parsed back by a small JSON reader below), and
// the disabled-tracer zero-allocation fast path.
//
//===----------------------------------------------------------------------===//

#include "exec/JobPool.h"
#include "obs/Counters.h"
#include "obs/Trace.h"

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

using namespace dlq;

// Global allocation counter for the zero-allocation test. The default
// operator new[] forwards to operator new, so overriding the scalar forms
// counts every heap allocation in the test binary.
static std::atomic<uint64_t> GAllocs{0};

void *operator new(size_t Sz) {
  GAllocs.fetch_add(1, std::memory_order_relaxed);
  void *P = std::malloc(Sz == 0 ? 1 : Sz);
  if (!P)
    throw std::bad_alloc();
  return P;
}

void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, size_t) noexcept { std::free(P); }

namespace {

/// Resets the process tracer around a test: clears recorded spans and
/// restores the disabled state on exit.
struct TracerFixture {
  TracerFixture() {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().enable();
  }
  ~TracerFixture() {
    obs::Tracer::instance().disable();
    obs::Tracer::instance().clear();
  }
};

TEST(Counters, CounterAddAndValue) {
  obs::Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
}

TEST(Counters, HistogramStatistics) {
  obs::Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.quantileBound(0.5), 0u);

  for (uint64_t V : {0ull, 1ull, 2ull, 3ull, 100ull, 1000ull})
    H.record(V);
  EXPECT_EQ(H.count(), 6u);
  EXPECT_EQ(H.sum(), 1106u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 1000u);
  EXPECT_DOUBLE_EQ(H.mean(), 1106.0 / 6.0);
  // Median falls in the bucket holding 2 and 3: upper bound 3.
  EXPECT_EQ(H.quantileBound(0.5), 3u);
  // The top quantile lands in 1000's bucket [512, 1024).
  EXPECT_EQ(H.quantileBound(1.0), 1023u);
}

TEST(Counters, QuantileEmptyAndSingleValued) {
  obs::Histogram H;
  EXPECT_DOUBLE_EQ(H.quantile(0.5), 0.0);
  // A single-valued distribution is exact at every quantile: interpolation
  // lands inside the bucket span but the [min, max] clamp collapses it.
  for (int I = 0; I != 100; ++I)
    H.record(100);
  EXPECT_DOUBLE_EQ(H.quantile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(H.quantile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(H.quantile(0.99), 100.0);
  EXPECT_DOUBLE_EQ(H.quantile(1.0), 100.0);
}

TEST(Counters, QuantileInterpolatesUniformData) {
  obs::Histogram H;
  for (uint64_t V = 1; V <= 1000; ++V)
    H.record(V);
  // Rank 500 falls in bucket [256, 512): 255 values seen below it, so the
  // linear estimate is 256 + 256 * (500-255)/256 = 501.
  EXPECT_NEAR(H.quantile(0.50), 501.0, 1.0);
  // p99's bucket is [512, 1024); the estimate stays inside the true decade.
  EXPECT_GE(H.quantile(0.99), 512.0);
  EXPECT_LE(H.quantile(0.99), 1000.0);
  // Extremes clamp to what was actually observed.
  EXPECT_DOUBLE_EQ(H.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(H.quantile(1.0), 1000.0);
}

TEST(Counters, QuantileIsMonotonicInQ) {
  obs::Histogram H;
  for (uint64_t V : {3ull, 17ull, 90ull, 1200ull, 55000ull, 55000ull, 7ull})
    H.record(V);
  double Prev = 0;
  for (double Q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    double V = H.quantile(Q);
    EXPECT_GE(V, Prev) << "quantile not monotonic at Q=" << Q;
    Prev = V;
  }
  EXPECT_DOUBLE_EQ(H.quantile(1.0), 55000.0);
}

TEST(Counters, HistogramBucketBoundaries) {
  obs::Histogram H;
  H.record(0); // bucket 0
  H.record(1); // bucket 1
  H.record(2); // bucket 2: [2,4)
  H.record(3);
  H.record(4); // bucket 3: [4,8)
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(2), 2u);
  EXPECT_EQ(H.bucketCount(3), 1u);
}

TEST(Counters, RegistryHandlesAreStable) {
  obs::Counters Reg;
  obs::Counter &A = Reg.counter("a");
  // Force the map to grow.
  for (int I = 0; I != 100; ++I)
    Reg.counter("grow." + std::to_string(I)).inc();
  obs::Counter &AAgain = Reg.counter("a");
  EXPECT_EQ(&A, &AAgain);
  A.add(7);
  EXPECT_EQ(Reg.counter("a").value(), 7u);
}

TEST(Counters, SummaryTableAndJson) {
  obs::Counters Reg;
  Reg.counter("alpha").add(3);
  Reg.histogram("lat.ns").record(1000);
  std::string Table = Reg.summaryTable();
  EXPECT_NE(Table.find("alpha"), std::string::npos);
  EXPECT_NE(Table.find("lat.ns"), std::string::npos);
  std::string Json = Reg.json();
  EXPECT_NE(Json.find("\"alpha\": 3"), std::string::npos);
  EXPECT_NE(Json.find("\"lat.ns\""), std::string::npos);
  EXPECT_EQ(Json.find("nan"), std::string::npos);
}

TEST(Counters, ConcurrentUpdatesMergeExactly) {
  obs::Counters Reg;
  obs::Counter &C = Reg.counter("hits");
  constexpr int Threads = 8, PerThread = 10000;
  std::vector<std::thread> Ts;
  for (int T = 0; T != Threads; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I != PerThread; ++I)
        C.inc();
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(C.value(), static_cast<uint64_t>(Threads) * PerThread);
}

/// Counters recorded from worker threads must be fully visible after the
/// pool joins its workers (the "merge on shutdown" contract).
TEST(Counters, MergeVisibleAfterPoolShutdown) {
  obs::Counters Reg;
  obs::Counter &Work = Reg.counter("work.done");
  obs::Histogram &Sizes = Reg.histogram("work.size");
  constexpr size_t Jobs = 200;
  {
    exec::JobPool Pool(4);
    for (size_t I = 0; I != Jobs; ++I)
      Pool.submit([&, I] {
        Work.inc();
        Sizes.record(I);
      });
    Pool.waitIdle();
  } // Pool destructor joins every worker.
  EXPECT_EQ(Work.value(), Jobs);
  EXPECT_EQ(Sizes.count(), Jobs);
}

TEST(Trace, SpanRecordsNameAndDuration) {
  TracerFixture Fix;
  {
    obs::Span S("unit.outer");
    obs::Span Inner("unit.inner");
  }
  std::vector<obs::TraceEvent> Events = obs::Tracer::instance().snapshot();
  ASSERT_EQ(Events.size(), 2u);
  // Snapshot is start-ordered: outer begins first.
  EXPECT_STREQ(Events[0].Name, "unit.outer");
  EXPECT_STREQ(Events[1].Name, "unit.inner");
  // The inner span nests inside the outer one.
  EXPECT_GE(Events[1].StartNs, Events[0].StartNs);
  EXPECT_LE(Events[1].StartNs + Events[1].DurNs,
            Events[0].StartNs + Events[0].DurNs);
  EXPECT_EQ(Events[0].Tid, Events[1].Tid);
}

TEST(Trace, SpanAttrsRenderAsJsonMembers) {
  TracerFixture Fix;
  {
    obs::Span S("unit.attrs");
    S.attr("wl", std::string("li_like"));
    S.attr("n", static_cast<uint64_t>(42));
    S.attr("frac", 0.5);
    S.attr("quote", std::string("a\"b"));
  }
  std::vector<obs::TraceEvent> Events = obs::Tracer::instance().snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_NE(Events[0].Args.find("\"wl\": \"li_like\""), std::string::npos);
  EXPECT_NE(Events[0].Args.find("\"n\": 42"), std::string::npos);
  EXPECT_NE(Events[0].Args.find("\"frac\": 0.5"), std::string::npos);
  EXPECT_NE(Events[0].Args.find("a\\\"b"), std::string::npos);
}

TEST(Trace, SpansCloseIndependentlyAcrossThreads) {
  TracerFixture Fix;
  constexpr int Threads = 6, PerThread = 50;
  std::vector<std::thread> Ts;
  for (int T = 0; T != Threads; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I != PerThread; ++I) {
        obs::Span Outer("thread.outer");
        obs::Span Inner("thread.inner");
      }
    });
  for (std::thread &T : Ts)
    T.join();
  std::vector<obs::TraceEvent> Events = obs::Tracer::instance().snapshot();
  EXPECT_EQ(Events.size(), static_cast<size_t>(Threads) * PerThread * 2);
  // Each recording thread got its own tid, and inner/outer pair up per tid.
  std::map<uint32_t, size_t> PerTid;
  for (const obs::TraceEvent &E : Events)
    ++PerTid[E.Tid];
  EXPECT_EQ(PerTid.size(), static_cast<size_t>(Threads));
  for (const auto &[Tid, N] : PerTid)
    EXPECT_EQ(N, static_cast<size_t>(PerThread) * 2) << "tid " << Tid;
}

TEST(Trace, BufferCapDropsAndCounts) {
  TracerFixture Fix;
  obs::Tracer::instance().setMaxEventsPerThread(10);
  for (int I = 0; I != 25; ++I)
    obs::Span S("cap.test");
  EXPECT_EQ(obs::Tracer::instance().eventCount(), 10u);
  EXPECT_EQ(obs::Tracer::instance().droppedCount(), 15u);
  obs::Tracer::instance().setMaxEventsPerThread(size_t(1) << 20);
}

// ---- Chrome trace parse-back ------------------------------------------------
//
// A deliberately small JSON reader: enough to validate the exporter's
// output structurally (balanced B/E per tid, monotonic timestamps, numeric
// ts values — NaN/Infinity are not valid JSON and fail the number parser).

struct JsonValue {
  enum Kind { Null, Bool, Number, String, Array, Object } K = Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::map<std::string, JsonValue> Obj;
};

class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : S(Text) {}

  bool parse(JsonValue &Out) {
    skipWs();
    if (!value(Out))
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  const std::string &S;
  size_t Pos = 0;

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Lit) {
    size_t N = std::strlen(Lit);
    if (S.compare(Pos, N, Lit) != 0)
      return false;
    Pos += N;
    return true;
  }

  bool value(JsonValue &Out) {
    skipWs();
    if (Pos >= S.size())
      return false;
    char C = S[Pos];
    if (C == '{')
      return object(Out);
    if (C == '[')
      return array(Out);
    if (C == '"') {
      Out.K = JsonValue::String;
      return string(Out.Str);
    }
    if (literal("true")) {
      Out.K = JsonValue::Bool;
      Out.B = true;
      return true;
    }
    if (literal("false")) {
      Out.K = JsonValue::Bool;
      Out.B = false;
      return true;
    }
    if (literal("null")) {
      Out.K = JsonValue::Null;
      return true;
    }
    return number(Out);
  }

  bool number(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() && (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
                              S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
                              S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return false;
    char *End = nullptr;
    std::string Tok = S.substr(Start, Pos - Start);
    Out.Num = std::strtod(Tok.c_str(), &End);
    Out.K = JsonValue::Number;
    return End && *End == '\0' && std::isfinite(Out.Num);
  }

  bool string(std::string &Out) {
    if (S[Pos] != '"')
      return false;
    ++Pos;
    Out.clear();
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        if (Pos + 1 >= S.size())
          return false;
        char E = S[Pos + 1];
        Pos += 2;
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          if (Pos + 4 > S.size())
            return false;
          Out += '?'; // Escaped control char; value irrelevant here.
          Pos += 4;
          break;
        }
        default:
          return false;
        }
        continue;
      }
      Out += S[Pos++];
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // closing quote
    return true;
  }

  bool array(JsonValue &Out) {
    Out.K = JsonValue::Array;
    ++Pos; // [
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      JsonValue V;
      if (!value(V))
        return false;
      Out.Arr.push_back(std::move(V));
      skipWs();
      if (Pos >= S.size())
        return false;
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool object(JsonValue &Out) {
    Out.K = JsonValue::Object;
    ++Pos; // {
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      std::string Key;
      if (Pos >= S.size() || !string(Key))
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return false;
      ++Pos;
      JsonValue V;
      if (!value(V))
        return false;
      Out.Obj[Key] = std::move(V);
      skipWs();
      if (Pos >= S.size())
        return false;
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }
};

/// Structural validation shared with the CI trace job's expectations:
/// parses, checks required members, per-tid B/E balance and monotonic
/// timestamps. Returns the number of B events.
size_t validateChromeTrace(const std::string &Json) {
  JsonParser P(Json);
  JsonValue Root;
  EXPECT_TRUE(P.parse(Root)) << "trace JSON failed to parse";
  EXPECT_EQ(Root.K, JsonValue::Object);
  auto It = Root.Obj.find("traceEvents");
  EXPECT_NE(It, Root.Obj.end());
  if (It == Root.Obj.end())
    return 0;
  EXPECT_EQ(It->second.K, JsonValue::Array);

  std::map<double, std::vector<std::string>> Stacks; // tid -> open span names
  std::map<double, double> LastTs;                   // tid -> last timestamp
  size_t Begins = 0;
  for (const JsonValue &Ev : It->second.Arr) {
    EXPECT_EQ(Ev.K, JsonValue::Object);
    bool HasAll = Ev.Obj.count("name") && Ev.Obj.count("ph") &&
                  Ev.Obj.count("tid") && Ev.Obj.count("ts");
    EXPECT_TRUE(HasAll) << "event missing a required member";
    if (!HasAll)
      return 0;
    const JsonValue &Ts = Ev.Obj.at("ts");
    EXPECT_EQ(Ts.K, JsonValue::Number);
    EXPECT_TRUE(std::isfinite(Ts.Num));
    double Tid = Ev.Obj.at("tid").Num;
    const std::string &Ph = Ev.Obj.at("ph").Str;
    const std::string &Name = Ev.Obj.at("name").Str;

    auto Last = LastTs.find(Tid);
    if (Last != LastTs.end()) {
      EXPECT_GE(Ts.Num, Last->second) << "timestamps not monotonic";
    }
    LastTs[Tid] = Ts.Num;

    if (Ph == "B") {
      ++Begins;
      Stacks[Tid].push_back(Name);
    } else {
      EXPECT_EQ(Ph, "E") << "unexpected phase " << Ph;
      EXPECT_FALSE(Stacks[Tid].empty()) << "E with no open B";
      if (Ph != "E" || Stacks[Tid].empty())
        return 0;
      EXPECT_EQ(Stacks[Tid].back(), Name) << "interleaved B/E";
      Stacks[Tid].pop_back();
    }
  }
  for (const auto &[Tid, Stack] : Stacks)
    EXPECT_TRUE(Stack.empty()) << "unbalanced spans on tid " << Tid;
  return Begins;
}

TEST(Trace, ChromeTraceParsesBackBalanced) {
  TracerFixture Fix;
  constexpr int Threads = 4, PerThread = 20;
  std::vector<std::thread> Ts;
  for (int T = 0; T != Threads; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I != PerThread; ++I) {
        obs::Span Outer("json.outer");
        Outer.attr("i", static_cast<uint64_t>(I));
        {
          obs::Span Inner("json.inner");
          Inner.attr("note", std::string("quote\" and \\slash"));
        }
      }
    });
  for (std::thread &T : Ts)
    T.join();

  std::string Json = obs::Tracer::instance().chromeTraceJson();
  size_t Begins = validateChromeTrace(Json);
  EXPECT_EQ(Begins, static_cast<size_t>(Threads) * PerThread * 2);
}

TEST(Trace, ChromeTraceEmptyIsValid) {
  TracerFixture Fix;
  EXPECT_EQ(validateChromeTrace(obs::Tracer::instance().chromeTraceJson()),
            0u);
}

TEST(Trace, SummaryTableAggregatesByName) {
  TracerFixture Fix;
  for (int I = 0; I != 3; ++I)
    obs::Span S("summary.stage");
  std::string Table = obs::Tracer::instance().summaryTable();
  EXPECT_NE(Table.find("summary.stage"), std::string::npos);
  EXPECT_NE(Table.find("3"), std::string::npos);
}

TEST(Trace, DisabledSpanAllocatesNothing) {
  obs::Tracer::instance().disable();
  // Warm the thread buffer path so lazily-initialized state is excluded.
  {
    obs::Span Warm("warm");
    Warm.attr("k", static_cast<uint64_t>(1));
  }
  uint64_t Before = GAllocs.load(std::memory_order_relaxed);
  for (int I = 0; I != 10000; ++I) {
    obs::Span S("fastpath");
    S.attr("n", static_cast<uint64_t>(I));
    S.attr("f", 0.25);
    S.attr("s", "literal");
  }
  uint64_t After = GAllocs.load(std::memory_order_relaxed);
  EXPECT_EQ(Before, After) << "disabled tracer allocated on the fast path";
  EXPECT_EQ(obs::Tracer::instance().eventCount(), 0u);
  obs::Tracer::instance().clear();
}

TEST(Trace, DisabledSpanRecordsNothing) {
  obs::Tracer::instance().disable();
  obs::Tracer::instance().clear();
  {
    obs::Span S("invisible");
  }
  EXPECT_EQ(obs::Tracer::instance().eventCount(), 0u);
}

TEST(Trace, WriteChromeTraceRoundTrips) {
  TracerFixture Fix;
  {
    obs::Span S("file.span");
  }
  std::string Path = ::testing::TempDir() + "/obs-trace-test.json";
  ASSERT_TRUE(obs::Tracer::instance().writeChromeTrace(Path));
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Json((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(validateChromeTrace(Json), 1u);
  std::remove(Path.c_str());
}

} // namespace
