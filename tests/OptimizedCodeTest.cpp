//===- tests/OptimizedCodeTest.cpp - analysis of -O1 code -----------------------//
//
// The paper evaluates both unoptimized and '-O' binaries (Tables 8/9/13)
// and reports the heuristic is "in general insensitive to compiler
// optimizations". These tests pin the mechanisms behind that: register
// promotion shrinks Lambda, turns memory-held loop pointers into register
// recurrences (criterion H4), and the flagged set keeps covering the
// misses.
//
//===----------------------------------------------------------------------===//

#include "classify/Delinquency.h"
#include "metrics/Metrics.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::masm;

namespace {

const char *PointerWalk =
    "struct Node { int v; struct Node *next; };"
    "struct Node *head;"
    "int main() {"
    "  struct Node *n; int i; int s;"
    "  for (i = 0; i < 2000; i = i + 1) {"
    "    n = (struct Node*)malloc(sizeof(struct Node));"
    "    n->v = i; n->next = head; head = n;"
    "  }"
    "  s = 0;"
    "  for (n = head; n != 0; n = n->next) s = s + n->v;"
    "  print_int(s);"
    "  return 0; }";

} // namespace

TEST(OptimizedCode, PromotionShrinksLambda) {
  auto M0 = test::compileOrDie(PointerWalk, 0);
  auto M1 = test::compileOrDie(PointerWalk, 1);
  ASSERT_TRUE(M0 && M1);
  EXPECT_LT(M1->countLoads(), M0->countLoads())
      << "-O1 must eliminate stack reload loads";
}

TEST(OptimizedCode, PromotedPointerWalkBecomesRecurrence) {
  auto M1 = test::compileOrDie(PointerWalk, 1);
  ASSERT_TRUE(M1);
  classify::ModuleAnalysis MA(*M1);

  // At -O1, n lives in an s-register; n = n->next is a loop-carried load
  // whose address pattern must contain the recurrence marker.
  bool SawRecurrentDeref = false;
  for (const auto &[Ref, Pats] : MA.loadPatterns())
    for (const ap::ApNode *P : Pats)
      if (ap::hasRecurrence(P))
        SawRecurrentDeref = true;
  EXPECT_TRUE(SawRecurrentDeref)
      << "register-promoted pointer chases must expose AG7 recurrences";
}

TEST(OptimizedCode, HeuristicStillCoversMissesAtO1) {
  for (unsigned Opt : {0u, 1u}) {
    auto M = test::compileOrDie(PointerWalk, Opt);
    ASSERT_TRUE(M);
    Layout L(*M);
    sim::MachineOptions MOpts;
    sim::Machine Mach(*M, L, MOpts);
    sim::RunResult R = Mach.run();
    ASSERT_EQ(R.Halt, sim::HaltReason::Exited);

    classify::ModuleAnalysis MA(*M);
    classify::ExecCountMap Execs;
    metrics::LoadStatsMap Stats = R.loadStats(*M);
    for (const auto &[Ref, S] : Stats)
      Execs[Ref] = S.Execs;
    classify::HeuristicOptions HOpts;
    auto Delta = MA.delinquentSet(HOpts, &Execs);
    auto E = metrics::evaluate(M->countLoads(), Delta, Stats);
    EXPECT_GT(E.rho(), 0.90) << "O" << Opt;
    EXPECT_LT(E.pi(), 0.60) << "O" << Opt;
  }
}

TEST(OptimizedCode, ByteScanLosesCoverageAtO1) {
  // The known weak spot (paper Table 13's gzip cliffs): a unit-stride byte
  // scan whose index is promoted has pattern "&buf + s-reg" — no deref, no
  // scaling (element size 1), only a recurrence (AG7 = 0.10, not > delta).
  const char *ByteScan =
      "char buf[65536];"
      "int main() {"
      "  int i; int s; s = 0;"
      "  for (i = 0; i < 65536; i = i + 1) s = s + buf[i];"
      "  print_int(s);"
      "  return 0; }";
  auto M1 = test::compileOrDie(ByteScan, 1);
  ASSERT_TRUE(M1);
  Layout L(*M1);
  sim::Machine Mach(*M1, L, sim::MachineOptions());
  sim::RunResult R = Mach.run();
  ASSERT_EQ(R.Halt, sim::HaltReason::Exited);
  ASSERT_GT(R.LoadMisses, 1000u) << "the scan must actually miss";

  classify::ModuleAnalysis MA(*M1);
  classify::HeuristicOptions HOpts;
  HOpts.UseFreqClasses = false;
  auto Delta = MA.delinquentSet(HOpts, nullptr);
  metrics::LoadStatsMap Stats = R.loadStats(*M1);
  auto E = metrics::evaluate(M1->countLoads(), Delta, Stats);
  EXPECT_LT(E.rho(), 0.5)
      << "optimized unit-stride byte scans evade the structural classes — "
         "the paper's own coverage dips";
}

TEST(OptimizedCode, MixedCallGraphStillCorrect) {
  // Promotion across a call-heavy program: results must match -O0.
  const char *Source =
      "int acc;"
      "int twist(int x) { return (x << 1) ^ (x >> 3); }"
      "int step(int x, int y) { return twist(x) + twist(y) * 3; }"
      "int main() {"
      "  int i; int h; h = 1;"
      "  for (i = 0; i < 500; i = i + 1) {"
      "    h = step(h, i);"
      "    acc = acc + (h & 15);"
      "  }"
      "  print_int(acc);"
      "  return 0; }";
  sim::RunResult R0 = test::compileAndRun(Source, 0);
  sim::RunResult R1 = test::compileAndRun(Source, 1);
  EXPECT_EQ(R0.Output, R1.Output);
  EXPECT_LT(R1.DataAccesses, R0.DataAccesses)
      << "-O1 must reduce memory traffic";
}
