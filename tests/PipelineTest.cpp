//===- tests/PipelineTest.cpp - end-to-end integration tests --------------------//
//
// Integration tests across the whole stack: MinC compilation, simulation,
// address patterns, heuristic, baselines, profiling and metrics — the same
// path the bench binaries take, verified on a few workloads with invariant
// checks rather than golden numbers.
//
//===----------------------------------------------------------------------===//

#include "baselines/Bdh.h"
#include "baselines/Okn.h"
#include "pipeline/Pipeline.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::pipeline;

namespace {

/// One shared driver: workload runs memoize across tests in this file.
Driver &driver() {
  static Driver D;
  return D;
}

constexpr const char *FastBench = "li_like";

} // namespace

TEST(Pipeline, CompileIsMemoized) {
  Driver &D = driver();
  const Compiled &A = D.compiled(FastBench, InputSel::Input1, 0);
  const Compiled &B = D.compiled(FastBench, InputSel::Input1, 0);
  EXPECT_EQ(&A, &B);
  const Compiled &C = D.compiled(FastBench, InputSel::Input2, 0);
  EXPECT_NE(&A, &C);
}

TEST(Pipeline, RunIsMemoizedPerCache) {
  Driver &D = driver();
  sim::CacheConfig C8 = sim::CacheConfig::baseline();
  sim::CacheConfig C16{16 * 1024, 4, 32};
  const sim::RunResult &A = D.run(FastBench, InputSel::Input1, 0, C8);
  const sim::RunResult &B = D.run(FastBench, InputSel::Input1, 0, C8);
  EXPECT_EQ(&A, &B);
  const sim::RunResult &C = D.run(FastBench, InputSel::Input1, 0, C16);
  EXPECT_NE(&A, &C);
  EXPECT_LE(C.LoadMisses, A.LoadMisses)
      << "a larger cache must not miss more on the same trace";
}

TEST(Pipeline, RunKeyCoversEveryGeometryField) {
  // Regression: geometries sharing SizeBytes must not alias in the run
  // cache — associativity and block size change miss counts too.
  Driver &D = driver();
  sim::CacheConfig Base = sim::CacheConfig::baseline(); // 8k, 4-way, 32B
  sim::CacheConfig OneWay{8 * 1024, 1, 32};
  sim::CacheConfig WideBlock{8 * 1024, 4, 64};
  const sim::RunResult &A = D.run(FastBench, InputSel::Input1, 0, Base);
  const sim::RunResult &B = D.run(FastBench, InputSel::Input1, 0, OneWay);
  const sim::RunResult &C = D.run(FastBench, InputSel::Input1, 0, WideBlock);
  EXPECT_NE(&A, &B);
  EXPECT_NE(&A, &C);
  EXPECT_NE(&B, &C);
  // Same trace either way.
  EXPECT_EQ(A.InstrsExecuted, B.InstrsExecuted);
  EXPECT_EQ(A.InstrsExecuted, C.InstrsExecuted);
  EXPECT_LE(A.LoadMisses, B.LoadMisses)
      << "dropping associativity at fixed size must not reduce misses";

  // The heuristic-eval cache must separate them as well.
  classify::HeuristicOptions Opts;
  const HeuristicEval &EA =
      D.evalHeuristic(FastBench, InputSel::Input1, 0, Base, Opts);
  const HeuristicEval &EB =
      D.evalHeuristic(FastBench, InputSel::Input1, 0, OneWay, Opts);
  EXPECT_NE(&EA, &EB);
}

TEST(Pipeline, GroundTruthConsistency) {
  Driver &D = driver();
  GroundTruth G =
      D.groundTruth(FastBench, InputSel::Input1, 0, sim::CacheConfig::baseline());
  const Compiled &C = D.compiled(FastBench, InputSel::Input1, 0);

  // Per-load stats must sum to the run totals.
  uint64_t SumMisses = 0, SumExecs = 0;
  for (const auto &[Ref, S] : G.Stats) {
    SumMisses += S.Misses;
    SumExecs += S.Execs;
  }
  EXPECT_EQ(SumMisses, G.R->LoadMisses);
  EXPECT_EQ(G.TotalLoadMisses, G.R->LoadMisses);
  EXPECT_EQ(G.Stats.size(), C.lambda());
  EXPECT_GT(SumExecs, 0u);
}

TEST(Pipeline, HeuristicBeatsBaselinesOnPrecision) {
  Driver &D = driver();
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  classify::HeuristicOptions Opts;

  double HeurPi = 0, OknPi = 0, BdhPi = 0;
  double HeurRho = 0;
  const char *Benchmarks[] = {"li_like", "mcf_like", "compress_like"};
  for (const char *Name : Benchmarks) {
    GroundTruth G = D.groundTruth(Name, InputSel::Input1, 0, Cache);
    const Compiled &C = D.compiled(Name, InputSel::Input1, 0);
    HeuristicEval H = D.evalHeuristic(Name, InputSel::Input1, 0, Cache, Opts);

    auto OknE = metrics::evaluate(
        C.lambda(), baselines::oknDelinquentSet(*C.Analysis), G.Stats);
    baselines::BdhAnalyzer Bdh(*C.Analysis);
    auto BdhE = metrics::evaluate(C.lambda(), Bdh.delinquentSet(), G.Stats);

    HeurPi += H.E.pi();
    HeurRho += H.E.rho();
    OknPi += OknE.pi();
    BdhPi += BdhE.pi();
  }
  HeurPi /= 3;
  HeurRho /= 3;
  OknPi /= 3;
  BdhPi /= 3;

  // The paper's headline: comparable coverage at a fraction of the loads.
  EXPECT_GT(HeurRho, 0.85);
  EXPECT_LT(HeurPi, OknPi);
  EXPECT_LT(HeurPi, BdhPi);
  EXPECT_LT(HeurPi, 0.20);
}

TEST(Pipeline, HotspotLoadsAreASmallSubset) {
  Driver &D = driver();
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  metrics::LoadSet Hot =
      D.hotspotLoads(FastBench, InputSel::Input1, 0, Cache, 0.90);
  const Compiled &C = D.compiled(FastBench, InputSel::Input1, 0);
  EXPECT_FALSE(Hot.empty());
  EXPECT_LT(Hot.size(), C.lambda() / 2)
      << "cold-library loads must fall outside the hotspot set";
}

TEST(Pipeline, HotspotCoverageGrowsWithFraction) {
  Driver &D = driver();
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  GroundTruth G = D.groundTruth(FastBench, InputSel::Input1, 0, Cache);
  const Compiled &C = D.compiled(FastBench, InputSel::Input1, 0);
  auto Rho = [&](double Frac) {
    metrics::LoadSet Hot =
        D.hotspotLoads(FastBench, InputSel::Input1, 0, Cache, Frac);
    return metrics::evaluate(C.lambda(), Hot, G.Stats).rho();
  };
  EXPECT_LE(Rho(0.50), Rho(0.90) + 1e-12);
  EXPECT_LE(Rho(0.90), Rho(0.99) + 1e-12);
}

TEST(Pipeline, DeltaShrinksAsThresholdRises) {
  Driver &D = driver();
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  size_t PrevSize = SIZE_MAX;
  for (double Delta : {0.10, 0.20, 0.30, 0.40}) {
    classify::HeuristicOptions Opts;
    Opts.Delta = Delta;
    HeuristicEval E =
        D.evalHeuristic(FastBench, InputSel::Input1, 0, Cache, Opts);
    EXPECT_LE(E.Delta.size(), PrevSize);
    PrevSize = E.Delta.size();
  }
}

TEST(Pipeline, NoFreqClassesGrowDelta) {
  Driver &D = driver();
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  classify::HeuristicOptions Full;
  classify::HeuristicOptions NoFreq;
  NoFreq.UseFreqClasses = false;
  HeuristicEval F = D.evalHeuristic(FastBench, InputSel::Input1, 0, Cache, Full);
  HeuristicEval N =
      D.evalHeuristic(FastBench, InputSel::Input1, 0, Cache, NoFreq);
  EXPECT_GE(N.Delta.size(), F.Delta.size())
      << "AG8/AG9 can only remove loads";
  // And the full Delta must be a subset of the static one.
  for (const auto &Ref : F.Delta)
    EXPECT_TRUE(N.Delta.count(Ref));
}

TEST(Pipeline, CoverageStableAcrossAssociativity) {
  Driver &D = driver();
  classify::HeuristicOptions Opts;
  double Prev = -1;
  for (uint32_t Assoc : {2u, 4u, 8u}) {
    sim::CacheConfig Cache{8 * 1024, Assoc, 32};
    HeuristicEval E =
        D.evalHeuristic(FastBench, InputSel::Input1, 0, Cache, Opts);
    EXPECT_GT(E.E.rho(), 0.85) << "assoc " << Assoc;
    if (Prev >= 0) {
      EXPECT_NEAR(E.E.rho(), Prev, 0.15);
    }
    Prev = E.E.rho();
  }
}

TEST(Pipeline, EvalKeyCoversEveryAnalysisKnob) {
  // Regression: the result-cache key of a heuristic evaluation must change
  // whenever any knob that affects the outcome changes — otherwise two
  // different configurations alias to one cached result.
  const uint64_t RunKey = 0x1234abcdu;
  classify::HeuristicOptions Base;
  ap::ApBuilderOptions ApBase;
  std::vector<uint64_t> Keys;
  Keys.push_back(Driver::evalKeyOf(RunKey, Base, ApBase));

  {
    classify::HeuristicOptions O = Base;
    O.Delta = 0.4;
    Keys.push_back(Driver::evalKeyOf(RunKey, O, ApBase));
  }
  {
    classify::HeuristicOptions O = Base;
    O.UseFreqClasses = !O.UseFreqClasses;
    Keys.push_back(Driver::evalKeyOf(RunKey, O, ApBase));
  }
  {
    classify::HeuristicOptions O = Base;
    O.RareBelow += 1;
    Keys.push_back(Driver::evalKeyOf(RunKey, O, ApBase));
  }
  {
    classify::HeuristicOptions O = Base;
    O.SeldomBelow += 1;
    Keys.push_back(Driver::evalKeyOf(RunKey, O, ApBase));
  }
  for (unsigned K = 0; K != 9; ++K) {
    classify::HeuristicOptions O = Base;
    O.Weights.W[K] += 0.125;
    Keys.push_back(Driver::evalKeyOf(RunKey, O, ApBase));
  }
  {
    ap::ApBuilderOptions A = ApBase;
    A.MaxPatternsPerLoad += 1;
    Keys.push_back(Driver::evalKeyOf(RunKey, Base, A));
  }
  {
    ap::ApBuilderOptions A = ApBase;
    A.MaxAltsPerUse += 1;
    Keys.push_back(Driver::evalKeyOf(RunKey, Base, A));
  }
  {
    ap::ApBuilderOptions A = ApBase;
    A.MaxDepth += 1;
    Keys.push_back(Driver::evalKeyOf(RunKey, Base, A));
  }
  // IPA on must key differently from off, and distinct k values from each
  // other.
  Keys.push_back(Driver::evalKeyOf(RunKey, Base, ApBase, true, 2));
  Keys.push_back(Driver::evalKeyOf(RunKey, Base, ApBase, true, 3));
  Keys.push_back(Driver::evalKeyOf(RunKey + 1, Base, ApBase));

  for (size_t I = 0; I != Keys.size(); ++I)
    for (size_t J = I + 1; J != Keys.size(); ++J)
      EXPECT_NE(Keys[I], Keys[J])
          << "knob variants " << I << " and " << J << " alias to one key";
}

TEST(Pipeline, EvalKeyWithIpaOffMatchesLegacyKey) {
  // Caches persisted before the IPA knob existed must stay valid: with IPA
  // disabled the key is computed exactly as it always was, whatever k says.
  const uint64_t RunKey = 0x9e3779b9u;
  classify::HeuristicOptions Base;
  ap::ApBuilderOptions ApBase;
  uint64_t Legacy = Driver::evalKeyOf(RunKey, Base, ApBase);
  EXPECT_EQ(Driver::evalKeyOf(RunKey, Base, ApBase, false, 0), Legacy);
  EXPECT_EQ(Driver::evalKeyOf(RunKey, Base, ApBase, false, 2), Legacy)
      << "k must be ignored while IPA is off";
  EXPECT_NE(Driver::evalKeyOf(RunKey, Base, ApBase, true, 2), Legacy);
}

TEST(Pipeline, RunKeyCoversPrefetchPolicyAndHints) {
  // Two armed runs differing only in engine policy (or static seeds) must
  // not alias in the persistent run cache.
  const std::string Src = "source", In = "input1";
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  metrics::LoadSet Armed;
  Armed.insert(masm::InstrRef{0, 4});

  std::vector<uint64_t> Keys;
  Keys.push_back(Driver::runKeyOf(Src, In, 0, Cache, 0, Armed,
                                  prefetch::Policy::None));
  Keys.push_back(Driver::runKeyOf(Src, In, 0, Cache, 0, Armed,
                                  prefetch::Policy::NextLine));
  Keys.push_back(Driver::runKeyOf(Src, In, 0, Cache, 0, Armed,
                                  prefetch::Policy::Pcax));
  Keys.push_back(Driver::runKeyOf(Src, In, 0, Cache, 0, Armed,
                                  prefetch::Policy::Oracle));
  {
    // Pcax with a seed differs from unseeded pcax, and seeds with different
    // facts differ from each other.
    prefetch::HintMap Hints;
    Hints[masm::InstrRef{0, 4}] = {prefetch::PatternClass::Stride, 4};
    Keys.push_back(Driver::runKeyOf(Src, In, 0, Cache, 0, Armed,
                                    prefetch::Policy::Pcax, &Hints));
    Hints[masm::InstrRef{0, 4}] = {prefetch::PatternClass::Stride, -32};
    Keys.push_back(Driver::runKeyOf(Src, In, 0, Cache, 0, Armed,
                                    prefetch::Policy::Pcax, &Hints));
    Hints[masm::InstrRef{0, 4}] = {prefetch::PatternClass::Pointer, 0};
    Keys.push_back(Driver::runKeyOf(Src, In, 0, Cache, 0, Armed,
                                    prefetch::Policy::Pcax, &Hints));
  }
  for (size_t I = 0; I != Keys.size(); ++I)
    for (size_t J = I + 1; J != Keys.size(); ++J)
      EXPECT_NE(Keys[I], Keys[J])
          << "policy/hint variants " << I << " and " << J << " alias";

  // Legacy compatibility: the armed next-line key with no hints is exactly
  // the default-argument key — warm caches from before the engine existed
  // stay valid.
  prefetch::HintMap Empty;
  uint64_t Legacy = Driver::runKeyOf(Src, In, 0, Cache, 0, Armed);
  EXPECT_EQ(Driver::runKeyOf(Src, In, 0, Cache, 0, Armed,
                             prefetch::Policy::NextLine, &Empty),
            Legacy);
  EXPECT_EQ(Driver::runKeyOf(Src, In, 0, Cache, 0, Armed,
                             prefetch::Policy::NextLine, nullptr),
            Legacy);
}

TEST(Pipeline, DistinctKnobsYieldDistinctCachedEvals) {
  // The end-to-end shape of the aliasing bug: two thresholds evaluated
  // back-to-back on one driver must not return the same Delta.
  Driver &D = driver();
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  classify::HeuristicOptions Loose;
  Loose.Delta = 0.10;
  classify::HeuristicOptions Tight;
  Tight.Delta = 0.40;
  const HeuristicEval &A =
      D.evalHeuristic("mcf_like", InputSel::Input1, 0, Cache, Loose);
  const HeuristicEval &B =
      D.evalHeuristic("mcf_like", InputSel::Input1, 0, Cache, Tight);
  EXPECT_NE(&A, &B) << "different knobs must occupy different cache slots";
  EXPECT_GE(A.Delta.size(), B.Delta.size())
      << "a looser threshold can never flag fewer loads";
}

TEST(Pipeline, EpsilonCombinationSharpensProfiling) {
  Driver &D = driver();
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  classify::HeuristicOptions Opts;
  GroundTruth G = D.groundTruth(FastBench, InputSel::Input1, 0, Cache);
  const Compiled &C = D.compiled(FastBench, InputSel::Input1, 0);
  HeuristicEval H = D.evalHeuristic(FastBench, InputSel::Input1, 0, Cache, Opts);
  metrics::LoadSet DeltaP =
      D.hotspotLoads(FastBench, InputSel::Input1, 0, Cache, 0.90);

  metrics::LoadSet Combined =
      metrics::combineWithProfiling(DeltaP, H.Delta, H.Scores, 0.0);
  auto CombE = metrics::evaluate(C.lambda(), Combined, G.Stats);
  auto ProfE = metrics::evaluate(C.lambda(), DeltaP, G.Stats);

  EXPECT_LE(CombE.DeltaSize, ProfE.DeltaSize)
      << "the combination must be at least as precise as profiling";
  EXPECT_GT(CombE.rho(), 0.75) << "while keeping most of the coverage";
}
