//===- tests/PrefetchTest.cpp - PC-indexed prefetch engine ----------------------//
//
// The prefetch engine's contract, policy by policy: the direction fix in the
// next-line prefetcher (descending sweeps used to prefetch backwards into
// visited blocks), the pcax stride/pointer schemes and their static seeds,
// the bit-identity of Record runs, and the oracle's next-miss lookahead
// ceiling. Programs are tiny assembly loops whose miss counts are exact.
//
//===----------------------------------------------------------------------===//

#include "classify/Delinquency.h"
#include "prefetch/Prefetch.h"
#include "prefetch/Seed.h"
#include "sim/Machine.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::masm;
using namespace dlq::sim;

namespace {

/// A descending word scan over 64kB: 2048 blocks touched high-to-low, one
/// load per block. The load is instruction 4 of main.
const char *DescendingScanAsm = R"(
        .data
arr:    .space 65536
        .text
        .globl main
main:
        la   $t2, arr
        li   $t0, 65504
        add  $t3, $t2, $t0
Lhead:
        lw   $t4, 0($t3)
        addi $t3, $t3, -32
        bge  $t3, $t2, Lhead
        li   $v0, 0
        jr   $ra
)";

RunResult runArmed(const Module &M, prefetch::Policy Pol,
                   std::vector<std::pair<InstrRef, prefetch::StaticHint>>
                       Arms = {{InstrRef{0, 3}, {}}},
                   std::shared_ptr<const prefetch::MissTrace> Trace = nullptr,
                   std::shared_ptr<const prefetch::MissTrace> *RecordedOut =
                       nullptr) {
  Layout L(M);
  MachineOptions Opts;
  Opts.PrefetchPolicy = Pol;
  for (const auto &[Ref, Hint] : Arms) {
    Opts.PrefetchLoads.insert(Ref);
    if (Hint.Class != prefetch::PatternClass::Unknown)
      Opts.PrefetchHints[Ref] = Hint;
  }
  Opts.OracleTrace = std::move(Trace);
  Machine Mach(M, L, Opts);
  RunResult R = Mach.run();
  if (RecordedOut)
    *RecordedOut = Mach.recordedTrace();
  return R;
}

//===----------------------------------------------------------------------===//
// Satellite fix: descending sweeps under the next-line policy
//===----------------------------------------------------------------------===//

TEST(PrefetchNextLine, ReverseSweepPrefetchesIntoTheWalk) {
  // Regression for the direction bug: the original prefetcher hardwired
  // `Addr + BlockBytes`, so a descending sweep prefetched the block it had
  // just visited — zero useful fills, no miss reduction. Direction-aware
  // next-line must hide all but the first block.
  auto M = test::parseAsmOrDie(DescendingScanAsm);
  ASSERT_TRUE(M);

  Layout L(*M);
  RunResult Base = Machine(*M, L, MachineOptions()).run();
  ASSERT_EQ(Base.Halt, HaltReason::Exited);
  EXPECT_EQ(Base.LoadMisses, 65536u / 32u) << "one miss per block unarmed";

  RunResult R = runArmed(*M, prefetch::Policy::NextLine);
  ASSERT_EQ(R.Halt, HaltReason::Exited);
  EXPECT_GT(R.PrefetchUseful, 0u)
      << "descending sweeps must produce useful fills after the fix";
  EXPECT_LE(R.LoadMisses, 2u) << "all but the first block arrive early";
  EXPECT_EQ(R.ExitCode, Base.ExitCode);
}

//===----------------------------------------------------------------------===//
// Pcax: stride scheme
//===----------------------------------------------------------------------===//

TEST(PrefetchPcax, SeededDescendingStrideCoversTheSweep) {
  auto M = test::parseAsmOrDie(DescendingScanAsm);
  ASSERT_TRUE(M);
  RunResult R = runArmed(
      *M, prefetch::Policy::Pcax,
      {{InstrRef{0, 3}, {prefetch::PatternClass::Stride, -32}}});
  ASSERT_EQ(R.Halt, HaltReason::Exited);
  EXPECT_LE(R.LoadMisses, 2u);
  EXPECT_GT(R.PrefetchUseful, 0u);
  ASSERT_EQ(R.PrefetchPerPc.size(), 1u) << "one armed slot";
  EXPECT_EQ(R.PrefetchPerPc[0].Issued, R.PrefetchesIssued);
}

TEST(PrefetchPcax, StrideBeyondBlockBeatsNextLine) {
  // A 64-byte stride touches every other block: next-line prefetches the
  // untouched neighbor (useless), the stride projection lands on the block
  // the walk visits next.
  const char *SparseScanAsm = R"(
        .data
arr:    .space 131072
        .text
        .globl main
main:
        la   $t2, arr
        li   $t0, 0
        li   $t1, 131072
Lhead:
        add  $t3, $t2, $t0
        lw   $t4, 0($t3)
        addi $t0, $t0, 64
        blt  $t0, $t1, Lhead
        li   $v0, 0
        jr   $ra
)";
  auto M = test::parseAsmOrDie(SparseScanAsm);
  ASSERT_TRUE(M);
  std::vector<std::pair<InstrRef, prefetch::StaticHint>> Strided = {
      {InstrRef{0, 4}, {prefetch::PatternClass::Stride, 64}}};
  RunResult NL = runArmed(*M, prefetch::Policy::NextLine, Strided);
  RunResult Px = runArmed(*M, prefetch::Policy::Pcax, Strided);
  ASSERT_EQ(NL.Halt, HaltReason::Exited);
  ASSERT_EQ(Px.Halt, HaltReason::Exited);
  EXPECT_GE(NL.LoadMisses, 2000u)
      << "next-line fills blocks the sparse walk never touches";
  EXPECT_LE(Px.LoadMisses, 64u) << "the projection hides the walk";
  EXPECT_LT(Px.LoadMisses, NL.LoadMisses);
}

//===----------------------------------------------------------------------===//
// Pcax: pointer scheme
//===----------------------------------------------------------------------===//

TEST(PrefetchPcax, PointerChaseThroughLoadedValue) {
  // 64 nodes, 96 bytes apart, linked along the full-period LCG permutation
  // idx' = (5*idx + 1) mod 64 — consecutive chase deltas vary, so no
  // constant stride describes the walk. After building the links, a sweep
  // over 64kB of scratch evicts every node; the chase then misses each node
  // header unless the pointer scheme prefetches through the loaded value.
  const char *ChaseAsm = R"(
        .data
nodes:  .space 8192
scr:    .space 65536
        .text
        .globl main
main:
        la   $t0, nodes
        li   $t1, 0
        li   $t9, 0
Lbuild:
        sll  $t2, $t9, 2
        add  $t2, $t2, $t9
        addi $t2, $t2, 1
        andi $t2, $t2, 63
        sll  $t3, $t9, 6
        sll  $t4, $t9, 5
        add  $t3, $t3, $t4
        add  $t3, $t0, $t3
        sll  $t5, $t2, 6
        sll  $t6, $t2, 5
        add  $t5, $t5, $t6
        add  $t5, $t0, $t5
        sw   $t5, 0($t3)
        move $t9, $t2
        addi $t1, $t1, 1
        li   $t7, 64
        blt  $t1, $t7, Lbuild
        la   $t2, scr
        li   $t1, 0
        li   $t7, 65536
Levict:
        add  $t3, $t2, $t1
        lw   $t4, 0($t3)
        addi $t1, $t1, 32
        blt  $t1, $t7, Levict
        move $t5, $t0
        li   $t1, 0
        li   $t7, 63
Lchase:
        lw   $t5, 0($t5)
        addi $t1, $t1, 1
        blt  $t1, $t7, Lchase
        li   $v0, 0
        jr   $ra
)";
  auto M = test::parseAsmOrDie(ChaseAsm);
  ASSERT_TRUE(M);
  InstrRef ChaseLw{0, 0};
  const Function &F = M->functions()[0];
  for (uint32_t I = 0; I != F.instrs().size(); ++I)
    if (isLoad(F.instrs()[I].Op))
      ChaseLw = InstrRef{0, I}; // last load in main = the chase lw
  ASSERT_NE(ChaseLw.InstrIdx, 0u);

  Layout L(*M);
  RunResult Base = Machine(*M, L, MachineOptions()).run();
  ASSERT_EQ(Base.Halt, HaltReason::Exited);

  RunResult R = runArmed(
      *M, prefetch::Policy::Pcax,
      {{ChaseLw, {prefetch::PatternClass::Pointer, 0}}});
  ASSERT_EQ(R.Halt, HaltReason::Exited);
  EXPECT_GE(R.PrefetchUseful, 40u)
      << "the loaded value predicts nearly every next node";
  EXPECT_LT(R.LoadMisses + 40, Base.LoadMisses)
      << "chasing through the value must hide most node headers";
  EXPECT_EQ(R.ExitCode, Base.ExitCode);
}

//===----------------------------------------------------------------------===//
// Record and Oracle
//===----------------------------------------------------------------------===//

TEST(PrefetchOracle, RecordIsBitIdenticalAndOracleCoversRandomWalk) {
  // An LCG walk over 32kB (1024 blocks, cache holds 256): no stride, no
  // pointer, nothing a table can learn — but the oracle knows each pc's
  // next future miss block from the recorded baseline.
  const char *WalkAsm = R"(
        .data
arr:    .space 32768
        .text
        .globl main
main:
        la   $t0, arr
        li   $t9, 0
        li   $t1, 0
Lhead:
        sll  $t2, $t9, 2
        add  $t2, $t2, $t9
        addi $t2, $t2, 1
        li   $t3, 1023
        and  $t2, $t2, $t3
        move $t9, $t2
        sll  $t3, $t9, 5
        add  $t3, $t0, $t3
        lw   $t4, 0($t3)
        addi $t1, $t1, 1
        li   $t5, 2048
        blt  $t1, $t5, Lhead
        li   $v0, 0
        jr   $ra
)";
  auto M = test::parseAsmOrDie(WalkAsm);
  ASSERT_TRUE(M);
  InstrRef WalkLw{0, 0};
  const Function &F = M->functions()[0];
  for (uint32_t I = 0; I != F.instrs().size(); ++I)
    if (isLoad(F.instrs()[I].Op))
      WalkLw = InstrRef{0, I};
  ASSERT_NE(WalkLw.InstrIdx, 0u);

  Layout L(*M);
  RunResult Base = Machine(*M, L, MachineOptions()).run();
  ASSERT_EQ(Base.Halt, HaltReason::Exited);
  EXPECT_GT(Base.LoadMisses, 1000u) << "the walk must defeat the cache";

  // Record: armed, but bit-identical to the unarmed baseline.
  std::shared_ptr<const prefetch::MissTrace> Trace;
  RunResult Rec = runArmed(*M, prefetch::Policy::Record, {{WalkLw, {}}},
                           nullptr, &Trace);
  ASSERT_EQ(Rec.Halt, HaltReason::Exited);
  EXPECT_EQ(Rec.LoadMisses, Base.LoadMisses);
  EXPECT_EQ(Rec.InstrsExecuted, Base.InstrsExecuted);
  EXPECT_EQ(Rec.ExitCode, Base.ExitCode);
  EXPECT_EQ(Rec.PrefetchesIssued, 0u);
  ASSERT_TRUE(Trace);
  ASSERT_EQ(Trace->PerSlot.size(), 1u);
  // The walk lw is the program's only load, so its trace holds every
  // baseline load miss.
  EXPECT_EQ(Trace->PerSlot[0].size(), static_cast<size_t>(Base.LoadMisses));

  // Pcax learns nothing from the walk; the oracle covers almost all of it.
  RunResult Px = runArmed(*M, prefetch::Policy::Pcax, {{WalkLw, {}}});
  RunResult Or = runArmed(*M, prefetch::Policy::Oracle, {{WalkLw, {}}},
                          Trace);
  ASSERT_EQ(Or.Halt, HaltReason::Exited);
  EXPECT_LE(Or.LoadMisses, 16u) << "next-miss lookahead hides the walk";
  EXPECT_LT(Or.LoadMisses, Px.LoadMisses);
  EXPECT_GT(Or.PrefetchUseful, 1000u);
}

//===----------------------------------------------------------------------===//
// Static seeds
//===----------------------------------------------------------------------===//

TEST(PrefetchSeed, HintsClassifyStrideAndPointerLoads) {
  auto M = test::compileOrDie(
      "struct Node { int val; struct Node *next; };"
      "struct Node *head;"
      "int arr[4096];"
      "int main() {"
      "  int i; int sum; struct Node *n; sum = 0;"
      "  for (i = 0; i < 4096; i = i + 1) sum = sum + arr[i];"
      "  for (n = head; n != 0; n = n->next) sum = sum + n->val;"
      "  return sum; }",
      1); // -O1: register promotion exposes the n = n->next recurrence
  ASSERT_TRUE(M);
  masm::Layout L(*M);
  classify::ModuleAnalysis MA(*M);
  prefetch::HintMap Hints =
      prefetch::buildStaticHints(*M, L, MA.loadPatterns());

  size_t AscendingStrides = 0, Pointers = 0;
  for (const auto &[Ref, H] : Hints) {
    if (H.Class == prefetch::PatternClass::Stride && H.StrideBytes == 4)
      ++AscendingStrides;
    if (H.Class == prefetch::PatternClass::Pointer)
      ++Pointers;
  }
  EXPECT_GT(AscendingStrides, 0u)
      << "the arr[i] walk must seed a +4 stride";
  EXPECT_GT(Pointers, 0u) << "the n->next chase must seed a pointer entry";
}

TEST(PrefetchSeed, PolicyNamesRoundTrip) {
  prefetch::Policy P = prefetch::Policy::None;
  EXPECT_TRUE(prefetch::policyFromString("pcax", P));
  EXPECT_EQ(P, prefetch::Policy::Pcax);
  EXPECT_TRUE(prefetch::policyFromString("nextline", P));
  EXPECT_EQ(P, prefetch::Policy::NextLine);
  EXPECT_TRUE(prefetch::policyFromString("none", P));
  EXPECT_EQ(P, prefetch::Policy::None);
  EXPECT_FALSE(prefetch::policyFromString("oracle", P))
      << "internal modes are not user-selectable";
  EXPECT_FALSE(prefetch::policyFromString("record", P));
  EXPECT_STREQ(prefetch::policyName(prefetch::Policy::Oracle), "oracle");
}

} // namespace
