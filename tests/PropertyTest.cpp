//===- tests/PropertyTest.cpp - randomized differential tests -------------------//
//
// Property-based suites:
//  * expression semantics: random MinC expressions are compiled at -O0 and
//    -O1, executed on the simulator, and checked against a host-side
//    evaluator with defined wrap-around semantics (differential testing of
//    lexer, parser, codegen, constant folding and the executor at once);
//  * cache model laws: exact miss counts for sequential scans, LRU
//    residency, and block-size effects.
//
//===----------------------------------------------------------------------===//

#include "sim/Cache.h"
#include "support/Format.h"
#include "support/Rng.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dlq;

//===----------------------------------------------------------------------===//
// Random expression generator with a parallel host evaluator
//===----------------------------------------------------------------------===//

namespace {

/// Wrapping 32-bit ops matching both C-on-twos-complement and the
/// simulator.
struct I32 {
  uint32_t Bits = 0;
  static I32 of(int64_t V) { return I32{static_cast<uint32_t>(V)}; }
  int32_t s() const { return static_cast<int32_t>(Bits); }
};

struct GenResult {
  std::string Text;
  I32 Value;
};

class ExprGen {
public:
  explicit ExprGen(uint64_t Seed) : R(Seed) {
    // Three named variables with random values.
    for (int I = 0; I != 3; ++I)
      Vars[I] = I32::of(R.nextInRange(-1000, 1000));
  }

  I32 varValue(int I) const { return Vars[I]; }

  GenResult gen(unsigned Depth) {
    if (Depth == 0 || R.nextBelow(4) == 0)
      return genLeaf();
    switch (R.nextBelow(8)) {
    case 0:
      return genUnary(Depth);
    case 1:
      return genTernary(Depth);
    case 2:
      return genDivRem(Depth);
    case 3:
      return genShift(Depth);
    default:
      return genBinary(Depth);
    }
  }

private:
  Rng R;
  I32 Vars[3];

  GenResult genLeaf() {
    if (R.nextBelow(2) == 0) {
      int I = static_cast<int>(R.nextBelow(3));
      return GenResult{std::string(1, static_cast<char>('a' + I)), Vars[I]};
    }
    int64_t V = R.nextBelow(8) == 0 ? R.nextInRange(-2000000000, 2000000000)
                                    : R.nextInRange(-100, 100);
    if (V < 0)
      return GenResult{formatString("(0 - %lld)", -(long long)V), I32::of(V)};
    return GenResult{formatString("%lld", (long long)V), I32::of(V)};
  }

  GenResult genUnary(unsigned Depth) {
    GenResult Sub = gen(Depth - 1);
    switch (R.nextBelow(3)) {
    case 0:
      return GenResult{"(-" + wrap(Sub.Text) + ")",
                       I32::of(-(int64_t)Sub.Value.s())};
    case 1:
      return GenResult{"(~" + wrap(Sub.Text) + ")", I32{~Sub.Value.Bits}};
    default:
      return GenResult{"(!" + wrap(Sub.Text) + ")",
                       I32::of(Sub.Value.Bits == 0 ? 1 : 0)};
    }
  }

  GenResult genTernary(unsigned Depth) {
    GenResult C = gen(Depth - 1);
    GenResult T = gen(Depth - 1);
    GenResult F = gen(Depth - 1);
    return GenResult{"(" + C.Text + " ? " + T.Text + " : " + F.Text + ")",
                     C.Value.Bits != 0 ? T.Value : F.Value};
  }

  GenResult genDivRem(unsigned Depth) {
    GenResult L = gen(Depth - 1);
    int64_t Div = R.nextInRange(1, 16);
    bool IsRem = R.nextBelow(2) == 0;
    int64_t Result = IsRem ? L.Value.s() % Div : L.Value.s() / Div;
    return GenResult{"(" + L.Text + (IsRem ? " % " : " / ") +
                         std::to_string(Div) + ")",
                     I32::of(Result)};
  }

  GenResult genShift(unsigned Depth) {
    GenResult L = gen(Depth - 1);
    int64_t Amount = R.nextInRange(0, 31);
    if (R.nextBelow(2) == 0)
      return GenResult{"(" + L.Text + " << " + std::to_string(Amount) + ")",
                       I32{L.Value.Bits << Amount}};
    // MinC >> is arithmetic (srav).
    return GenResult{"(" + L.Text + " >> " + std::to_string(Amount) + ")",
                     I32::of(static_cast<int64_t>(L.Value.s()) >> Amount)};
  }

  GenResult genBinary(unsigned Depth) {
    GenResult L = gen(Depth - 1);
    GenResult R2 = gen(Depth - 1);
    uint32_t A = L.Value.Bits, B = R2.Value.Bits;
    int32_t As = L.Value.s(), Bs = R2.Value.s();
    switch (R.nextBelow(11)) {
    case 0:
      return combine(L, "+", R2, I32{A + B});
    case 1:
      return combine(L, "-", R2, I32{A - B});
    case 2:
      return combine(L, "*", R2,
                     I32::of(static_cast<int64_t>(As) * Bs));
    case 3:
      return combine(L, "&", R2, I32{A & B});
    case 4:
      return combine(L, "|", R2, I32{A | B});
    case 5:
      return combine(L, "^", R2, I32{A ^ B});
    case 6:
      return combine(L, "==", R2, I32::of(A == B ? 1 : 0));
    case 7:
      return combine(L, "!=", R2, I32::of(A != B ? 1 : 0));
    case 8:
      return combine(L, "<", R2, I32::of(As < Bs ? 1 : 0));
    case 9:
      return combine(L, "&&", R2, I32::of(A != 0 && B != 0 ? 1 : 0));
    default:
      return combine(L, "||", R2, I32::of(A != 0 || B != 0 ? 1 : 0));
    }
  }

  static std::string wrap(const std::string &S) { return "(" + S + ")"; }
  static GenResult combine(const GenResult &L, const char *Op,
                           const GenResult &R, I32 V) {
    return GenResult{"(" + L.Text + " " + Op + " " + R.Text + ")", V};
  }
};

} // namespace

class ExprSemantics : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ExprSemantics,
                         ::testing::Range<uint64_t>(1, 25),
                         [](const auto &Info) {
                           return "seed" + std::to_string(Info.param);
                         });

TEST_P(ExprSemantics, CompiledMatchesHostEvaluator) {
  ExprGen Gen(GetParam());
  GenResult E = Gen.gen(5);

  // Deliver the result via print_int: the full 32-bit value survives.
  std::string Program = formatString(
      "int main() {"
      "  int a; int b; int c;"
      "  a = %d; b = %d; c = %d;"
      "  print_int(%s);"
      "  return 0; }",
      Gen.varValue(0).s(), Gen.varValue(1).s(), Gen.varValue(2).s(),
      E.Text.c_str());

  for (unsigned Opt : {0u, 1u}) {
    sim::RunResult R = test::compileAndRun(Program, Opt);
    ASSERT_EQ(R.Halt, sim::HaltReason::Exited)
        << "O" << Opt << " expr: " << E.Text;
    EXPECT_EQ(R.Output, formatString("%d\n", E.Value.s()))
        << "O" << Opt << " expr: " << E.Text;
  }
}

//===----------------------------------------------------------------------===//
// Cache model laws
//===----------------------------------------------------------------------===//

class CacheLaws : public ::testing::TestWithParam<uint32_t> {};

INSTANTIATE_TEST_SUITE_P(BlockSizes, CacheLaws,
                         ::testing::Values(16u, 32u, 64u),
                         [](const auto &Info) {
                           return "block" + std::to_string(Info.param);
                         });

TEST_P(CacheLaws, SequentialScanMissesOncePerBlock) {
  uint32_t Block = GetParam();
  sim::Cache C(sim::CacheConfig{8 * 1024, 4, Block});
  constexpr uint32_t Bytes = 64 * 1024;
  for (uint32_t A = 0; A < Bytes; A += 4)
    C.access(A);
  EXPECT_EQ(C.misses(), Bytes / Block);
  EXPECT_EQ(C.accesses(), Bytes / 4);
}

TEST_P(CacheLaws, ResidentWorkingSetHitsOnSecondPass) {
  uint32_t Block = GetParam();
  sim::CacheConfig Cfg{8 * 1024, 4, Block};
  sim::Cache C(Cfg);
  // A working set exactly the cache size, touched twice.
  for (int Pass = 0; Pass != 2; ++Pass)
    for (uint32_t A = 0; A < Cfg.SizeBytes; A += Block)
      C.access(A);
  EXPECT_EQ(C.misses(), Cfg.SizeBytes / Block)
      << "second pass must be all hits";
}

TEST_P(CacheLaws, ThrashingSetMissesEveryTime) {
  uint32_t Block = GetParam();
  sim::CacheConfig Cfg{8 * 1024, 4, Block};
  sim::Cache C(Cfg);
  // Assoc+1 blocks mapping to one set, accessed round-robin under true
  // LRU: every access misses after warmup.
  uint32_t SetStride = Cfg.numSets() * Block;
  for (int Round = 0; Round != 10; ++Round)
    for (uint32_t W = 0; W != Cfg.Assoc + 1; ++W)
      C.access(W * SetStride);
  EXPECT_EQ(C.hits(), 0u) << "LRU must thrash on assoc+1 conflict sets";
}

TEST(CacheLaws2, LargerCacheNeverMissesMoreOnAnyTrace) {
  Rng R(5);
  sim::Cache Small(sim::CacheConfig{4 * 1024, 4, 32});
  sim::Cache Large(sim::CacheConfig{32 * 1024, 4, 32});
  // LRU caches with the same block size and associativity scaled with sets
  // are not strictly inclusive in general, but on this random trace the
  // aggregate inequality must hold overwhelmingly; check totals.
  for (int I = 0; I != 50000; ++I) {
    uint32_t A = static_cast<uint32_t>(R.nextBelow(1 << 16));
    Small.access(A);
    Large.access(A);
  }
  EXPECT_LE(Large.misses(), Small.misses());
}
