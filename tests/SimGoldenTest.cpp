//===- tests/SimGoldenTest.cpp - interpreter differential regression ----------//
//
// Part of the delinq project: reproduction of "Static Identification of
// Delinquent Loads" (CGO 2004).
//
// Differential test pinning the interpreter's observable behaviour to golden
// values recorded from the pre-predecode (seed) interpreter. Every workload
// in the registry is compiled at -O0 and -O1 and run for up to 20M
// instructions; the halt reason, exit code, all aggregate counters, and FNV
// hashes of the per-PC execution/miss count vectors and the captured output
// must match exactly. Any change to decode, fusion, the memory backing or
// the cache model that shifts even one counter at one PC fails here.
//
// Regenerating (only when an intentional semantic change is made): print the
// row for each workload with the fields in the order of GoldenRow below;
// ExecHash/MissHash chain exec::Fnv1a::u64 over R.ExecCounts/R.MissCounts,
// OutputHash is exec::fnv1a over R.Output.
//
//===----------------------------------------------------------------------===//

#include "exec/Hash.h"
#include "masm/Module.h"
#include "mcc/Compiler.h"
#include "sim/Machine.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

using namespace dlq;

namespace {

struct GoldenRow {
  const char *Name;
  unsigned OptLevel;
  int Halt; ///< static_cast<int>(HaltReason).
  int32_t ExitCode;
  uint64_t InstrsExecuted;
  uint64_t DataAccesses;
  uint64_t LoadMisses;
  uint64_t StoreMisses;
  uint64_t ExecHash;
  uint64_t MissHash;
  uint64_t OutputHash;
};

/// Recorded from the seed interpreter: default MachineOptions (baseline
/// 8 KB D-cache, no I-cache, no prefetching), Input1, MaxInstrs = 20M.
const GoldenRow Golden[] = {
    {"espresso_like", 0, 0, 0, 12769752ull, 4950302ull, 65795ull, 3191ull, 0x9ef4ff80b751c40dull, 0xa91ded41a7f31d3eull, 0xfd1146e1074ccb5cull},
    {"espresso_like", 1, 0, 0, 12722601ull, 1399702ull, 65782ull, 3191ull, 0x4016602c392e5430ull, 0x7594f77f311062dull, 0xfd1146e1074ccb5cull},
    {"li_like", 0, 0, 0, 2349671ull, 1253506ull, 96652ull, 8444ull, 0x8568bef1f483a7a1ull, 0x84dce45327ee7d2eull, 0xf0c470c5cd90aabull},
    {"li_like", 1, 0, 0, 2350514ull, 338722ull, 96652ull, 8470ull, 0x4a6a8785eb52c08cull, 0x1ba69bf558571e0eull, 0xf0c470c5cd90aabull},
    {"sc_like", 0, 0, 0, 18636230ull, 8902070ull, 648256ull, 18587ull, 0x7c824ded7a961425ull, 0xaf855a12ccdf7271ull, 0x2d73d267a9749a30ull},
    {"sc_like", 1, 0, 0, 18637079ull, 2537212ull, 647927ull, 18587ull, 0x9189d7fcf50367b4ull, 0x5c5f01f9b9b006c1ull, 0x2d73d267a9749a30ull},
    {"go_like", 0, 0, 0, 9232298ull, 3674346ull, 54555ull, 15076ull, 0x24e99a5f65d91fbbull, 0x4114fea16f3c2217ull, 0x496e9ebf47a379fdull},
    {"go_like", 1, 0, 0, 8954679ull, 1899272ull, 54456ull, 15044ull, 0x77e94318c9a29b06ull, 0x8cf184ec2360f78eull, 0x496e9ebf47a379fdull},
    {"tomcatv_like", 0, 1, 0, 20000000ull, 5282771ull, 30077ull, 38963ull, 0x6d2c8bcf410f6f76ull, 0x380275645564cfddull, 0xcbf29ce484222325ull},
    {"tomcatv_like", 1, 1, 0, 20000000ull, 1522820ull, 30847ull, 39733ull, 0xc414775d57b32d62ull, 0x95a38371aac25faull, 0xcbf29ce484222325ull},
    {"m88ksim_like", 0, 1, 0, 20000000ull, 7426611ull, 28ull, 392ull, 0x9b9aabe24eba1161ull, 0x94bcd1dbf040e999ull, 0xcbf29ce484222325ull},
    {"m88ksim_like", 1, 1, 0, 20000000ull, 940796ull, 28ull, 392ull, 0xf57c2aa7c2e75acfull, 0x65d3b914d256a5b9ull, 0xcbf29ce484222325ull},
    {"gcc_like", 0, 0, 0, 6833701ull, 3158384ull, 109041ull, 14247ull, 0x4c84e6e01ddd05d7ull, 0x49e42c53828e1c27ull, 0xf6487ad712434874ull},
    {"gcc_like", 1, 0, 0, 8214334ull, 2830004ull, 109042ull, 14247ull, 0xe7a333b783a0ff22ull, 0xd98369f4fe797e0aull, 0xf6487ad712434874ull},
    {"compress_like", 0, 1, 0, 20000000ull, 7462826ull, 171709ull, 75384ull, 0xfd9f68e763129b6ull, 0x21b9922fe4297799ull, 0xcbf29ce484222325ull},
    {"compress_like", 1, 1, 0, 20000000ull, 1627371ull, 176412ull, 75554ull, 0xf835df3cc4f50d51ull, 0x9f57ffbda1b5bf15ull, 0xcbf29ce484222325ull},
    {"ijpeg_like", 0, 1, 0, 20000000ull, 7701286ull, 15775ull, 23968ull, 0x8de4d11dff0c19abull, 0x1ce1c7e7ee629eb5ull, 0xcbf29ce484222325ull},
    {"ijpeg_like", 1, 1, 0, 20000000ull, 1147134ull, 15884ull, 24077ull, 0xcdd4d136fefc1d4ull, 0xd6b74014439ef92dull, 0xcbf29ce484222325ull},
    {"vortex_like", 0, 0, 0, 7484681ull, 3720075ull, 372887ull, 16121ull, 0xc6f35200cbcb96daull, 0x2c624b9ac7a1133ull, 0x409553e29f8b4fe9ull},
    {"vortex_like", 1, 0, 0, 7725528ull, 1546882ull, 373267ull, 15701ull, 0xfd7cba109caf054full, 0x116d1cd9fc1c908eull, 0x409553e29f8b4fe9ull},
    {"gzip_like", 0, 1, 0, 20000000ull, 7843562ull, 369513ull, 11393ull, 0xf046319427b7dbfbull, 0x76db6a0680b901fdull, 0xcbf29ce484222325ull},
    {"gzip_like", 1, 1, 0, 20000000ull, 2011904ull, 375949ull, 11401ull, 0x11111495fcf31cbull, 0x42f619bf02e7b0f5ull, 0xcbf29ce484222325ull},
    {"vpr_like", 0, 1, 0, 20000000ull, 8564738ull, 408296ull, 28386ull, 0x5e45bf1bca43252cull, 0x761ead17c1955c61ull, 0xcbf29ce484222325ull},
    {"vpr_like", 1, 1, 0, 20000000ull, 2786990ull, 390285ull, 27585ull, 0xda168a924d02e2a3ull, 0xa337f7732a0edc9full, 0xcbf29ce484222325ull},
    {"art_like", 0, 1, 0, 20000000ull, 8508372ull, 73686ull, 4108ull, 0x6002cde553e86255ull, 0x22e11884f9cc7c5ull, 0xcbf29ce484222325ull},
    {"art_like", 1, 1, 0, 20000000ull, 1821206ull, 73932ull, 4108ull, 0x12b539461e0cb4d4ull, 0xbae31d5e17660070ull, 0xcbf29ce484222325ull},
    {"mcf_like", 0, 0, 0, 13024001ull, 7650666ull, 847280ull, 54460ull, 0x94bc89d1e97fa7f2ull, 0x4ad6ae430c42525eull, 0xdcfa5dfc59f08680ull},
    {"mcf_like", 1, 0, 0, 13024852ull, 2970354ull, 847156ull, 54461ull, 0xaa6e0e88e706a4e3ull, 0x1f4d9678d61f533cull, 0xdcfa5dfc59f08680ull},
    {"equake_like", 0, 1, 0, 20000000ull, 8069989ull, 601743ull, 27214ull, 0xe0e8a0e8872f13e0ull, 0x5b682d2d52be6e42ull, 0xcbf29ce484222325ull},
    {"equake_like", 1, 1, 0, 20000000ull, 2165296ull, 600785ull, 27165ull, 0x689e2f95d7022640ull, 0xd338cd7d9c455001ull, 0xcbf29ce484222325ull},
    {"ammp_like", 0, 1, 0, 20000000ull, 8520595ull, 745442ull, 10474ull, 0xe322231e87e6c1efull, 0x92a2f2542689068cull, 0xcbf29ce484222325ull},
    {"ammp_like", 1, 1, 0, 20000000ull, 3055827ull, 748325ull, 10354ull, 0x8092c26278fe7c1cull, 0xaca73d89778fb457ull, 0xcbf29ce484222325ull},
    {"parser_like", 0, 0, 0, 8267248ull, 4158235ull, 343417ull, 16213ull, 0xb4b12de0bb961dccull, 0x8e1ae180cbc10fd3ull, 0x57319efce9f0e86eull},
    {"parser_like", 1, 0, 0, 8748097ull, 1592679ull, 343339ull, 16213ull, 0x872026748cc5601dull, 0x804e68f89474b6fbull, 0x57319efce9f0e86eull},
    {"twolf_like", 0, 0, 0, 12965173ull, 5460341ull, 422575ull, 7104ull, 0x2215fb7e9bccc63eull, 0x210cea5191e1eb11ull, 0x7e088a2bd3390e2cull},
    {"twolf_like", 1, 0, 0, 12900484ull, 1479452ull, 422443ull, 7104ull, 0xc0d69b8bc51ef16bull, 0xe366d18609beff2aull, 0x7e088a2bd3390e2cull},
};

TEST(SimGolden, RegistryMatchesSeedInterpreter) {
  std::map<std::pair<std::string, unsigned>, const GoldenRow *> Index;
  for (const GoldenRow &Row : Golden)
    Index[{Row.Name, Row.OptLevel}] = &Row;

  size_t Checked = 0;
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    for (unsigned Opt : {0u, 1u}) {
      auto It = Index.find({W.Name, Opt});
      // New workloads added after the goldens were recorded are not pinned;
      // every recorded row must still exist in the registry (checked below).
      if (It == Index.end())
        continue;
      const GoldenRow &G = *It->second;
      SCOPED_TRACE(W.Name + " -O" + std::to_string(Opt));

      std::string Src = workloads::instantiate(W, W.Input1);
      mcc::CompileOptions MO;
      MO.OptLevel = Opt;
      mcc::CompileResult CR = mcc::compile(Src, MO);
      ASSERT_TRUE(CR.ok());
      masm::Layout L(*CR.M);
      sim::MachineOptions SO;
      SO.MaxInstrs = 20000000ull;
      sim::Machine Mach(*CR.M, L, SO);
      sim::RunResult R = Mach.run();

      EXPECT_EQ(static_cast<int>(R.Halt), G.Halt);
      EXPECT_EQ(R.ExitCode, G.ExitCode);
      EXPECT_EQ(R.InstrsExecuted, G.InstrsExecuted);
      EXPECT_EQ(R.DataAccesses, G.DataAccesses);
      EXPECT_EQ(R.LoadMisses, G.LoadMisses);
      EXPECT_EQ(R.StoreMisses, G.StoreMisses);
      // Default options simulate no I-cache and arm no prefetches.
      EXPECT_EQ(R.ICacheMisses, 0u);
      EXPECT_EQ(R.PrefetchesIssued, 0u);

      exec::Fnv1a ExecHash, MissHash;
      for (uint64_t C : R.ExecCounts)
        ExecHash.u64(C);
      for (uint64_t C : R.MissCounts)
        MissHash.u64(C);
      EXPECT_EQ(ExecHash.value(), G.ExecHash) << "per-PC exec counts diverged";
      EXPECT_EQ(MissHash.value(), G.MissHash) << "per-PC miss counts diverged";
      EXPECT_EQ(exec::fnv1a(R.Output.data(), R.Output.size()), G.OutputHash)
          << "captured output diverged: " << R.Output;
      ++Checked;
    }
  }
  EXPECT_EQ(Checked, std::size(Golden))
      << "a golden-pinned workload vanished from the registry";
}

} // namespace
