//===- tests/SimTest.cpp - memory, cache, machine, profile ---------------------//

#include "sim/Cache.h"
#include "sim/Machine.h"
#include "sim/Memory.h"
#include "sim/Profile.h"
#include "support/Rng.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace dlq;
using namespace dlq::sim;
using namespace dlq::masm;

//===----------------------------------------------------------------------===//
// Memory
//===----------------------------------------------------------------------===//

TEST(Memory, ZeroInitialized) {
  Memory M(Memory::Backing::Paged);
  EXPECT_EQ(M.readWord(0x10000000), 0u);
  EXPECT_EQ(M.readByte(0x7FFFFFFF), 0u);
  EXPECT_EQ(M.numPages(), 0u) << "reads must not materialize pages";
}

TEST(Memory, ReadWriteRoundTrip) {
  Memory M;
  M.writeWord(0x10000000, 0xDEADBEEF);
  EXPECT_EQ(M.readWord(0x10000000), 0xDEADBEEFu);
  EXPECT_EQ(M.readByte(0x10000000), 0xEFu) << "little-endian layout";
  EXPECT_EQ(M.readByte(0x10000003), 0xDEu);
  M.writeHalf(0x10000010, 0x1234);
  EXPECT_EQ(M.readHalf(0x10000010), 0x1234u);
  M.writeByte(0x10000020, 0x7F);
  EXPECT_EQ(M.readByte(0x10000020), 0x7Fu);
}

TEST(Memory, CrossPageAccess) {
  Memory M(Memory::Backing::Paged);
  uint32_t Addr = 2 * Memory::PageBytes - 2;
  M.writeWord(Addr, 0x11223344);
  EXPECT_EQ(M.readWord(Addr), 0x11223344u);
  EXPECT_EQ(M.numPages(), 2u);
}

/// Both backings must implement the identical guest-memory contract; run the
/// same probe against each. Covers the unaligned wrap-around at the top of
/// the 32-bit space, where the flat backing must not run off the end of its
/// host mapping.
static void checkMemoryContract(Memory &M) {
  M.writeWord(0x10000000, 0xDEADBEEF);
  EXPECT_EQ(M.readWord(0x10000000), 0xDEADBEEFu);
  EXPECT_EQ(M.readByte(0x10000000), 0xEFu);
  EXPECT_EQ(M.readWord(0x0FFFFFFE), 0xBEEF0000u) << "unaligned straddle";

  // Unaligned accesses at 0xFFFFFFFF wrap byte-wise to address 0.
  M.writeWord(0xFFFFFFFF, 0x04030201);
  EXPECT_EQ(M.readByte(0xFFFFFFFF), 0x01u);
  EXPECT_EQ(M.readByte(0x00000000), 0x02u);
  EXPECT_EQ(M.readByte(0x00000002), 0x04u);
  EXPECT_EQ(M.readWord(0xFFFFFFFF), 0x04030201u);
  EXPECT_EQ(M.readHalf(0xFFFFFFFF), 0x0201u);

  // writeBlock/zeroFill wrap the same way as byte-wise writes.
  const uint8_t Blk[4] = {0xAA, 0xBB, 0xCC, 0xDD};
  M.writeBlock(0xFFFFFFFE, Blk, 4);
  EXPECT_EQ(M.readByte(0xFFFFFFFE), 0xAAu);
  EXPECT_EQ(M.readByte(0xFFFFFFFF), 0xBBu);
  EXPECT_EQ(M.readByte(0x00000000), 0xCCu);
  EXPECT_EQ(M.readByte(0x00000001), 0xDDu);
  M.zeroFill(0xFFFFFFFE, 4);
  EXPECT_EQ(M.readWord(0xFFFFFFFE), 0u);
}

TEST(Memory, ContractPagedBacking) {
  Memory M(Memory::Backing::Paged);
  ASSERT_FALSE(M.isFlat());
  checkMemoryContract(M);
}

TEST(Memory, ContractAutoBacking) {
  Memory M;
  checkMemoryContract(M);
}

TEST(Memory, ZeroFillBulk) {
  // The calloc path: dirty a span, zeroFill it, and check the edges stay
  // intact. Sized to cross several pages.
  Memory M(Memory::Backing::Paged);
  uint32_t Base = 0x20000000;
  uint32_t Size = 3 * Memory::PageBytes + 123;
  for (uint32_t I = 0; I < Size + 8; I += 4)
    M.writeWord(Base - 4 + I, 0xFFFFFFFF);
  M.zeroFill(Base, Size);
  EXPECT_EQ(M.readWord(Base - 4), 0xFFFFFFFFu) << "byte before span intact";
  EXPECT_EQ(M.readByte(Base), 0u);
  EXPECT_EQ(M.readByte(Base + Size / 2), 0u);
  EXPECT_EQ(M.readByte(Base + Size - 1), 0u);
  EXPECT_EQ(M.readWord(Base + Size), 0xFFFFFFFFu) << "word after span intact";
}

TEST(Memory, WriteBlock) {
  Memory M;
  uint8_t Data[5] = {1, 2, 3, 4, 5};
  M.writeBlock(0x20000000, Data, 5);
  for (uint32_t I = 0; I != 5; ++I)
    EXPECT_EQ(M.readByte(0x20000000 + I), Data[I]);
}

//===----------------------------------------------------------------------===//
// Cache
//===----------------------------------------------------------------------===//

TEST(Cache, ConfigValidation) {
  EXPECT_TRUE((CacheConfig{8192, 4, 32}.valid()));
  EXPECT_TRUE(CacheConfig::training().valid());
  EXPECT_FALSE((CacheConfig{8192, 3, 32}.valid())) << "3 ways, 85.3 sets";
  EXPECT_FALSE((CacheConfig{100, 4, 32}.valid()));
  EXPECT_EQ(CacheConfig::training().numSets(), 256u);
  EXPECT_EQ(CacheConfig::baseline().numSets(), 64u);
}

// Regression: numSets() used to silently compute 0 when SizeBytes is not
// divisible by Assoc * BlockBytes, and Cache construction only asserted
// (compiled out in Release), so the constructor went on to mask and divide
// with 0. Geometry problems must be loud, unconditional errors.
TEST(Cache, InvalidGeometryIsRejectedLoudly) {
  // 1 KiB at 32 ways of 64-byte blocks: one way is 2 KiB > total size, so
  // numSets computes 0.
  CacheConfig ZeroSets{1024, 32, 64};
  EXPECT_EQ(ZeroSets.numSets(), 0u);
  EXPECT_FALSE(ZeroSets.valid());
  EXPECT_THROW(Cache{ZeroSets}, std::invalid_argument);

  // 24 KiB, 4-way, 32 B: divides to 192 sets — not a power of two.
  CacheConfig BadSets{24 * 1024, 4, 32};
  EXPECT_EQ(BadSets.numSets(), 192u);
  EXPECT_FALSE(BadSets.valid());
  EXPECT_NE(BadSets.validate().find("power of two"), std::string::npos);
  EXPECT_THROW(Cache{BadSets}, std::invalid_argument);

  // Zero fields and non-power-of-two blocks are named explicitly.
  EXPECT_FALSE((CacheConfig{8192, 0, 32}.valid()));
  EXPECT_THROW((Cache{CacheConfig{8192, 0, 32}}), std::invalid_argument);
  EXPECT_FALSE((CacheConfig{8192, 4, 24}.valid()));

  // Assoc * BlockBytes wrapping uint32 must not fake divisibility.
  CacheConfig Overflow{1u << 31, 1u << 16, 1u << 16};
  EXPECT_FALSE(Overflow.valid());

  // The widened camodel sweep's extreme-but-legal corners stay accepted.
  EXPECT_TRUE((CacheConfig{1024, 32, 32}.valid())) << "one set, 32 ways";
  EXPECT_TRUE((CacheConfig{1024 * 1024, 1, 32}.valid())) << "1 MiB direct";
  Cache OneSet(CacheConfig{1024, 32, 32});
  EXPECT_FALSE(OneSet.access(0));
  EXPECT_TRUE(OneSet.access(0));
}

TEST(Cache, ColdMissThenHit) {
  Cache C(CacheConfig{1024, 2, 32});
  EXPECT_FALSE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x1000));
  EXPECT_TRUE(C.access(0x101F)) << "same 32-byte block";
  EXPECT_FALSE(C.access(0x1020)) << "next block";
  EXPECT_EQ(C.misses(), 2u);
  EXPECT_EQ(C.hits(), 2u);
}

TEST(Cache, LruEviction) {
  // Direct construction of conflicting addresses: 2-way, 16 sets of 32B;
  // stride of 16*32 = 512 maps to the same set.
  Cache C(CacheConfig{1024, 2, 32});
  EXPECT_FALSE(C.access(0));
  EXPECT_FALSE(C.access(512));
  EXPECT_TRUE(C.access(0));
  EXPECT_TRUE(C.access(512));
  // Third conflicting block evicts the LRU (block 0).
  EXPECT_FALSE(C.access(1024));
  EXPECT_FALSE(C.access(0)) << "0 was evicted as LRU";
  EXPECT_TRUE(C.access(1024)) << "1024 must have survived";
}

TEST(Cache, FlushDropsContents) {
  Cache C(CacheConfig{1024, 2, 32});
  C.access(0);
  C.flush();
  EXPECT_FALSE(C.access(0));
  EXPECT_EQ(C.misses(), 2u) << "stats survive flush";
}

/// LRU stack property: with the same number of sets and block size, a cache
/// with higher associativity hits on a superset of the accesses. Sweep a
/// pseudo-random trace.
TEST(Cache, InclusionPropertyAcrossAssociativity) {
  Rng R(123);
  std::vector<uint32_t> Trace;
  for (int I = 0; I != 20000; ++I)
    Trace.push_back(static_cast<uint32_t>(R.nextBelow(1 << 16)));

  // 64 sets x 32B; assoc 2/4/8 => 4KB/8KB/16KB.
  Cache C2(CacheConfig{2 * 64 * 32, 2, 32});
  Cache C4(CacheConfig{4 * 64 * 32, 4, 32});
  Cache C8(CacheConfig{8 * 64 * 32, 8, 32});
  for (uint32_t A : Trace) {
    bool H2 = C2.access(A);
    bool H4 = C4.access(A);
    bool H8 = C8.access(A);
    EXPECT_LE(H2, H4) << "a 2-way hit must also hit 4-way";
    EXPECT_LE(H4, H8) << "a 4-way hit must also hit 8-way";
  }
}

/// Regression test for the empty-way sentinel at the very top of the address
/// space: tags are block addresses +1 with 0 meaning "empty way", so the +1
/// must not be able to wrap back to 0. With 32-bit tags, the last block
/// (byte 0xFFFFFFFF) would compute tag 0 and could never hit.
TEST(Cache, TopOfAddressSpaceBlockHits) {
  Cache C(CacheConfig{1024, 4, 32});
  for (uint32_t Off = 0; Off != 32; Off += 4)
    C.access(0xFFFFFFE0u + Off);
  EXPECT_EQ(C.misses(), 1u) << "one cold miss for the last 32-byte block";
  for (uint32_t Off = 0; Off != 32; Off += 4)
    EXPECT_TRUE(C.access(0xFFFFFFE0u + Off)) << "revisit must hit";
}

/// The tightest version of the same hazard: 1-byte blocks make the block
/// address equal the byte address, so block 0xFFFFFFFF is the one whose
/// 32-bit tag would wrap to the empty marker.
TEST(Cache, LastByteBlockIsCacheable) {
  Cache C(CacheConfig{1024, 4, 1});
  EXPECT_FALSE(C.access(0xFFFFFFFF));
  EXPECT_TRUE(C.access(0xFFFFFFFF)) << "tag +1 must not wrap to empty";
  EXPECT_EQ(C.misses(), 1u);
  EXPECT_EQ(C.hits(), 1u);
}

//===----------------------------------------------------------------------===//
// Machine
//===----------------------------------------------------------------------===//

TEST(Machine, RunsArithmetic) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        li  $t0, 6
        li  $t1, 7
        mul $v0, $t0, $t1
        jr  $ra
)");
  ASSERT_TRUE(M);
  Layout L(*M);
  Machine Mach(*M, L, MachineOptions());
  RunResult R = Mach.run();
  ASSERT_EQ(R.Halt, HaltReason::Exited);
  EXPECT_EQ(R.ExitCode, 42);
  EXPECT_EQ(R.InstrsExecuted, 4u);
}

TEST(Machine, LoadsAndStores) {
  auto M = test::parseAsmOrDie(R"(
        .data
g:      .word 10
        .text
        .globl main
main:
        la  $t0, g
        lw  $t1, 0($t0)
        addi $t1, $t1, 5
        sw  $t1, 0($t0)
        lw  $v0, 0($t0)
        jr  $ra
)");
  ASSERT_TRUE(M);
  Layout L(*M);
  Machine Mach(*M, L, MachineOptions());
  RunResult R = Mach.run();
  ASSERT_EQ(R.Halt, HaltReason::Exited);
  EXPECT_EQ(R.ExitCode, 15);
  EXPECT_EQ(R.DataAccesses, 3u);
  // First load misses (cold), second load hits.
  EXPECT_EQ(R.LoadMisses, 1u);
  EXPECT_EQ(R.StoreMisses, 0u);
}

TEST(Machine, CallAndReturn) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl double_it
double_it:
        add $v0, $a0, $a0
        jr  $ra
        .globl main
main:
        addi $sp, $sp, -8
        sw   $ra, 4($sp)
        li   $a0, 21
        jal  double_it
        lw   $ra, 4($sp)
        addi $sp, $sp, 8
        jr   $ra
)");
  ASSERT_TRUE(M);
  Layout L(*M);
  Machine Mach(*M, L, MachineOptions());
  RunResult R = Mach.run();
  ASSERT_EQ(R.Halt, HaltReason::Exited);
  EXPECT_EQ(R.ExitCode, 42);
}

TEST(Machine, RuntimeMallocFreeReuse) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        addi $sp, $sp, -8
        sw   $ra, 4($sp)
        li   $a0, 16
        jal  malloc
        move $s0, $v0
        move $a0, $s0
        jal  free
        li   $a0, 16
        jal  malloc
        xor  $v0, $v0, $s0
        lw   $ra, 4($sp)
        addi $sp, $sp, 8
        jr   $ra
)");
  ASSERT_TRUE(M);
  Layout L(*M);
  Machine Mach(*M, L, MachineOptions());
  RunResult R = Mach.run();
  ASSERT_EQ(R.Halt, HaltReason::Exited);
  EXPECT_EQ(R.ExitCode, 0) << "freed block should be reused for same size";
}

TEST(Machine, PrintAndExit) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        li  $a0, 123
        jal print_int
        li  $a0, 7
        jal exit
        li  $v0, 99
        jr  $ra
)");
  ASSERT_TRUE(M);
  Layout L(*M);
  Machine Mach(*M, L, MachineOptions());
  RunResult R = Mach.run();
  ASSERT_EQ(R.Halt, HaltReason::Exited);
  EXPECT_EQ(R.ExitCode, 7);
  EXPECT_EQ(R.Output, "123\n");
}

TEST(Machine, FuelLimit) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
Lspin:
        j Lspin
)");
  ASSERT_TRUE(M);
  Layout L(*M);
  MachineOptions Opts;
  Opts.MaxInstrs = 1000;
  Machine Mach(*M, L, Opts);
  RunResult R = Mach.run();
  EXPECT_EQ(R.Halt, HaltReason::FuelExhausted);
  EXPECT_EQ(R.InstrsExecuted, 1000u);
}

TEST(Machine, DivideByZeroTraps) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        li  $t0, 1
        div $v0, $t0, $zero
        jr  $ra
)");
  ASSERT_TRUE(M);
  Layout L(*M);
  Machine Mach(*M, L, MachineOptions());
  RunResult R = Mach.run();
  EXPECT_EQ(R.Halt, HaltReason::Trapped);
}

TEST(Machine, UnknownCallTraps) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        jal nosuchfn
        jr  $ra
)");
  ASSERT_TRUE(M);
  Layout L(*M);
  Machine Mach(*M, L, MachineOptions());
  RunResult R = Mach.run();
  EXPECT_EQ(R.Halt, HaltReason::Trapped);
  EXPECT_NE(R.TrapMessage.find("nosuchfn"), std::string::npos);
}

TEST(Machine, PerPcLoadStats) {
  auto M = test::parseAsmOrDie(R"(
        .data
arr:    .space 65536
        .text
        .globl main
main:
        li   $t0, 0
        li   $t1, 65536
        la   $t2, arr
Lhead:
        add  $t3, $t2, $t0
        lw   $t4, 0($t3)
        addi $t0, $t0, 4
        blt  $t0, $t1, Lhead
        li   $v0, 0
        jr   $ra
)");
  ASSERT_TRUE(M);
  Layout L(*M);
  MachineOptions Opts;
  Opts.DCache = CacheConfig{8192, 4, 32};
  Machine Mach(*M, L, Opts);
  RunResult R = Mach.run();
  ASSERT_EQ(R.Halt, HaltReason::Exited);

  auto Stats = R.loadStats(*M);
  ASSERT_EQ(Stats.size(), 1u);
  const LoadStat &S = Stats.begin()->second;
  EXPECT_EQ(S.Execs, 16384u);
  // Sequential scan of 64KB with 32B blocks: one miss per block.
  EXPECT_EQ(S.Misses, 65536u / 32u);
}

//===----------------------------------------------------------------------===//
// BlockProfile
//===----------------------------------------------------------------------===//

TEST(BlockProfile, CyclesAndHotspots) {
  auto M = test::parseAsmOrDie(R"(
        .data
arr:    .space 4096
        .text
        .globl main
main:
        li   $t0, 0
        li   $t1, 1000
        la   $t2, arr
Lhead:
        andi $t3, $t0, 1023
        add  $t3, $t2, $t3
        lw   $t4, 0($t3)
        addi $t0, $t0, 1
        blt  $t0, $t1, Lhead
        li   $v0, 0
        jr   $ra
)");
  ASSERT_TRUE(M);
  Layout L(*M);
  Machine Mach(*M, L, MachineOptions());
  RunResult R = Mach.run();
  ASSERT_EQ(R.Halt, HaltReason::Exited);

  std::vector<cfg::Cfg> Cfgs = buildAllCfgs(*M);
  BlockProfile P(*M, Cfgs, R);
  EXPECT_EQ(P.totalCycles(), R.InstrsExecuted);

  // The loop body block dominates the cycle count; the hotspot set at 90%
  // must contain its load.
  auto Hot = P.hotspotLoads(0.90);
  ASSERT_EQ(Hot.size(), 1u);
  EXPECT_EQ(M->instrAt(*Hot.begin()).Op, Opcode::Lw);

  // Entry block runs once.
  EXPECT_EQ(P.blockEntries(BlockRef{0, 0}), 1u);
  EXPECT_EQ(P.execCount(InstrRef{0, 0}), 1u);
  EXPECT_EQ(P.execCount(InstrRef{0, 5}), 1000u);
}
