//===- tests/SupportTest.cpp - support library tests --------------------------//

#include "support/Arena.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <set>

using namespace dlq;

TEST(Format, Basic) {
  EXPECT_EQ(formatString("x=%d y=%s", 42, "hi"), "x=42 y=hi");
  EXPECT_EQ(formatString("%s", ""), "");
}

TEST(Format, Percent) {
  EXPECT_EQ(formatPercent(0.1015), "10.15%");
  EXPECT_EQ(formatPercent(0.9, 0), "90%");
  EXPECT_EQ(formatPercent(1.0, 1), "100.0%");
}

TEST(Format, Scientific) {
  EXPECT_EQ(formatScientific(729000000ull), "7.29e+08");
  EXPECT_EQ(formatScientific(0), "0.00e+00");
}

TEST(Format, Commas) {
  EXPECT_EQ(formatWithCommas(0), "0");
  EXPECT_EQ(formatWithCommas(999), "999");
  EXPECT_EQ(formatWithCommas(1000), "1,000");
  EXPECT_EQ(formatWithCommas(16354), "16,354");
  EXPECT_EQ(formatWithCommas(121112345), "121,112,345");
}

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDiff = false;
  for (int I = 0; I != 10; ++I)
    AnyDiff |= A.next() != B.next();
  EXPECT_TRUE(AnyDiff);
}

TEST(Rng, RangeBounds) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
  }
}

TEST(Rng, BelowBounds) {
  Rng R(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 1000; ++I) {
    uint64_t V = R.nextBelow(7);
    EXPECT_LT(V, 7u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 7u) << "all residues should appear in 1000 draws";
}

TEST(Rng, DoubleUnit) {
  Rng R(11);
  for (int I = 0; I != 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Arena, AllocatesAligned) {
  Arena A;
  void *P1 = A.allocate(3, 1);
  void *P2 = A.allocate(8, 8);
  EXPECT_NE(P1, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P2) % 8, 0u);
  EXPECT_EQ(A.bytesAllocated(), 11u);
}

TEST(Arena, LargeAllocationsGetOwnSlab) {
  Arena A;
  void *P = A.allocate(1024 * 1024, 8);
  EXPECT_NE(P, nullptr);
  // Must still be able to allocate small things.
  EXPECT_NE(A.allocate(16, 4), nullptr);
}

TEST(Arena, CreateObjects) {
  Arena A;
  struct Point {
    int X, Y;
  };
  Point *P = A.create<Point>(Point{1, 2});
  EXPECT_EQ(P->X, 1);
  EXPECT_EQ(P->Y, 2);
}

TEST(Table, RendersAligned) {
  TextTable T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"bbb", "22"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("bbb"), std::string::npos);
  // Each line has the same length.
  size_t FirstNl = Out.find('\n');
  ASSERT_NE(FirstNl, std::string::npos);
  size_t LineLen = FirstNl;
  size_t Pos = 0;
  while (Pos < Out.size()) {
    size_t Nl = Out.find('\n', Pos);
    ASSERT_NE(Nl, std::string::npos);
    EXPECT_EQ(Nl - Pos, LineLen);
    Pos = Nl + 1;
  }
}

TEST(Table, ShortRowsPad) {
  TextTable T({"a", "b", "c"});
  T.addRow({"x"});
  EXPECT_EQ(T.numRows(), 1u);
  EXPECT_NE(T.render().find('x'), std::string::npos);
}
