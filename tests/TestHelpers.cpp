//===- tests/TestHelpers.cpp --------------------------------------------------//

#include "TestHelpers.h"

#include "masm/Parser.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::test;

std::unique_ptr<masm::Module> test::compileOrDie(std::string_view Source,
                                                 unsigned OptLevel) {
  mcc::CompileOptions Opts;
  Opts.OptLevel = OptLevel;
  mcc::CompileResult R = mcc::compile(Source, Opts);
  EXPECT_TRUE(R.ok()) << "compile failed:\n" << R.Errors;
  return std::move(R.M);
}

sim::RunResult test::compileAndRun(std::string_view Source, unsigned OptLevel,
                                   sim::MachineOptions Opts) {
  std::unique_ptr<masm::Module> M = compileOrDie(Source, OptLevel);
  if (!M)
    return sim::RunResult();
  masm::Layout L(*M);
  sim::Machine Machine(*M, L, Opts);
  sim::RunResult R = Machine.run();
  EXPECT_EQ(R.Halt, sim::HaltReason::Exited) << "trap: " << R.TrapMessage;
  return R;
}

std::unique_ptr<masm::Module> test::parseAsmOrDie(std::string_view Source) {
  masm::ParseResult R = masm::parseAssembly(Source);
  EXPECT_TRUE(R.ok()) << "assembly parse failed:\n" << R.diagText();
  return std::move(R.M);
}
