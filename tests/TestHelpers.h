//===- tests/TestHelpers.h - Shared test utilities ---------------------------//
//
// Part of the delinq project test suite.
//
//===----------------------------------------------------------------------===//

#ifndef DLQ_TESTS_TESTHELPERS_H
#define DLQ_TESTS_TESTHELPERS_H

#include "masm/Module.h"
#include "mcc/Compiler.h"
#include "sim/Machine.h"

#include <memory>
#include <string>
#include <string_view>

namespace dlq {
namespace test {

/// Compiles MinC source, failing the test on diagnostics.
std::unique_ptr<masm::Module> compileOrDie(std::string_view Source,
                                           unsigned OptLevel = 0);

/// Compiles and runs a MinC program; returns the run result. Fails the test
/// if compilation fails or the program traps.
sim::RunResult compileAndRun(std::string_view Source, unsigned OptLevel = 0,
                             sim::MachineOptions Opts = sim::MachineOptions());

/// Parses assembly text, failing the test on diagnostics.
std::unique_ptr<masm::Module> parseAsmOrDie(std::string_view Source);

} // namespace test
} // namespace dlq

#endif // DLQ_TESTS_TESTHELPERS_H
