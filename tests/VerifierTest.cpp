//===- tests/VerifierTest.cpp - module verifier tests ---------------------------//

#include "masm/Verifier.h"

#include "masm/ObjectFile.h"
#include "workloads/Workloads.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace dlq;
using namespace dlq::masm;

TEST(Verifier, CompiledModulesAreClean) {
  auto M = test::compileOrDie(
      "struct Node { int v; struct Node *next; };"
      "struct Node *head;"
      "int table[64];"
      "int walk(struct Node *n) {"
      "  int s; s = 0;"
      "  while (n != 0) { s = s + n->v + table[n->v & 63]; n = n->next; }"
      "  return s; }"
      "int main() { return walk(head); }",
      0);
  ASSERT_TRUE(M);
  auto Issues = verifyModule(*M);
  EXPECT_TRUE(Issues.empty()) << verifyReport(Issues);
}

TEST(Verifier, AllWorkloadsAreCleanAtBothOptLevels) {
  for (const auto &W : workloads::allWorkloads()) {
    std::string Source = workloads::instantiate(W, W.Input1);
    for (unsigned Opt : {0u, 1u}) {
      auto M = test::compileOrDie(Source, Opt);
      ASSERT_TRUE(M);
      auto Issues = verifyModule(*M);
      EXPECT_TRUE(Issues.empty())
          << W.Name << " O" << Opt << ":\n" << verifyReport(Issues);
    }
  }
}

TEST(Verifier, FlagsUnknownCallTarget) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        jal nosuch
        jr  $ra
)");
  ASSERT_TRUE(M);
  auto Issues = verifyModule(*M);
  ASSERT_EQ(Issues.size(), 1u);
  EXPECT_NE(Issues[0].Message.find("nosuch"), std::string::npos);
  EXPECT_EQ(Issues[0].Location, "main+0");
}

TEST(Verifier, AcceptsRuntimeServices) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        li  $a0, 8
        jal malloc
        jal rand
        jr  $ra
)");
  ASSERT_TRUE(M);
  EXPECT_TRUE(verifyModule(*M).empty());
}

TEST(Verifier, FlagsUnknownLaSymbol) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        la $t0, ghost
        jr $ra
)");
  ASSERT_TRUE(M);
  auto Issues = verifyModule(*M);
  ASSERT_EQ(Issues.size(), 1u);
  EXPECT_NE(Issues[0].Message.find("ghost"), std::string::npos);
}

TEST(Verifier, FlagsFallOffEnd) {
  auto M = test::parseAsmOrDie(R"(
        .text
        .globl main
main:
        li $v0, 1
)");
  ASSERT_TRUE(M);
  auto Issues = verifyModule(*M);
  ASSERT_EQ(Issues.size(), 1u);
  EXPECT_NE(Issues[0].Message.find("fall off"), std::string::npos);
}

TEST(Verifier, FlagsEmptyFunction) {
  Module M;
  M.addFunction("empty");
  auto Issues = verifyModule(M);
  ASSERT_EQ(Issues.size(), 1u);
  EXPECT_NE(Issues[0].Message.find("no instructions"), std::string::npos);
}

TEST(Verifier, FlagsOversizedInitializer) {
  Module M;
  Global G;
  G.Name = "g";
  G.Size = 4;
  G.Init.assign(8, 0);
  M.addGlobal(std::move(G));
  auto Issues = verifyModule(M);
  ASSERT_EQ(Issues.size(), 1u);
  EXPECT_NE(Issues[0].Message.find("initializer"), std::string::npos);
}

TEST(Verifier, FlagsOverlappingFrameVars) {
  Module M;
  Function &F = M.addFunction("f");
  Instr Ret;
  Ret.Op = Opcode::Jr;
  Ret.Rs = Reg::RA;
  F.append(Ret);
  FunctionTypeInfo &FTI = M.typeInfo().functionInfo("f");
  FTI.Vars.push_back(FrameVar{0, VarType{VarKind::Scalar, 8, false, {}}});
  FTI.Vars.push_back(FrameVar{4, VarType{VarKind::Scalar, 4, false, {}}});
  auto Issues = verifyModule(M);
  ASSERT_EQ(Issues.size(), 1u);
  EXPECT_NE(Issues[0].Message.find("overlap"), std::string::npos);
}

TEST(Verifier, DecodedObjectFilesAreClean) {
  auto M = test::compileOrDie("int a[32];"
                              "int main() { int i;"
                              "  for (i = 0; i < 32; i = i + 1) a[i] = i;"
                              "  return a[7]; }",
                              0);
  ASSERT_TRUE(M);
  DecodeResult D = decodeModule(encodeModule(*M));
  ASSERT_TRUE(D.ok()) << D.Error;
  auto Issues = verifyModule(*D.M);
  EXPECT_TRUE(Issues.empty()) << verifyReport(Issues);
}
