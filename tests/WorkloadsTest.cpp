//===- tests/WorkloadsTest.cpp - benchmark suite tests --------------------------//
//
// Each workload is compiled and executed at a reduced scale; the full-scale
// parameters are exercised by the bench binaries. Parameterized over all
// eighteen workloads.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <set>

using namespace dlq;
using namespace dlq::workloads;

TEST(Workloads, RegistryShape) {
  EXPECT_EQ(allWorkloads().size(), 18u);
  EXPECT_EQ(trainingSetNames().size(), 11u);
  EXPECT_EQ(testSetNames().size(), 7u);

  // Training and test sets partition the registry.
  std::set<std::string> All;
  for (const Workload &W : allWorkloads())
    All.insert(W.Name);
  std::set<std::string> Union;
  for (const std::string &N : trainingSetNames()) {
    EXPECT_TRUE(All.count(N)) << N;
    EXPECT_TRUE(Union.insert(N).second) << "duplicate: " << N;
  }
  for (const std::string &N : testSetNames()) {
    EXPECT_TRUE(All.count(N)) << N;
    EXPECT_TRUE(Union.insert(N).second) << "duplicate: " << N;
  }
  EXPECT_EQ(Union.size(), 18u);
}

TEST(Workloads, FindByName) {
  EXPECT_NE(findWorkload("mcf_like"), nullptr);
  EXPECT_EQ(findWorkload("mcf_like")->PaperAnalog, "181.mcf");
  EXPECT_EQ(findWorkload("no_such"), nullptr);
}

TEST(Workloads, InstantiateSubstitutesAllParams) {
  for (const Workload &W : allWorkloads()) {
    std::string Source = instantiate(W, W.Input1);
    EXPECT_EQ(Source.find('$'), std::string::npos)
        << W.Name << " left an unsubstituted parameter";
    EXPECT_NE(Source.find("workload_main"), std::string::npos) << W.Name;
    EXPECT_NE(Source.find("cold_report"), std::string::npos)
        << W.Name << " must link the cold library";
  }
}

TEST(Workloads, LongestNameSubstitutesFirst) {
  Workload W;
  W.Name = "t";
  static const char *Src = "int a[$N]; int b[$NN];";
  W.Source = Src;
  W.Input1 = WorkloadInput{"input1", {{"N", 3}, {"NN", 7}}};
  // Without longest-first ordering, $NN would become "3N".
  std::string Out = instantiate(W, W.Input1);
  EXPECT_NE(Out.find("int a[3]"), std::string::npos) << Out;
  EXPECT_NE(Out.find("int b[7]"), std::string::npos) << Out;
}

//===----------------------------------------------------------------------===//
// Every workload compiles and runs (reduced-size inputs)
//===----------------------------------------------------------------------===//

namespace {

/// Shrinks a workload's input so tests stay fast: iteration-ish parameters
/// are divided by 10 (sizes are kept so the code paths stay identical).
WorkloadInput shrunk(const Workload &W) {
  WorkloadInput In = W.Input1;
  for (auto &[Name, Value] : In.Params) {
    bool IsIterations =
        Name == "ITERS" || Name == "OPS" || Name == "MOVES" ||
        Name == "PASSES" || Name == "STEPS" || Name == "TXNS" ||
        Name == "LOOKUPS" || Name == "NSYMBOLS" || Name == "PRESENTATIONS";
    if (IsIterations)
      Value = std::max(1L, Value / 10);
  }
  return In;
}

} // namespace

class WorkloadExec : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadExec,
    ::testing::ValuesIn([] {
      std::vector<std::string> Names;
      for (const Workload &W : allWorkloads())
        Names.push_back(W.Name);
      return Names;
    }()),
    [](const auto &Info) { return Info.param; });

TEST_P(WorkloadExec, CompilesAndRunsAtBothOptLevels) {
  const Workload &W = *findWorkload(GetParam());
  WorkloadInput In = shrunk(W);
  std::string Source = instantiate(W, In);

  sim::MachineOptions Opts;
  Opts.MaxInstrs = 100'000'000;
  sim::RunResult R0 = test::compileAndRun(Source, 0, Opts);
  sim::RunResult R1 = test::compileAndRun(Source, 1, Opts);

  EXPECT_EQ(R0.Halt, sim::HaltReason::Exited);
  EXPECT_FALSE(R0.Output.empty()) << "workloads must print a checksum";
  EXPECT_EQ(R0.Output, R1.Output)
      << "-O1 must preserve the program's observable behaviour";
  EXPECT_GT(R0.DataAccesses, 0u);
}

TEST_P(WorkloadExec, DeterministicAcrossRuns) {
  const Workload &W = *findWorkload(GetParam());
  WorkloadInput In = shrunk(W);
  std::string Source = instantiate(W, In);
  sim::MachineOptions Opts;
  Opts.MaxInstrs = 100'000'000;
  sim::RunResult A = test::compileAndRun(Source, 0, Opts);
  sim::RunResult B = test::compileAndRun(Source, 0, Opts);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.InstrsExecuted, B.InstrsExecuted);
  EXPECT_EQ(A.LoadMisses, B.LoadMisses);
}

TEST_P(WorkloadExec, InputsDiffer) {
  const Workload &W = *findWorkload(GetParam());
  EXPECT_NE(W.Input1.Params, W.Input2.Params)
      << "Table 7 needs two genuinely different input sets";
}
