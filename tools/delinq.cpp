//===- tools/delinq.cpp - the command-line front door ----------------------------//
//
// A single CLI over the whole toolchain:
//
//   delinq compile  prog.mc [-O1]          MinC -> assembly on stdout
//   delinq run      prog.mc|prog.s [-O1]   compile/assemble, simulate, report
//   delinq analyze  prog.mc|prog.s [-O1]   loads, patterns, phi, Delta_H
//   delinq encode   prog.mc out.dqx [-O1]  compile to a binary object file
//   delinq disasm   prog.dqx               decode a binary back to assembly
//
// .mc files are MinC source; .s files are MIPS-like assembly; .dqx files are
// the binary object format. This is the paper's toolchain condensed: GCC ->
// `compile`, SimpleScalar -> `run`, the post-compilation pass -> `analyze`,
// objdump -> `disasm`.
//
//===----------------------------------------------------------------------===//

#include "classify/Delinquency.h"
#include "masm/ObjectFile.h"
#include "masm/Verifier.h"
#include "masm/Parser.h"
#include "masm/Printer.h"
#include "mcc/Compiler.h"
#include "sim/Machine.h"
#include "support/Format.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace dlq;

namespace {

int usage() {
  std::fputs(
      "usage: delinq <command> <file> [options]\n"
      "commands:\n"
      "  compile prog.mc [-O1]        compile MinC to assembly (stdout)\n"
      "  run     prog.mc|.s [-O1]     simulate and report cache behaviour\n"
      "  analyze prog.mc|.s [-O1]     static delinquent-load identification\n"
      "  encode  prog.mc out.dqx [-O1] compile to a binary object file\n"
      "  disasm  prog.dqx             decode a binary object to assembly\n"
      "options:\n"
      "  -O1                          optimized code generation\n"
      "  --cache=<kb>,<assoc>,<block> cache geometry for `run` (default "
      "8,4,32)\n"
      "  --delta=<v>                  delinquency threshold (default 0.10)\n",
      stderr);
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

bool hasSuffix(const std::string &S, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

/// Loads a module from .mc (compile), .s (parse) or .dqx (decode).
std::unique_ptr<masm::Module> loadModule(const std::string &Path,
                                         unsigned OptLevel) {
  if (hasSuffix(Path, ".dqx")) {
    std::string Raw;
    if (!readFile(Path, Raw)) {
      std::fprintf(stderr, "error: cannot read '%s'\n", Path.c_str());
      return nullptr;
    }
    std::vector<uint8_t> Bytes(Raw.begin(), Raw.end());
    masm::DecodeResult D = masm::decodeModule(Bytes);
    if (!D.ok()) {
      std::fprintf(stderr, "error: %s\n", D.Error.c_str());
      return nullptr;
    }
    auto Issues = masm::verifyModule(*D.M);
    if (!Issues.empty()) {
      std::fprintf(stderr, "%s: malformed module:\n%s", Path.c_str(),
                   masm::verifyReport(Issues).c_str());
      return nullptr;
    }
    return std::move(D.M);
  }

  std::string Source;
  if (!readFile(Path, Source)) {
    std::fprintf(stderr, "error: cannot read '%s'\n", Path.c_str());
    return nullptr;
  }
  if (hasSuffix(Path, ".s")) {
    masm::ParseResult P = masm::parseAssembly(Source);
    if (!P.ok()) {
      std::fprintf(stderr, "%s: parse errors:\n%s", Path.c_str(),
                   P.diagText().c_str());
      return nullptr;
    }
    auto Issues = masm::verifyModule(*P.M);
    if (!Issues.empty()) {
      std::fprintf(stderr, "%s: malformed module:\n%s", Path.c_str(),
                   masm::verifyReport(Issues).c_str());
      return nullptr;
    }
    return std::move(P.M);
  }
  mcc::CompileOptions Opts;
  Opts.OptLevel = OptLevel;
  mcc::CompileResult C = mcc::compile(Source, Opts);
  if (!C.ok()) {
    std::fprintf(stderr, "%s: compile errors:\n%s", Path.c_str(),
                 C.Errors.c_str());
    return nullptr;
  }
  return std::move(C.M);
}

struct CliOptions {
  unsigned OptLevel = 0;
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  double Delta = 0.10;
};

bool parseFlags(int Argc, char **Argv, int First, CliOptions &Out) {
  for (int I = First; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "-O1") {
      Out.OptLevel = 1;
    } else if (Arg == "-O0") {
      Out.OptLevel = 0;
    } else if (Arg.rfind("--cache=", 0) == 0) {
      unsigned Kb, Assoc, Block;
      if (std::sscanf(Arg.c_str() + 8, "%u,%u,%u", &Kb, &Assoc, &Block) != 3) {
        std::fprintf(stderr, "error: bad --cache spec '%s'\n", Arg.c_str());
        return false;
      }
      Out.Cache = sim::CacheConfig{Kb * 1024, Assoc, Block};
      if (!Out.Cache.valid()) {
        std::fprintf(stderr, "error: invalid cache geometry\n");
        return false;
      }
    } else if (Arg.rfind("--delta=", 0) == 0) {
      Out.Delta = std::atof(Arg.c_str() + 8);
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return false;
    }
  }
  return true;
}

int cmdCompile(const std::string &Path, const CliOptions &Opts) {
  std::unique_ptr<masm::Module> M = loadModule(Path, Opts.OptLevel);
  if (!M)
    return 1;
  std::fputs(masm::printModule(*M).c_str(), stdout);
  return 0;
}

int cmdRun(const std::string &Path, const CliOptions &Opts) {
  std::unique_ptr<masm::Module> M = loadModule(Path, Opts.OptLevel);
  if (!M)
    return 1;
  masm::Layout L(*M);
  sim::MachineOptions MOpts;
  MOpts.DCache = Opts.Cache;
  sim::Machine Mach(*M, L, MOpts);
  sim::RunResult R = Mach.run();

  if (!R.Output.empty())
    std::fputs(R.Output.c_str(), stdout);
  if (R.Halt == sim::HaltReason::Trapped) {
    std::fprintf(stderr, "trap: %s\n", R.TrapMessage.c_str());
    return 1;
  }
  if (R.Halt == sim::HaltReason::FuelExhausted) {
    std::fprintf(stderr, "error: instruction budget exhausted\n");
    return 1;
  }
  std::fprintf(stderr,
               "exit %d | %llu instructions | %llu data accesses | "
               "%llu load misses, %llu store misses (%s)\n",
               R.ExitCode,
               static_cast<unsigned long long>(R.InstrsExecuted),
               static_cast<unsigned long long>(R.DataAccesses),
               static_cast<unsigned long long>(R.LoadMisses),
               static_cast<unsigned long long>(R.StoreMisses),
               Opts.Cache.describe().c_str());
  return 0;
}

int cmdAnalyze(const std::string &Path, const CliOptions &Opts) {
  std::unique_ptr<masm::Module> M = loadModule(Path, Opts.OptLevel);
  if (!M)
    return 1;
  classify::ModuleAnalysis Analysis(*M);
  classify::HeuristicOptions HOpts;
  HOpts.Delta = Opts.Delta;
  HOpts.UseFreqClasses = false; // Static-only: no profile input here.
  auto Scores = Analysis.scores(HOpts, nullptr);

  size_t Flagged = 0;
  for (const auto &[Ref, Patterns] : Analysis.loadPatterns()) {
    const masm::Function &F = M->functions()[Ref.FuncIdx];
    double Phi = Scores.at(Ref);
    bool Delinquent = classify::isPossiblyDelinquent(Phi, HOpts);
    Flagged += Delinquent;
    std::printf("%c %s+%-4u %-26s phi=%+.2f\n", Delinquent ? '*' : ' ',
                F.name().c_str(), Ref.InstrIdx,
                masm::printInstr(F.instrs()[Ref.InstrIdx]).c_str(), Phi);
    for (const ap::ApNode *P : Patterns)
      std::printf("      %s\n", ap::printPattern(P).c_str());
  }
  std::printf("\n%zu of %zu loads possibly delinquent (delta=%.2f, "
              "static AG1..AG7)\n",
              Flagged, Analysis.loadPatterns().size(), HOpts.Delta);
  return 0;
}

int cmdEncode(const std::string &Path, const std::string &OutPath,
              const CliOptions &Opts) {
  std::unique_ptr<masm::Module> M = loadModule(Path, Opts.OptLevel);
  if (!M)
    return 1;
  std::vector<uint8_t> Bytes = masm::encodeModule(*M);
  std::ofstream Out(OutPath, std::ios::binary);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  std::fprintf(stderr, "wrote %zu bytes to %s\n", Bytes.size(),
               OutPath.c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  std::string Cmd = Argv[1];
  std::string Path = Argv[2];

  CliOptions Opts;
  int FlagStart = Cmd == "encode" ? 4 : 3;
  if (Argc >= FlagStart && !parseFlags(Argc, Argv, FlagStart, Opts))
    return 2;

  if (Cmd == "compile")
    return cmdCompile(Path, Opts);
  if (Cmd == "run")
    return cmdRun(Path, Opts);
  if (Cmd == "analyze")
    return cmdAnalyze(Path, Opts);
  if (Cmd == "encode") {
    if (Argc < 4)
      return usage();
    return cmdEncode(Path, Argv[3], Opts);
  }
  if (Cmd == "disasm")
    return cmdCompile(Path, Opts); // loadModule handles .dqx; print as asm.
  return usage();
}
