//===- tools/delinq.cpp - the command-line front door ----------------------------//
//
// A single CLI over the whole toolchain:
//
//   delinq compile  prog.mc [-O1]          MinC -> assembly on stdout
//   delinq run      prog.mc... [-O1]       compile/assemble, simulate, report
//   delinq analyze  prog.mc... [-O1]       loads, patterns, phi, Delta_H
//   delinq encode   prog.mc out.dqx [-O1]  compile to a binary object file
//   delinq disasm   prog.dqx               decode a binary back to assembly
//
// .mc files are MinC source; .s files are MIPS-like assembly; .dqx files are
// the binary object format. This is the paper's toolchain condensed: GCC ->
// `compile`, SimpleScalar -> `run`, the post-compilation pass -> `analyze`,
// objdump -> `disasm`.
//
// `run` and `analyze` accept several files at once; the simulations fan out
// over the worker pool (--jobs / DLQ_JOBS) and simulation results persist in
// the content-addressed store (--cache-dir / --no-cache), so repeating a run
// with unchanged sources replays from disk. Reports print in argument order
// regardless of worker count.
//
//===----------------------------------------------------------------------===//

#include "absint/Absint.h"
#include "absint/Lint.h"
#include "ap/Pattern.h"
#include "camodel/Camodel.h"
#include "cfg/Cfg.h"
#include "classify/Delinquency.h"
#include "exec/ExecStats.h"
#include "exec/Hash.h"
#include "exec/JobPool.h"
#include "exec/Options.h"
#include "exec/ResultStore.h"
#include "exec/Serialize.h"
#include "ipa/Summaries.h"
#include "masm/ObjectFile.h"
#include "masm/Verifier.h"
#include "masm/Parser.h"
#include "masm/Printer.h"
#include "mcc/Compiler.h"
#include "obs/Counters.h"
#include "obs/Trace.h"
#include "pipeline/Pipeline.h"
#include "sim/Machine.h"
#include "support/Format.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace dlq;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: delinq <command> <file>... [options]\n"
      "commands:\n"
      "  compile prog.mc [-O1]        compile MinC to assembly (stdout)\n"
      "  run     prog.mc... [-O1]     simulate and report cache behaviour\n"
      "          (also accepts registry workload names: the full pipeline\n"
      "          runs — compile, simulate, classify, freq, absint)\n"
      "  analyze prog.mc... [-O1]     static delinquent-load identification\n"
      "  encode  prog.mc out.dqx [-O1] compile to a binary object file\n"
      "  disasm  prog.dqx             decode a binary object to assembly\n"
      "  camodel workload... [-O1]    analytical per-PC miss prediction vs\n"
      "          the simulator (registry workloads; honours --cache)\n"
      "  prefetch workload... [-O1]   per-pc prefetch-engine triage over\n"
      "          Delta_H (registry workloads; honours --cache and\n"
      "          --prefetch, e.g. --prefetch=pcax)\n"
      "  lint    prog.mc... [-O1]     abstract-interpretation codegen lint\n"
      "  lint-workloads               lint all registry workloads at -O0/-O1\n"
      "  callgraph prog.mc... [-O1]   dump the call graph as Graphviz with\n"
      "          per-procedure IPA summary statistics (accepts registry\n"
      "          workload names too; --ipa-k sets the context depth)\n"
      "  trace   workload...          run the full pipeline over registry\n"
      "          workloads and print the per-stage span summary (use --trace\n"
      "          out.json for the Perfetto-loadable artifact)\n"
      "options:\n"
      "  -O1                          optimized code generation\n"
      "  --dump-cfg                   print each function's CFG as Graphviz\n"
      "  --dump-loops                 print loop nests, latches, exits, trips\n"
      "  --cache=<kb>,<assoc>,<block> cache geometry for `run` (default "
      "8,4,32)\n"
      "  --delta=<v>                  delinquency threshold (default 0.10)\n"
      "%s"
      "  --stats                      print the execution report to stderr\n"
      "  --counters                   print the counter registry to stderr\n",
      exec::ExecOptions::usageText());
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

bool hasSuffix(const std::string &S, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

/// Loads a module from .mc (compile), .s (parse) or .dqx (decode). Errors
/// go to \p Err so parallel loads don't interleave on stderr.
std::unique_ptr<masm::Module> loadModule(const std::string &Path,
                                         unsigned OptLevel, std::string &Err) {
  if (hasSuffix(Path, ".dqx")) {
    std::string Raw;
    if (!readFile(Path, Raw)) {
      Err = formatString("error: cannot read '%s'\n", Path.c_str());
      return nullptr;
    }
    obs::Span Span("stage.disasm");
    Span.attr("file", Path);
    std::vector<uint8_t> Bytes(Raw.begin(), Raw.end());
    masm::DecodeResult D = masm::decodeModule(Bytes);
    if (!D.ok()) {
      Err = formatString("error: %s\n", D.Error.c_str());
      return nullptr;
    }
    auto Issues = masm::verifyModule(*D.M);
    if (!Issues.empty()) {
      Err = formatString("%s: malformed module:\n%s", Path.c_str(),
                         masm::verifyReport(Issues).c_str());
      return nullptr;
    }
    return std::move(D.M);
  }

  std::string Source;
  if (!readFile(Path, Source)) {
    Err = formatString("error: cannot read '%s'\n", Path.c_str());
    return nullptr;
  }
  if (hasSuffix(Path, ".s")) {
    masm::ParseResult P = masm::parseAssembly(Source);
    if (!P.ok()) {
      Err = formatString("%s: parse errors:\n%s", Path.c_str(),
                         P.diagText().c_str());
      return nullptr;
    }
    auto Issues = masm::verifyModule(*P.M);
    if (!Issues.empty()) {
      Err = formatString("%s: malformed module:\n%s", Path.c_str(),
                         masm::verifyReport(Issues).c_str());
      return nullptr;
    }
    return std::move(P.M);
  }
  obs::Span Span("stage.compile");
  Span.attr("file", Path);
  Span.attr("opt", static_cast<uint64_t>(OptLevel));
  mcc::CompileOptions Opts;
  Opts.OptLevel = OptLevel;
  mcc::CompileResult C = mcc::compile(Source, Opts);
  if (!C.ok()) {
    Err = formatString("%s: compile errors:\n%s", Path.c_str(),
                       C.Errors.c_str());
    return nullptr;
  }
  return std::move(C.M);
}

struct CliOptions {
  unsigned OptLevel = 0;
  sim::CacheConfig Cache = sim::CacheConfig::baseline();
  double Delta = 0.10;
  exec::ExecOptions Exec = exec::ExecOptions::fromEnv();
  bool ShowStats = false;
  bool ShowCounters = false;
  bool DumpCfg = false;
  bool DumpLoops = false;
};

bool parseFlags(int Argc, char **Argv, int First, CliOptions &Out) {
  for (int I = First; I < Argc; ++I) {
    if (Out.Exec.consumeArg(Argc, Argv, I)) {
      if (!Out.Exec.Error.empty()) {
        std::fprintf(stderr, "error: %s\n", Out.Exec.Error.c_str());
        return false;
      }
      continue;
    }
    std::string Arg = Argv[I];
    if (Arg == "-O1") {
      Out.OptLevel = 1;
    } else if (Arg == "-O0") {
      Out.OptLevel = 0;
    } else if (Arg.rfind("--cache=", 0) == 0) {
      unsigned Kb, Assoc, Block;
      if (std::sscanf(Arg.c_str() + 8, "%u,%u,%u", &Kb, &Assoc, &Block) != 3) {
        std::fprintf(stderr, "error: bad --cache spec '%s'\n", Arg.c_str());
        return false;
      }
      Out.Cache = sim::CacheConfig{Kb * 1024, Assoc, Block};
      if (!Out.Cache.valid()) {
        std::fprintf(stderr, "error: invalid cache geometry\n");
        return false;
      }
    } else if (Arg.rfind("--delta=", 0) == 0) {
      Out.Delta = std::atof(Arg.c_str() + 8);
    } else if (Arg == "--stats") {
      Out.ShowStats = true;
    } else if (Arg == "--counters") {
      Out.ShowCounters = true;
    } else if (Arg == "--dump-cfg") {
      Out.DumpCfg = true;
    } else if (Arg == "--dump-loops") {
      Out.DumpLoops = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return false;
    }
  }
  return true;
}

void appendDumps(const masm::Module &M, const CliOptions &Opts,
                 std::string &Out);

/// One file's finished report: stdout text, stderr text, exit code.
struct FileReport {
  std::string Out;
  std::string Err;
  int Code = 0;
};

/// Emits per-file reports in argument order, with a header line per file
/// when more than one was given. Returns the worst exit code.
int emitReports(const std::vector<std::string> &Paths,
                const std::vector<FileReport> &Reports) {
  int Code = 0;
  for (size_t I = 0; I != Paths.size(); ++I) {
    if (Paths.size() > 1)
      std::printf("== %s ==\n", Paths[I].c_str());
    std::fputs(Reports[I].Out.c_str(), stdout);
    std::fputs(Reports[I].Err.c_str(), stderr);
    if (Reports[I].Code > Code)
      Code = Reports[I].Code;
  }
  return Code;
}

void emitStats(const CliOptions &Opts, const exec::ExecStats &Stats,
               const exec::ResultStore &Store, unsigned Workers) {
  if (Opts.ShowStats)
    std::fprintf(stderr, "%s\n",
                 Stats.render(Store.stats(), Workers).c_str());
  if (Opts.ShowCounters)
    std::fputs(obs::counters().summaryTable().c_str(), stderr);
}

/// Flushes the span trace to --trace's path (if given) after a command ran.
/// Returns 1 on write failure so traced CI jobs fail loudly.
int finishTracing(const CliOptions &Opts) {
  if (Opts.Exec.TracePath.empty())
    return 0;
  return Opts.Exec.writeTrace() ? 0 : 1;
}

int cmdCompile(const std::string &Path, const CliOptions &Opts) {
  std::string Err;
  std::unique_ptr<masm::Module> M = loadModule(Path, Opts.OptLevel, Err);
  if (!M) {
    std::fputs(Err.c_str(), stderr);
    return 1;
  }
  std::fputs(masm::printModule(*M).c_str(), stdout);
  return 0;
}

/// The cache key of one `delinq run`: the file bytes (not the path), how
/// they become a module, and the simulated machine.
uint64_t runKeyOf(const std::string &Path, const std::string &Contents,
                  const CliOptions &Opts) {
  exec::Fnv1a H;
  H.str("delinq-run").str(Contents);
  H.str(hasSuffix(Path, ".dqx") ? "dqx" : hasSuffix(Path, ".s") ? "s" : "mc");
  H.u32(Opts.OptLevel);
  H.u32(Opts.Cache.SizeBytes).u32(Opts.Cache.Assoc).u32(Opts.Cache.BlockBytes);
  return H.value();
}

FileReport runOne(const std::string &Path, const CliOptions &Opts,
                  exec::ExecStats &Stats, exec::ResultStore &Store) {
  FileReport Rep;
  std::string Contents;
  if (!readFile(Path, Contents)) {
    Rep.Err = formatString("error: cannot read '%s'\n", Path.c_str());
    Rep.Code = 1;
    return Rep;
  }

  uint64_t Key = runKeyOf(Path, Contents, Opts);
  sim::RunResult R;
  bool FromCache = false;
  std::vector<uint8_t> Payload;
  if (Store.lookup(Key, Payload)) {
    exec::ByteReader Reader(Payload);
    sim::RunResult Cached;
    if (exec::readRunResult(Reader, Cached) && Reader.atEnd()) {
      R = std::move(Cached);
      FromCache = true;
    }
  }

  if (!FromCache) {
    std::string Err;
    std::unique_ptr<masm::Module> M;
    {
      exec::PhaseTimer Timer(Stats, exec::Phase::Compile);
      M = loadModule(Path, Opts.OptLevel, Err);
    }
    if (!M) {
      Rep.Err = Err;
      Rep.Code = 1;
      return Rep;
    }
    masm::Layout L(*M);
    sim::MachineOptions MOpts;
    MOpts.DCache = Opts.Cache;
    MOpts.Engine = sim::engineKindFromString(Opts.Exec.Engine);
    exec::PhaseTimer Timer(Stats, exec::Phase::Simulate);
    sim::Machine Mach(*M, L, MOpts);
    R = Mach.run();
  }

  Rep.Out = R.Output;
  if (R.Halt == sim::HaltReason::Trapped) {
    Rep.Err = formatString("trap: %s\n", R.TrapMessage.c_str());
    Rep.Code = 1;
    return Rep;
  }
  if (R.Halt == sim::HaltReason::FuelExhausted) {
    Rep.Err = "error: instruction budget exhausted\n";
    Rep.Code = 1;
    return Rep;
  }
  if (!FromCache) {
    exec::ByteWriter Writer;
    exec::writeRunResult(Writer, R);
    Store.store(Key, Writer.buffer());
  }
  Rep.Err = formatString(
      "exit %d | %llu instructions | %llu data accesses | "
      "%llu load misses, %llu store misses (%s)\n",
      R.ExitCode, static_cast<unsigned long long>(R.InstrsExecuted),
      static_cast<unsigned long long>(R.DataAccesses),
      static_cast<unsigned long long>(R.LoadMisses),
      static_cast<unsigned long long>(R.StoreMisses),
      Opts.Cache.describe().c_str());
  return Rep;
}

/// True when \p Arg names a registry workload rather than a file on disk:
/// no recognized source suffix, and the registry knows the name.
bool isRegistryWorkload(const std::string &Arg) {
  return !hasSuffix(Arg, ".mc") && !hasSuffix(Arg, ".s") &&
         !hasSuffix(Arg, ".dqx") && workloads::findWorkload(Arg) != nullptr;
}

/// Runs the whole pipeline over one registry workload through the shared
/// Driver: compile, simulate, classify (Delta_H), frequency hotspots, plus a
/// disassembly and an abstract-interpretation lint pass, so a traced run
/// covers every stage the toolchain has.
FileReport runWorkloadFull(pipeline::Driver &D, const std::string &Name,
                           const CliOptions &Opts) {
  FileReport Rep;
  const sim::RunResult &R =
      D.run(Name, pipeline::InputSel::Input1, Opts.OptLevel, Opts.Cache);

  classify::HeuristicOptions HOpts;
  HOpts.Delta = Opts.Delta;
  const pipeline::HeuristicEval &H = D.evalHeuristic(
      Name, pipeline::InputSel::Input1, Opts.OptLevel, Opts.Cache, HOpts);
  metrics::LoadSet Hot = D.hotspotLoads(Name, pipeline::InputSel::Input1,
                                        Opts.OptLevel, Opts.Cache);

  const pipeline::Compiled &C =
      D.compiled(Name, pipeline::InputSel::Input1, Opts.OptLevel);
  size_t AsmBytes;
  {
    obs::Span S("stage.disasm");
    S.attr("workload", Name);
    AsmBytes = masm::printModule(*C.M).size();
  }
  size_t LintFindings;
  {
    obs::Span S("stage.absint");
    S.attr("workload", Name);
    absint::LintOptions LO;
    LO.Ipa = C.Ipa.get();
    LintFindings = absint::lintModule(*C.M, LO).size();
  }

  Rep.Out = R.Output;
  Rep.Err = formatString(
      "exit %d | %llu instructions | %llu data accesses | "
      "%llu load misses, %llu store misses (%s)\n"
      "delta_h %zu of %zu loads, covers %llu of %llu misses | "
      "hotspot loads %zu | asm %zu bytes | lint %zu finding(s)\n",
      R.ExitCode, static_cast<unsigned long long>(R.InstrsExecuted),
      static_cast<unsigned long long>(R.DataAccesses),
      static_cast<unsigned long long>(R.LoadMisses),
      static_cast<unsigned long long>(R.StoreMisses),
      Opts.Cache.describe().c_str(), H.Delta.size(), C.lambda(),
      static_cast<unsigned long long>(H.E.CoveredMisses),
      static_cast<unsigned long long>(H.E.TotalMisses), Hot.size(), AsmBytes,
      LintFindings);
  Rep.Code = LintFindings == 0 ? 0 : 1;
  return Rep;
}

/// Shared by `run` (on registry names) and `trace`: fan the workloads out
/// over the Driver's pool so the trace also shows per-job JobPool spans.
int runWorkloads(const std::vector<std::string> &Names,
                 const CliOptions &Opts) {
  pipeline::Driver D(Opts.Exec);
  std::vector<FileReport> Reports =
      D.pool().map<FileReport>(Names.size(), [&](size_t I) {
        return runWorkloadFull(D, Names[I], Opts);
      });
  int Code = emitReports(Names, Reports);
  emitStats(Opts, D.stats(), D.store(), D.workers());
  return Code;
}

int cmdRun(const std::vector<std::string> &Paths, const CliOptions &Opts) {
  bool AnyWorkload = false, AnyFile = false;
  for (const std::string &P : Paths)
    (isRegistryWorkload(P) ? AnyWorkload : AnyFile) = true;
  if (AnyWorkload && AnyFile) {
    std::fprintf(stderr,
                 "error: cannot mix files and registry workloads in one "
                 "`run`\n");
    return 2;
  }
  if (AnyWorkload)
    return runWorkloads(Paths, Opts);

  exec::ExecStats Stats;
  exec::JobPool Pool(Opts.Exec.Jobs, &Stats.Jobs);
  exec::ResultStore Store(Opts.Exec.CacheDir, Opts.Exec.UseDiskCache);
  std::vector<FileReport> Reports =
      Pool.map<FileReport>(Paths.size(), [&](size_t I) {
        return runOne(Paths[I], Opts, Stats, Store);
      });
  int Code = emitReports(Paths, Reports);
  emitStats(Opts, Stats, Store, Pool.workers());
  return Code;
}

/// `delinq trace`: the full pipeline over registry workloads with the tracer
/// forced on, ending in the per-stage span summary (and the Chrome-trace
/// artifact when --trace gave a path).
int cmdTrace(const std::vector<std::string> &Names, const CliOptions &Opts) {
  for (const std::string &N : Names)
    if (!isRegistryWorkload(N)) {
      std::fprintf(stderr, "error: '%s' is not a registry workload\n",
                   N.c_str());
      return 2;
    }
  obs::Tracer::instance().enable();
  int Code = runWorkloads(Names, Opts);
  std::fputs(obs::Tracer::instance().summaryTable().c_str(), stderr);
  return Code;
}

/// Per-function abstract-interpretation bundle for `analyze` annotations.
struct FuncAbs {
  cfg::Cfg G;
  cfg::DominatorTree DT;
  cfg::LoopInfo LI;
  absint::Interp AI;

  static absint::Interp::Options interpOpts(const masm::Module &M,
                                            const masm::Layout &L,
                                            const masm::Function &F) {
    absint::Interp::Options IO;
    IO.ModLayout = &L;
    IO.Frame = M.typeInfo().lookupFunction(F.name());
    return IO;
  }

  FuncAbs(const masm::Module &M, const masm::Layout &L,
          const masm::Function &F)
      : G(F), DT(G), LI(G, DT), AI(G, LI, interpOpts(M, L, F)) {
    AI.run();
  }
};

/// How a recurrent load walks memory, from the stride component of its
/// abstract address. Distinguishes the paper's streaming loads (prefetchable
/// unit/constant stride) from pointer chases (serially dependent).
std::string strideNote(const absint::AbsValue &Addr, unsigned AccessSize) {
  if (Addr.Base == absint::SymBase::top())
    return "irregular address (pointer-chase)";
  if (Addr.isSingleton())
    return "loop-invariant address";
  if (Addr.Stride > 1)
    return formatString("%s, %llu bytes/iter",
                        Addr.Stride == AccessSize ? "unit-stride" : "strided",
                        static_cast<unsigned long long>(Addr.Stride));
  return "same object, stride unproven";
}

FileReport analyzeOne(const std::string &Path, const CliOptions &Opts,
                      exec::ExecStats &Stats) {
  FileReport Rep;
  std::string Err;
  std::unique_ptr<masm::Module> M;
  {
    exec::PhaseTimer Timer(Stats, exec::Phase::Compile);
    M = loadModule(Path, Opts.OptLevel, Err);
  }
  if (!M) {
    Rep.Err = Err;
    Rep.Code = 1;
    return Rep;
  }
  exec::PhaseTimer Timer(Stats, exec::Phase::Analyze);
  ipa::IpaOptions IpaOpts;
  IpaOpts.Enable = Opts.Exec.Ipa;
  IpaOpts.ContextK = Opts.Exec.IpaK;
  classify::ModuleAnalysis Analysis(*M, ap::ApBuilderOptions(), IpaOpts);
  classify::HeuristicOptions HOpts;
  HOpts.Delta = Opts.Delta;
  HOpts.UseFreqClasses = false; // Static-only: no profile input here.
  auto Scores = Analysis.scores(HOpts, nullptr);
  masm::Layout L(*M);
  appendDumps(*M, Opts, Rep.Out);
  std::map<uint32_t, std::unique_ptr<FuncAbs>> AbsCache;

  size_t Flagged = 0;
  for (const auto &[Ref, Patterns] : Analysis.loadPatterns()) {
    const masm::Function &F = M->functions()[Ref.FuncIdx];
    double Phi = Scores.at(Ref);
    bool Delinquent = classify::isPossiblyDelinquent(Phi, HOpts);
    Flagged += Delinquent;
    const masm::Instr &Load = F.instrs()[Ref.InstrIdx];
    Rep.Out += formatString("%c %s+%-4u %-26s phi=%+.2f\n",
                            Delinquent ? '*' : ' ', F.name().c_str(),
                            Ref.InstrIdx, masm::printInstr(Load).c_str(),
                            Phi);
    bool Recur = false;
    for (const ap::ApNode *P : Patterns) {
      Rep.Out += formatString("      %s\n", ap::printPattern(P).c_str());
      Recur = Recur || ap::hasRecurrence(P);
    }
    // Recurrent loads walk memory every iteration: say how, from the
    // stride component of the abstract address (streaming strided access
    // vs serially-dependent pointer chasing).
    if (Recur) {
      auto &FA = AbsCache[Ref.FuncIdx];
      if (!FA)
        FA = std::make_unique<FuncAbs>(*M, L, F);
      absint::State S = FA->AI.stateBefore(Ref.InstrIdx);
      absint::AbsValue Addr = absint::addValues(
          S.reg(Load.Rs), absint::AbsValue::constant(Load.Imm));
      Rep.Out += formatString(
          "      addr: %s\n",
          strideNote(Addr, masm::accessSize(Load.Op)).c_str());
    }
  }
  Rep.Out += formatString("\n%zu of %zu loads possibly delinquent "
                          "(delta=%.2f, static AG1..AG7)\n",
                          Flagged, Analysis.loadPatterns().size(),
                          HOpts.Delta);
  return Rep;
}

int cmdAnalyze(const std::vector<std::string> &Paths,
               const CliOptions &Opts) {
  exec::ExecStats Stats;
  exec::JobPool Pool(Opts.Exec.Jobs, &Stats.Jobs);
  exec::ResultStore Store; // Analysis is cheap; nothing persists.
  std::vector<FileReport> Reports =
      Pool.map<FileReport>(Paths.size(), [&](size_t I) {
        return analyzeOne(Paths[I], Opts, Stats);
      });
  int Code = emitReports(Paths, Reports);
  emitStats(Opts, Stats, Store, Pool.workers());
  return Code;
}

/// Renders every function's CFG as a Graphviz digraph. Loop headers get a
/// double border, back edges are blue, irreducible retreat edges dashed red.
std::string dumpCfgDot(const masm::Module &M) {
  std::string Out;
  for (const masm::Function &F : M.functions()) {
    if (F.empty())
      continue;
    cfg::Cfg G(F);
    cfg::DominatorTree DT(G);
    cfg::LoopInfo LI(G, DT);
    Out += formatString("digraph \"%s\" {\n  label=\"%s\";\n"
                        "  node [shape=box, fontname=\"monospace\"];\n",
                        F.name().c_str(), F.name().c_str());
    for (uint32_t B = 0; B != G.numBlocks(); ++B) {
      bool Header = LI.loopAtHeader(B) != masm::InvalidIndex;
      Out += formatString("  B%u [label=\"B%u [%u,%u)\"%s];\n", B, B,
                          G.blocks()[B].Begin, G.blocks()[B].End,
                          Header ? ", peripheries=2" : "");
    }
    auto IsBackEdge = [&](uint32_t From, uint32_t To) {
      uint32_t LIdx = LI.loopAtHeader(To);
      if (LIdx == masm::InvalidIndex)
        return false;
      const cfg::Loop &L = LI.loops()[LIdx];
      return std::find(L.Latches.begin(), L.Latches.end(), From) !=
             L.Latches.end();
    };
    auto IsIrreducible = [&](uint32_t From, uint32_t To) {
      for (const cfg::IrreducibleEdge &E : LI.irreducibleEdges())
        if (E.From == From && E.To == To)
          return true;
      return false;
    };
    for (uint32_t B = 0; B != G.numBlocks(); ++B)
      for (uint32_t S : G.blocks()[B].Succs) {
        const char *Attr = "";
        if (IsIrreducible(B, S))
          Attr = " [style=dashed, color=red]";
        else if (IsBackEdge(B, S))
          Attr = " [color=blue]";
        Out += formatString("  B%u -> B%u%s;\n", B, S, Attr);
      }
    Out += "}\n";
  }
  return Out;
}

/// Textual loop report: nesting, latches, exits, blocks, and any trip count
/// the abstract interpreter proves from exit-branch intervals.
std::string dumpLoopsText(const masm::Module &M) {
  masm::Layout L(M);
  std::string Out;
  for (const masm::Function &F : M.functions()) {
    if (F.empty())
      continue;
    cfg::Cfg G(F);
    cfg::DominatorTree DT(G);
    cfg::LoopInfo LI(G, DT);
    absint::Interp::Options IO;
    IO.ModLayout = &L;
    IO.Frame = M.typeInfo().lookupFunction(F.name());
    absint::Interp AI(G, LI, IO);
    AI.run();
    Out += formatString("func %s: %zu loop(s)\n", F.name().c_str(),
                        LI.loops().size());
    auto List = [](const std::vector<uint32_t> &Bs) {
      std::string S;
      for (uint32_t B : Bs)
        S += formatString("%sB%u", S.empty() ? "" : " ", B);
      return S;
    };
    for (uint32_t LIdx = 0; LIdx != LI.loops().size(); ++LIdx) {
      const cfg::Loop &Lp = LI.loops()[LIdx];
      std::string Trip = "?";
      auto It = AI.tripCounts().find(LIdx);
      if (It != AI.tripCounts().end())
        Trip = formatString("%llu",
                            static_cast<unsigned long long>(It->second));
      Out += formatString(
          "  loop %u: header B%u depth %u latches{%s} exits{%s} "
          "blocks{%s} trip=%s\n",
          LIdx, Lp.Header, LI.depth(Lp.Header), List(Lp.Latches).c_str(),
          List(Lp.Exits).c_str(), List(Lp.Blocks).c_str(), Trip.c_str());
    }
    for (const cfg::IrreducibleEdge &E : LI.irreducibleEdges())
      Out += formatString("  irreducible edge: B%u -> B%u\n", E.From, E.To);
  }
  return Out;
}

void appendDumps(const masm::Module &M, const CliOptions &Opts,
                 std::string &Out) {
  if (Opts.DumpCfg)
    Out += dumpCfgDot(M);
  if (Opts.DumpLoops)
    Out += dumpLoopsText(M);
}

FileReport lintOne(const std::string &Path, const CliOptions &Opts) {
  FileReport Rep;
  std::string Err;
  std::unique_ptr<masm::Module> M = loadModule(Path, Opts.OptLevel, Err);
  if (!M) {
    Rep.Err = Err;
    Rep.Code = 1;
    return Rep;
  }
  appendDumps(*M, Opts, Rep.Out);
  absint::LintOptions LO;
  std::unique_ptr<masm::Layout> L;
  std::unique_ptr<ipa::ModuleSummaries> Sums;
  if (Opts.Exec.Ipa) {
    L = std::make_unique<masm::Layout>(*M);
    ipa::IpaOptions IO;
    IO.Enable = true;
    IO.ContextK = Opts.Exec.IpaK;
    Sums = std::make_unique<ipa::ModuleSummaries>(*M, *L, IO);
    LO.Ipa = Sums.get();
  }
  std::vector<absint::LintFinding> Findings = absint::lintModule(*M, LO);
  for (const absint::LintFinding &Fd : Findings)
    Rep.Out += Fd.str() + "\n";
  if (Findings.empty())
    Rep.Out += formatString("%s: clean (-O%u)\n", Path.c_str(), Opts.OptLevel);
  else
    Rep.Code = 1;
  return Rep;
}

int cmdLint(const std::vector<std::string> &Paths, const CliOptions &Opts) {
  exec::ExecStats Stats;
  exec::JobPool Pool(Opts.Exec.Jobs, &Stats.Jobs);
  std::vector<FileReport> Reports =
      Pool.map<FileReport>(Paths.size(), [&](size_t I) {
        return lintOne(Paths[I], Opts);
      });
  return emitReports(Paths, Reports);
}

/// Lints every registry workload at both opt levels; any finding is a hard
/// failure. This is the CI gate that keeps the code generator lint-clean.
int cmdLintWorkloads(const CliOptions &Opts) {
  int Code = 0;
  size_t Findings = 0;
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    std::string Source = workloads::instantiate(W, W.Input1);
    for (unsigned Opt = 0; Opt <= 1; ++Opt) {
      mcc::CompileOptions CO;
      CO.OptLevel = Opt;
      mcc::CompileResult C = mcc::compile(Source, CO);
      if (!C.ok()) {
        std::printf("FAIL  %-16s -O%u: compile errors:\n%s", W.Name.c_str(),
                    Opt, C.Errors.c_str());
        Code = 1;
        continue;
      }
      if (Opts.DumpCfg || Opts.DumpLoops) {
        std::string Dumps;
        appendDumps(*C.M, Opts, Dumps);
        std::fputs(Dumps.c_str(), stdout);
      }
      absint::LintOptions LO;
      std::unique_ptr<masm::Layout> L;
      std::unique_ptr<ipa::ModuleSummaries> Sums;
      if (Opts.Exec.Ipa) {
        L = std::make_unique<masm::Layout>(*C.M);
        ipa::IpaOptions IO;
        IO.Enable = true;
        IO.ContextK = Opts.Exec.IpaK;
        Sums = std::make_unique<ipa::ModuleSummaries>(*C.M, *L, IO);
        LO.Ipa = Sums.get();
      }
      std::vector<absint::LintFinding> Fs = absint::lintModule(*C.M, LO);
      if (Fs.empty()) {
        std::printf("ok    %-16s -O%u\n", W.Name.c_str(), Opt);
        continue;
      }
      Code = 1;
      Findings += Fs.size();
      std::printf("FAIL  %-16s -O%u (%zu finding(s))\n", W.Name.c_str(), Opt,
                  Fs.size());
      for (const absint::LintFinding &Fd : Fs)
        std::printf("      %s\n", Fd.str().c_str());
    }
  }
  if (Code)
    std::printf("\n%zu lint finding(s) across the workload registry\n",
                Findings);
  return Code;
}

/// `delinq camodel`: per-PC predicted-vs-simulated miss ratios for registry
/// workloads under the --cache geometry. Loads the simulator counted as
/// ground truth sit next to the analytical model's closed-form prediction,
/// with the regime and footprint the model derived for triage.
FileReport camodelOne(pipeline::Driver &D, const std::string &Name,
                      const CliOptions &Opts) {
  FileReport Rep;
  const pipeline::Compiled &C =
      D.compiled(Name, pipeline::InputSel::Input1, Opts.OptLevel);
  pipeline::GroundTruth GT = D.groundTruth(Name, pipeline::InputSel::Input1,
                                           Opts.OptLevel, Opts.Cache);

  camodel::CacheModel Model(*C.M, *C.L, C.Ipa.get());
  std::map<masm::InstrRef, camodel::Prediction> Pred =
      Model.predict(Opts.Cache);

  Rep.Out += formatString("%s (%s)\n", Name.c_str(),
                          Opts.Cache.describe().c_str());
  Rep.Out += formatString("  %-22s %10s %8s %8s %7s  %-9s %s\n", "load",
                          "execs", "sim", "pred", "|err|", "regime",
                          "footprint");
  size_t Known = 0, Executed = 0;
  double ErrSum = 0, ErrMax = 0;
  for (const auto &[Ref, P] : Pred) {
    const masm::Function &F = C.M->functions()[Ref.FuncIdx];
    auto It = GT.Stats.find(Ref);
    uint64_t Execs = It == GT.Stats.end() ? 0 : It->second.Execs;
    double SimRatio =
        Execs == 0 ? 0.0
                   : static_cast<double>(It->second.Misses) / Execs;
    std::string Loc = formatString("%s+%u", F.name().c_str(), Ref.InstrIdx);
    if (!P.Known) {
      Rep.Out += formatString("  %-22s %10llu %8.4f %8s %7s  %-9s -\n",
                              Loc.c_str(),
                              static_cast<unsigned long long>(Execs),
                              SimRatio, "?", "?", "unknown");
      continue;
    }
    ++Known;
    double Err = Execs == 0 ? 0.0 : std::abs(P.MissRatio - SimRatio);
    if (Execs > 0) {
      ++Executed;
      ErrSum += Err;
      ErrMax = std::max(ErrMax, Err);
    }
    Rep.Out += formatString(
        "  %-22s %10llu %8.4f %8.4f %7.4f  %-9s %llu\n", Loc.c_str(),
        static_cast<unsigned long long>(Execs), SimRatio, P.MissRatio, Err,
        camodel::regimeName(P.R),
        static_cast<unsigned long long>(P.Footprint));
  }
  Rep.Out += formatString(
      "  %zu loads: %zu predicted, %zu unknown | executed+predicted %zu: "
      "mean |err| %.4f, max %.4f\n",
      Pred.size(), Known, Pred.size() - Known, Executed,
      Executed ? ErrSum / Executed : 0.0, ErrMax);
  return Rep;
}

int cmdCamodel(const std::vector<std::string> &Names,
               const CliOptions &Opts) {
  for (const std::string &N : Names)
    if (!isRegistryWorkload(N)) {
      std::fprintf(stderr, "error: '%s' is not a registry workload\n",
                   N.c_str());
      return 2;
    }
  pipeline::Driver D(Opts.Exec);
  std::vector<FileReport> Reports =
      D.pool().map<FileReport>(Names.size(), [&](size_t I) {
        return camodelOne(D, Names[I], Opts);
      });
  int Code = emitReports(Names, Reports);
  emitStats(Opts, D.stats(), D.store(), D.workers());
  return Code;
}

/// `delinq prefetch`: per-pc triage of the prefetch engine over registry
/// workloads — which loads the heuristic armed, what the static seed said
/// about each, and what its prefetches did at runtime under the --prefetch
/// policy (issued / useful / late, accuracy, and the armed run's residual
/// misses next to the baseline's).
FileReport prefetchOne(pipeline::Driver &D, const std::string &Name,
                       const CliOptions &Opts) {
  using pipeline::InputSel;
  FileReport Rep;
  const pipeline::Compiled &C =
      D.compiled(Name, InputSel::Input1, Opts.OptLevel);
  classify::HeuristicOptions HO;
  HO.Delta = Opts.Delta;
  const pipeline::HeuristicEval &H =
      D.evalHeuristic(Name, InputSel::Input1, Opts.OptLevel, Opts.Cache, HO);
  const sim::RunResult &Base =
      D.run(Name, InputSel::Input1, Opts.OptLevel, Opts.Cache);

  prefetch::Policy Pol = prefetch::Policy::NextLine;
  prefetch::policyFromString(Opts.Exec.Prefetch, Pol);
  if (Pol == prefetch::Policy::None) {
    Rep.Err = formatString("%s: nothing to triage under --prefetch=none\n",
                           Name.c_str());
    Rep.Code = 2;
    return Rep;
  }
  const sim::RunResult &R = D.runWithPrefetchPolicy(
      Name, InputSel::Input1, Opts.OptLevel, Opts.Cache, Pol, H.Delta);
  const prefetch::HintMap &Hints =
      D.prefetchHints(Name, InputSel::Input1, Opts.OptLevel);

  Rep.Out += formatString(
      "%s (%s, policy %s): %zu armed load(s), misses %llu -> %llu\n",
      Name.c_str(), Opts.Cache.describe().c_str(), prefetch::policyName(Pol),
      H.Delta.size(), static_cast<unsigned long long>(Base.LoadMisses),
      static_cast<unsigned long long>(R.LoadMisses));
  Rep.Out += formatString("  %-22s %-10s %10s %10s %10s %9s %9s %6s\n",
                          "load", "seed", "base miss", "armed miss", "issued",
                          "useful", "late", "acc");
  for (const sim::RunResult::PcPrefetch &P : R.PrefetchPerPc) {
    const masm::InstrRef &Ref = R.FlatMap[P.FlatPc];
    const masm::Function &F = C.M->functions()[Ref.FuncIdx];
    std::string Loc = formatString("%s+%u", F.name().c_str(), Ref.InstrIdx);
    std::string Seed = "learn";
    auto HintIt = Hints.find(Ref);
    if (HintIt != Hints.end()) {
      if (HintIt->second.Class == prefetch::PatternClass::Pointer)
        Seed = "pointer";
      else
        Seed = formatString("stride%+d", HintIt->second.StrideBytes);
    }
    double Acc = P.Issued == 0
                     ? 0.0
                     : static_cast<double>(P.Useful) / P.Issued;
    Rep.Out += formatString(
        "  %-22s %-10s %10llu %10llu %10llu %9llu %9llu %5.1f%%\n",
        Loc.c_str(), Seed.c_str(),
        static_cast<unsigned long long>(Base.MissCounts[P.FlatPc]),
        static_cast<unsigned long long>(R.MissCounts[P.FlatPc]),
        static_cast<unsigned long long>(P.Issued),
        static_cast<unsigned long long>(P.Useful),
        static_cast<unsigned long long>(P.Late), 100.0 * Acc);
  }
  double Redux = Base.LoadMisses == 0
                     ? 0.0
                     : 1.0 - static_cast<double>(R.LoadMisses) /
                                 static_cast<double>(Base.LoadMisses);
  Rep.Out += formatString(
      "  total: issued %llu, useful %llu, late %llu | miss reduction %.1f%%\n",
      static_cast<unsigned long long>(R.PrefetchesIssued),
      static_cast<unsigned long long>(R.PrefetchUseful),
      static_cast<unsigned long long>(R.PrefetchLate), 100.0 * Redux);
  return Rep;
}

int cmdPrefetch(const std::vector<std::string> &Names,
                const CliOptions &Opts) {
  for (const std::string &N : Names)
    if (!isRegistryWorkload(N)) {
      std::fprintf(stderr, "error: '%s' is not a registry workload\n",
                   N.c_str());
      return 2;
    }
  pipeline::Driver D(Opts.Exec);
  std::vector<FileReport> Reports =
      D.pool().map<FileReport>(Names.size(), [&](size_t I) {
        return prefetchOne(D, Names[I], Opts);
      });
  int Code = emitReports(Names, Reports);
  emitStats(Opts, D.stats(), D.store(), D.workers());
  return Code;
}

/// `delinq callgraph`: the interprocedural call graph as Graphviz, annotated
/// with each procedure's summary results — distinct argument contexts seen,
/// return patterns exported to callers, argument slots resolved from
/// callers, and substitution counts from the pattern build. Recursive-SCC
/// members get a double border (their summaries are the generic ones),
/// unknown-target call sites a dashed edge to an "indirect" sink.
FileReport callgraphOne(const std::string &Arg, const CliOptions &Opts) {
  FileReport Rep;
  std::string Err;
  std::unique_ptr<masm::Module> M;
  if (isRegistryWorkload(Arg)) {
    const workloads::Workload *W = workloads::findWorkload(Arg);
    mcc::CompileOptions CO;
    CO.OptLevel = Opts.OptLevel;
    mcc::CompileResult C = mcc::compile(workloads::instantiate(*W, W->Input1),
                                        CO);
    if (!C.ok()) {
      Rep.Err = formatString("%s: compile errors:\n%s", Arg.c_str(),
                             C.Errors.c_str());
      Rep.Code = 1;
      return Rep;
    }
    M = std::move(C.M);
  } else {
    M = loadModule(Arg, Opts.OptLevel, Err);
    if (!M) {
      Rep.Err = Err;
      Rep.Code = 1;
      return Rep;
    }
  }

  masm::Layout L(*M);
  ipa::IpaOptions IO;
  IO.Enable = true;
  IO.ContextK = Opts.Exec.IpaK;
  ipa::ModuleSummaries Sums(*M, L, IO);
  classify::ModuleAnalysis Analysis(*M, ap::ApBuilderOptions(), IO);
  const ipa::CallGraph &CG = Sums.graph();

  Rep.Out += formatString("digraph \"callgraph\" {\n  label=\"%s (k=%u)\";\n"
                          "  node [shape=box, fontname=\"monospace\"];\n",
                          Arg.c_str(), IO.ContextK);
  bool AnyUnknown = false;
  for (uint32_t F = 0; F != CG.numFunctions(); ++F) {
    if (M->functions()[F].empty())
      continue;
    const ipa::FuncSummary &S = Sums.summary(F);
    const classify::IpaFuncStats &St = Analysis.ipaStats()[F];
    std::string Extra;
    if (S.Recursive)
      Extra += "\\nrecursive (generic summaries)";
    else if (S.BudgetHit)
      Extra += "\\ncontext budget hit (generic entry)";
    Rep.Out += formatString(
        "  F%u [label=\"%s\\nctx=%u ret-pats=%u arg-slots=%u\\n"
        "subst: call=%u arg=%u%s\"%s];\n",
        F, M->functions()[F].name().c_str(), S.Contexts,
        St.RetPatternsExported, St.ArgSlotsResolved, St.CallSubsts,
        St.ArgSubsts, Extra.c_str(), S.Recursive ? ", peripheries=2" : "");
    AnyUnknown = AnyUnknown || CG.hasUnknownCallee(F);
  }
  if (AnyUnknown)
    Rep.Out += "  indirect [label=\"indirect/runtime\", style=dashed];\n";
  for (uint32_t F = 0; F != CG.numFunctions(); ++F) {
    for (uint32_t Callee : CG.calleesOf(F)) {
      bool SameScc = CG.sccOf(F) == CG.sccOf(Callee);
      Rep.Out += formatString("  F%u -> F%u%s;\n", F, Callee,
                              SameScc ? " [color=blue]" : "");
    }
    if (CG.hasUnknownCallee(F))
      Rep.Out += formatString("  F%u -> indirect [style=dashed];\n", F);
  }
  Rep.Out += "}\n";
  return Rep;
}

int cmdCallgraph(const std::vector<std::string> &Args,
                 const CliOptions &Opts) {
  exec::ExecStats Stats;
  exec::JobPool Pool(Opts.Exec.Jobs, &Stats.Jobs);
  std::vector<FileReport> Reports =
      Pool.map<FileReport>(Args.size(), [&](size_t I) {
        return callgraphOne(Args[I], Opts);
      });
  return emitReports(Args, Reports);
}

int cmdEncode(const std::string &Path, const std::string &OutPath,
              const CliOptions &Opts) {
  std::string Err;
  std::unique_ptr<masm::Module> M = loadModule(Path, Opts.OptLevel, Err);
  if (!M) {
    std::fputs(Err.c_str(), stderr);
    return 1;
  }
  std::vector<uint8_t> Bytes = masm::encodeModule(*M);
  std::ofstream Out(OutPath, std::ios::binary);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  std::fprintf(stderr, "wrote %zu bytes to %s\n", Bytes.size(),
               OutPath.c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Cmd = Argv[1];
  if (Cmd == "--lint") // `delinq --lint prog.mc` reads naturally too.
    Cmd = "lint";

  // Everything after the command that is not a flag is an input file;
  // `run`, `analyze` and `lint` accept several.
  std::vector<std::string> Paths;
  int FlagStart = 2;
  while (FlagStart < Argc && Argv[FlagStart][0] != '-') {
    Paths.push_back(Argv[FlagStart]);
    ++FlagStart;
  }
  if (Paths.empty() && Cmd != "lint-workloads")
    return usage();

  CliOptions Opts;
  if (!parseFlags(Argc, Argv, FlagStart, Opts))
    return 2;
  Opts.Exec.applyTracing();

  int Code = [&]() -> int {
    if (Cmd == "lint-workloads")
      return cmdLintWorkloads(Opts);
    if (Cmd == "lint")
      return cmdLint(Paths, Opts);
    if (Cmd == "run")
      return cmdRun(Paths, Opts);
    if (Cmd == "trace")
      return cmdTrace(Paths, Opts);
    if (Cmd == "camodel")
      return cmdCamodel(Paths, Opts);
    if (Cmd == "prefetch")
      return cmdPrefetch(Paths, Opts);
    if (Cmd == "callgraph")
      return cmdCallgraph(Paths, Opts);
    if (Cmd == "analyze")
      return cmdAnalyze(Paths, Opts);
    if (Paths.size() > 1 && Cmd != "encode") {
      std::fprintf(stderr, "error: `%s` takes a single file\n", Cmd.c_str());
      return 2;
    }
    if (Cmd == "compile")
      return cmdCompile(Paths[0], Opts);
    if (Cmd == "encode") {
      if (Paths.size() != 2)
        return usage();
      return cmdEncode(Paths[0], Paths[1], Opts);
    }
    if (Cmd == "disasm")
      return cmdCompile(Paths[0], Opts); // loadModule handles .dqx; print as
                                         // asm.
    return usage();
  }();
  int TraceCode = finishTracing(Opts);
  return Code != 0 ? Code : TraceCode;
}
