//===- tools/delinq_bots.cpp - synthetic-user load fleet for delinqd ------------//
//
// Replays N concurrent synthetic users against a running delinqd:
//
//   delinqd --port 7099 &
//   delinq_bots --port 7099 --users 200 --requests 20 --seed 1 \
//               --json BENCH_delinqd.json --drain
//
// Each user owns one connection and issues a seeded, mixed stream of
// ANALYZE / RUN / CLASSIFY / PING requests over the registry workloads,
// timing every call end-to-end. The report combines the client-side
// latencies (exact quantiles over the recorded samples) with the server's
// own net.req.* histograms fetched via STATS — the cross-check that the
// daemon's observability agrees with what clients actually experienced.
// --drain ends the campaign with a graceful server shutdown and asserts the
// DRAIN response arrived after every in-flight response.
//
// Exit code: nonzero on any protocol error, dropped response, or empty
// campaign — CI treats this binary as its own acceptance check.
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"
#include "obs/Trace.h"
#include "support/Format.h"
#include "support/Rng.h"
#include "support/Table.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace dlq;

namespace {

struct BotOptions {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  unsigned Users = 8;
  unsigned RequestsPerUser = 20; ///< 0 = run until --duration expires.
  double DurationS = 0;
  uint64_t Seed = 1;
  unsigned OptLevel = 0;
  // Weighted opcode mix, parsed from --mix analyze=40,run=30,...
  unsigned MixAnalyze = 40, MixRun = 30, MixClassify = 20, MixPing = 10;
  std::vector<std::string> Workloads; ///< Default: the training set.
  std::string JsonPath;
  bool Drain = false;
  bool PrintServerCounters = false;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: delinq_bots --port N [options]\n"
      "options:\n"
      "  --host A               server address (default 127.0.0.1)\n"
      "  --port N               server port (required)\n"
      "  --users N              concurrent synthetic users (default 8)\n"
      "  --requests N           requests per user (default 20)\n"
      "  --duration S           run for S seconds instead of a fixed count\n"
      "  --seed N               campaign seed (default 1)\n"
      "  --mix a=40,run=30,...  opcode mix weights (analyze/run/classify/"
      "ping)\n"
      "  --workloads a,b,c      registry workloads (default: training set)\n"
      "  --opt 0|1              opt level for compiled requests (default "
      "0)\n"
      "  --json PATH            write BENCH_delinqd.json-style report\n"
      "  --drain                finish with a graceful server DRAIN\n"
      "  --server-counters      print the server counter dump from STATS\n");
  return 2;
}

bool parseMix(const std::string &Spec, BotOptions &O) {
  unsigned *Slots[4] = {&O.MixAnalyze, &O.MixRun, &O.MixClassify,
                        &O.MixPing};
  const char *Names[4] = {"analyze", "run", "classify", "ping"};
  for (unsigned *S : Slots)
    *S = 0;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Part = Spec.substr(Pos, Comma - Pos);
    size_t Eq = Part.find('=');
    if (Eq == std::string::npos)
      return false;
    std::string Name = Part.substr(0, Eq);
    unsigned Weight = static_cast<unsigned>(std::atoi(Part.c_str() + Eq + 1));
    bool Known = false;
    for (unsigned I = 0; I != 4; ++I)
      if (Name == Names[I]) {
        *Slots[I] = Weight;
        Known = true;
      }
    if (!Known)
      return false;
    Pos = Comma + 1;
  }
  return O.MixAnalyze + O.MixRun + O.MixClassify + O.MixPing > 0;
}

/// Per-opcode client-side samples, merged across users after the join.
struct OpSamples {
  std::vector<uint64_t> LatNs;

  uint64_t quantile(double Q) const {
    if (LatNs.empty())
      return 0;
    size_t Idx = static_cast<size_t>(
        Q * static_cast<double>(LatNs.size() - 1) + 0.5);
    return LatNs[std::min(Idx, LatNs.size() - 1)];
  }
  double mean() const {
    if (LatNs.empty())
      return 0;
    double Sum = 0;
    for (uint64_t V : LatNs)
      Sum += static_cast<double>(V);
    return Sum / static_cast<double>(LatNs.size());
  }
};

struct UserResult {
  std::map<uint16_t, std::vector<uint64_t>> LatByOp;
  uint64_t Requests = 0;
  uint64_t Responses = 0;
  uint64_t ProtocolErrors = 0;
  uint64_t AppErrors = 0;
  std::string FirstError;
};

uint64_t nowNs() { return obs::Tracer::instance().nowNs(); }

void runUser(const BotOptions &O, unsigned UserIdx, uint64_t DeadlineNs,
             UserResult &R) {
  Rng Rand(O.Seed * 0x9E3779B97F4A7C15ull + UserIdx * 1000003ull + 1);
  net::Client C;
  std::string Err;
  if (!C.connect(O.Host, O.Port, Err)) {
    R.ProtocolErrors++;
    R.FirstError = Err;
    return;
  }
  unsigned TotalWeight = O.MixAnalyze + O.MixRun + O.MixClassify + O.MixPing;

  for (uint64_t I = 0;; ++I) {
    if (O.RequestsPerUser != 0 && I >= O.RequestsPerUser)
      break;
    if (O.RequestsPerUser == 0 && nowNs() >= DeadlineNs)
      break;
    uint64_t Pick = Rand.nextBelow(TotalWeight);
    const std::string &W =
        O.Workloads[Rand.nextBelow(O.Workloads.size())];
    net::Status S = net::Status::Ok;
    bool Ok;
    uint16_t Op;
    uint64_t T0 = nowNs();
    if (Pick < O.MixAnalyze) {
      Op = static_cast<uint16_t>(net::Opcode::Analyze);
      net::AnalyzeRequest Req;
      Req.Workload = W;
      Req.OptLevel = static_cast<uint8_t>(O.OptLevel);
      net::AnalyzeResponse Resp;
      Ok = C.analyze(Req, Resp, S, Err);
    } else if (Pick < O.MixAnalyze + O.MixRun) {
      Op = static_cast<uint16_t>(net::Opcode::Run);
      net::RunRequest Req;
      Req.Workload = W;
      Req.OptLevel = static_cast<uint8_t>(O.OptLevel);
      net::RunResponse Resp;
      Ok = C.run(Req, Resp, S, Err);
    } else if (Pick < O.MixAnalyze + O.MixRun + O.MixClassify) {
      Op = static_cast<uint16_t>(net::Opcode::Classify);
      net::ClassifyRequest Req;
      Req.Workload = W;
      Req.OptLevel = static_cast<uint8_t>(O.OptLevel);
      net::ClassifyResponse Resp;
      Ok = C.classify(Req, Resp, S, Err);
    } else {
      Op = static_cast<uint16_t>(net::Opcode::Ping);
      Ok = C.ping(formatString("u%u-%llu", UserIdx,
                               static_cast<unsigned long long>(I)),
                  S, Err);
    }
    uint64_t T1 = nowNs();
    R.Requests++;
    if (!Ok) {
      R.ProtocolErrors++;
      if (R.FirstError.empty())
        R.FirstError = Err;
      return; // Transport is gone; this user is done.
    }
    R.Responses++;
    if (S != net::Status::Ok) {
      R.AppErrors++;
      if (R.FirstError.empty())
        R.FirstError = Err;
      continue;
    }
    R.LatByOp[Op].push_back(T1 - T0);
  }
}

std::string jsonEscapeMix(const BotOptions &O) {
  return formatString(
      "{\"analyze\": %u, \"run\": %u, \"classify\": %u, \"ping\": %u}",
      O.MixAnalyze, O.MixRun, O.MixClassify, O.MixPing);
}

} // namespace

int main(int Argc, char **Argv) {
  BotOptions O;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Name) -> const char * {
      size_t N = std::strlen(Name);
      if (Arg.compare(0, N, Name) == 0 && Arg.size() > N + 1 &&
          Arg[N] == '=')
        return Arg.c_str() + N + 1;
      if (Arg == Name && I + 1 < Argc)
        return Argv[++I];
      return nullptr;
    };
    if (const char *V = Value("--host")) {
      O.Host = V;
    } else if (const char *V = Value("--port")) {
      O.Port = static_cast<uint16_t>(std::atoi(V));
    } else if (const char *V = Value("--users")) {
      O.Users = static_cast<unsigned>(std::atoi(V));
    } else if (const char *V = Value("--requests")) {
      O.RequestsPerUser = static_cast<unsigned>(std::atoi(V));
    } else if (const char *V = Value("--duration")) {
      O.DurationS = std::atof(V);
      O.RequestsPerUser = 0;
    } else if (const char *V = Value("--seed")) {
      O.Seed = std::strtoull(V, nullptr, 10);
    } else if (const char *V = Value("--opt")) {
      O.OptLevel = static_cast<unsigned>(std::atoi(V));
    } else if (const char *V = Value("--mix")) {
      if (!parseMix(V, O)) {
        std::fprintf(stderr, "error: bad --mix spec '%s'\n", V);
        return 2;
      }
    } else if (const char *V = Value("--workloads")) {
      std::string Spec = V;
      size_t Pos = 0;
      while (Pos < Spec.size()) {
        size_t Comma = Spec.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = Spec.size();
        O.Workloads.push_back(Spec.substr(Pos, Comma - Pos));
        Pos = Comma + 1;
      }
    } else if (const char *V = Value("--json")) {
      O.JsonPath = V;
    } else if (Arg == "--drain") {
      O.Drain = true;
    } else if (Arg == "--server-counters") {
      O.PrintServerCounters = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage();
    }
  }
  if (O.Port == 0)
    return usage();
  if (O.Workloads.empty())
    O.Workloads = workloads::trainingSetNames();
  for (const std::string &W : O.Workloads)
    if (!workloads::findWorkload(W)) {
      std::fprintf(stderr, "error: unknown workload '%s'\n", W.c_str());
      return 2;
    }
  std::signal(SIGPIPE, SIG_IGN);

  // The fleet: one thread + one connection per user.
  std::vector<UserResult> Results(O.Users);
  uint64_t T0 = nowNs();
  uint64_t DeadlineNs =
      T0 + static_cast<uint64_t>(O.DurationS * 1e9);
  {
    std::vector<std::thread> Threads;
    Threads.reserve(O.Users);
    for (unsigned U = 0; U != O.Users; ++U)
      Threads.emplace_back(
          [&, U] { runUser(O, U, DeadlineNs, Results[U]); });
    for (std::thread &T : Threads)
      T.join();
  }
  uint64_t CampaignNs = nowNs() - T0;

  // Merge.
  std::map<uint16_t, OpSamples> ByOp;
  uint64_t Requests = 0, Responses = 0, ProtocolErrors = 0, AppErrors = 0;
  std::string FirstError;
  for (UserResult &R : Results) {
    Requests += R.Requests;
    Responses += R.Responses;
    ProtocolErrors += R.ProtocolErrors;
    AppErrors += R.AppErrors;
    if (FirstError.empty())
      FirstError = R.FirstError;
    for (auto &[Op, Lat] : R.LatByOp) {
      auto &Dst = ByOp[Op].LatNs;
      Dst.insert(Dst.end(), Lat.begin(), Lat.end());
    }
  }
  for (auto &[Op, S] : ByOp)
    std::sort(S.LatNs.begin(), S.LatNs.end());

  // Server-side view + graceful drain.
  net::StatsResponse Stats;
  bool HaveStats = false;
  {
    net::Client C;
    std::string Err;
    net::Status S = net::Status::Ok;
    if (C.connect(O.Host, O.Port, Err) && C.stats(Stats, S, Err) &&
        S == net::Status::Ok) {
      HaveStats = true;
    } else if (FirstError.empty()) {
      FirstError = Err;
    }
    if (O.Drain) {
      if (!C.connected() || !C.drain(S, Err) || S != net::Status::Ok) {
        ProtocolErrors++;
        if (FirstError.empty())
          FirstError = Err;
      }
    }
  }

  double Secs = static_cast<double>(CampaignNs) / 1e9;
  double Throughput = Secs > 0 ? static_cast<double>(Responses) / Secs : 0;

  // Human summary.
  TextTable T({"opcode", "count", "p50 us", "p90 us", "p99 us", "max us",
               "server p99 us"});
  for (auto &[Op, S] : ByOp) {
    double ServerP99 = 0;
    if (HaveStats)
      for (const net::OpcodeLatency &L : Stats.Latencies)
        if (L.Op == Op)
          ServerP99 = L.P99Ns / 1000.0;
    T.addRow({net::opcodeName(Op), formatWithCommas(S.LatNs.size()),
              formatString("%.1f", S.quantile(0.50) / 1000.0),
              formatString("%.1f", S.quantile(0.90) / 1000.0),
              formatString("%.1f", S.quantile(0.99) / 1000.0),
              formatString("%.1f",
                           (S.LatNs.empty() ? 0 : S.LatNs.back()) / 1000.0),
              formatString("%.1f", ServerP99)});
  }
  std::fputs(T.render().c_str(), stdout);
  std::printf("%llu requests, %llu responses in %.2fs (%.0f rps); "
              "%llu protocol error(s), %llu app error(s)\n",
              static_cast<unsigned long long>(Requests),
              static_cast<unsigned long long>(Responses), Secs, Throughput,
              static_cast<unsigned long long>(ProtocolErrors),
              static_cast<unsigned long long>(AppErrors));
  if (HaveStats)
    std::printf("server: store hits %llu misses %llu (hit rate %.1f%%), "
                "frames in/out %llu/%llu, dropped %llu, rejects %llu\n",
                static_cast<unsigned long long>(Stats.StoreHits),
                static_cast<unsigned long long>(Stats.StoreMisses),
                Stats.storeHitRate() * 100.0,
                static_cast<unsigned long long>(Stats.FramesIn),
                static_cast<unsigned long long>(Stats.FramesOut),
                static_cast<unsigned long long>(Stats.ResponsesDropped),
                static_cast<unsigned long long>(Stats.Rejects));
  if (!FirstError.empty())
    std::fprintf(stderr, "first error: %s\n", FirstError.c_str());
  if (O.PrintServerCounters && HaveStats)
    std::fprintf(stderr, "%s\n", Stats.CountersJson.c_str());

  // Machine-readable report.
  if (!O.JsonPath.empty()) {
    std::FILE *F = std::fopen(O.JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write '%s'\n", O.JsonPath.c_str());
      return 1;
    }
    std::fprintf(
        F,
        "{\n"
        "  \"config\": {\"users\": %u, \"requests_per_user\": %u, "
        "\"duration_s\": %.3f, \"seed\": %llu, \"opt\": %u, \"mix\": %s},\n",
        O.Users, O.RequestsPerUser, O.DurationS,
        static_cast<unsigned long long>(O.Seed), O.OptLevel,
        jsonEscapeMix(O).c_str());
    std::fprintf(
        F,
        "  \"totals\": {\"requests\": %llu, \"responses\": %llu, "
        "\"protocol_errors\": %llu, \"app_errors\": %llu, "
        "\"campaign_s\": %.3f, \"throughput_rps\": %.2f},\n",
        static_cast<unsigned long long>(Requests),
        static_cast<unsigned long long>(Responses),
        static_cast<unsigned long long>(ProtocolErrors),
        static_cast<unsigned long long>(AppErrors), Secs, Throughput);
    std::fprintf(F, "  \"opcodes\": {\n");
    bool First = true;
    for (auto &[Op, S] : ByOp) {
      double ServerP50 = 0, ServerP99 = 0;
      uint64_t ServerCount = 0;
      if (HaveStats)
        for (const net::OpcodeLatency &L : Stats.Latencies)
          if (L.Op == Op) {
            ServerP50 = L.P50Ns;
            ServerP99 = L.P99Ns;
            ServerCount = L.Count;
          }
      std::fprintf(
          F,
          "%s    \"%s\": {\"count\": %zu, \"p50_ns\": %llu, "
          "\"p90_ns\": %llu, \"p99_ns\": %llu, \"mean_ns\": %.1f, "
          "\"max_ns\": %llu, \"server_count\": %llu, "
          "\"server_p50_ns\": %.1f, \"server_p99_ns\": %.1f}",
          First ? "" : ",\n", net::opcodeName(Op), S.LatNs.size(),
          static_cast<unsigned long long>(S.quantile(0.50)),
          static_cast<unsigned long long>(S.quantile(0.90)),
          static_cast<unsigned long long>(S.quantile(0.99)), S.mean(),
          static_cast<unsigned long long>(
              S.LatNs.empty() ? 0 : S.LatNs.back()),
          static_cast<unsigned long long>(ServerCount), ServerP50,
          ServerP99);
      First = false;
    }
    std::fprintf(F, "\n  },\n");
    std::fprintf(
        F,
        "  \"server\": {\"have_stats\": %s, \"uptime_ns\": %llu, "
        "\"accepts\": %llu, \"frames_in\": %llu, \"frames_out\": %llu, "
        "\"bytes_in\": %llu, \"bytes_out\": %llu, \"rejects\": %llu, "
        "\"responses_dropped\": %llu, \"store_hits\": %llu, "
        "\"store_misses\": %llu, \"store_hit_rate\": %.4f}\n",
        HaveStats ? "true" : "false",
        static_cast<unsigned long long>(Stats.UptimeNs),
        static_cast<unsigned long long>(Stats.Accepts),
        static_cast<unsigned long long>(Stats.FramesIn),
        static_cast<unsigned long long>(Stats.FramesOut),
        static_cast<unsigned long long>(Stats.BytesIn),
        static_cast<unsigned long long>(Stats.BytesOut),
        static_cast<unsigned long long>(Stats.Rejects),
        static_cast<unsigned long long>(Stats.ResponsesDropped),
        static_cast<unsigned long long>(Stats.StoreHits),
        static_cast<unsigned long long>(Stats.StoreMisses),
        Stats.storeHitRate());
    std::fprintf(F, "}\n");
    std::fclose(F);
  }

  bool Failed = ProtocolErrors > 0 || Responses == 0 ||
                (HaveStats && Stats.ResponsesDropped > 0);
  return Failed ? 1 : 0;
}
