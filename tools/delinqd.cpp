//===- tools/delinqd.cpp - the delinquent-load analysis daemon ------------------//
//
// A long-lived network service over the toolchain:
//
//   delinqd --port 7099 &
//   delinq_bots --port 7099 --users 200 --requests 20
//
// delinqd accepts ANALYZE / RUN / CLASSIFY / STATS / DRAIN / PING requests
// over the length-prefixed binary frame protocol (src/net/Frame.h), fans the
// work onto the shared JobPool, and serves repeated requests from the
// Driver's memo tables plus the persistent content-addressed ResultStore —
// the same keys the CLI uses, so a store warmed by `delinq run` also warms
// the daemon and vice versa.
//
// SIGINT/SIGTERM and the DRAIN opcode trigger the same graceful shutdown:
// stop accepting, finish in-flight jobs, deliver every pending response,
// flush counters and the trace, exit 0.
//
//===----------------------------------------------------------------------===//

#include "exec/Options.h"
#include "net/Server.h"
#include "obs/Counters.h"
#include "support/Format.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace dlq;

namespace {

net::Server *GServer = nullptr;

void onSignal(int) {
  if (GServer)
    GServer->requestDrain();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: delinqd [options]\n"
      "options:\n"
      "  --port N                     listen port (default 0 = ephemeral;\n"
      "                               the bound port is printed on stdout)\n"
      "  --host A                     listen address (default 127.0.0.1)\n"
      "  --idle-timeout-ms N          close idle connections (default "
      "60000;\n"
      "                               0 disables)\n"
      "  --max-outbound-kb N          per-connection write backpressure\n"
      "                               bound (default 8192)\n"
      "  --max-conns N                concurrent connection cap (default "
      "1024)\n"
      "  --max-instrs N               per-run instruction budget\n"
      "%s"
      "  --counters                   print the counter registry on exit\n",
      exec::ExecOptions::usageText());
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  net::ServerOptions Opts;
  Opts.Exec = exec::ExecOptions::fromEnv();
  bool ShowCounters = false;

  for (int I = 1; I < Argc; ++I) {
    if (Opts.Exec.consumeArg(Argc, Argv, I)) {
      if (!Opts.Exec.Error.empty()) {
        std::fprintf(stderr, "error: %s\n", Opts.Exec.Error.c_str());
        return 2;
      }
      continue;
    }
    std::string Arg = Argv[I];
    auto Value = [&](const char *Name) -> const char * {
      size_t N = std::strlen(Name);
      if (Arg.compare(0, N, Name) == 0 && Arg.size() > N + 1 &&
          Arg[N] == '=')
        return Arg.c_str() + N + 1;
      if (Arg == Name && I + 1 < Argc)
        return Argv[++I];
      return nullptr;
    };
    if (const char *V = Value("--port")) {
      Opts.Port = static_cast<uint16_t>(std::atoi(V));
    } else if (const char *V = Value("--host")) {
      Opts.Host = V;
    } else if (const char *V = Value("--idle-timeout-ms")) {
      Opts.IdleTimeoutNs = std::strtoull(V, nullptr, 10) * 1'000'000ull;
    } else if (const char *V = Value("--max-outbound-kb")) {
      Opts.MaxOutboundBytes = std::strtoull(V, nullptr, 10) << 10;
    } else if (const char *V = Value("--max-conns")) {
      Opts.MaxConns = std::strtoull(V, nullptr, 10);
    } else if (const char *V = Value("--max-instrs")) {
      Opts.MaxInstrsPerRun = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--counters") {
      ShowCounters = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return usage();
    }
  }

  Opts.Exec.applyTracing();
  std::signal(SIGPIPE, SIG_IGN);

  net::Server Server(Opts);
  std::string Err;
  if (!Server.start(Err)) {
    std::fprintf(stderr, "delinqd: %s\n", Err.c_str());
    return 1;
  }

  GServer = &Server;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  std::printf("delinqd listening on %s port %u (workers=%u)\n",
              Opts.Host.c_str(), Server.port(),
              Server.driver().workers());
  std::fflush(stdout);

  int Code = Server.serve();
  GServer = nullptr;

  std::fprintf(stderr, "delinqd: drained (exit %d)\n", Code);
  if (ShowCounters)
    std::fputs(obs::counters().summaryTable().c_str(), stderr);
  if (!Opts.Exec.TracePath.empty() && !Opts.Exec.writeTrace())
    return 1;
  return Code;
}
