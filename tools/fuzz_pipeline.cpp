//===- tools/fuzz_pipeline.cpp - differential fuzzing CLI ------------------------//
//
// Drives the differential fuzzing harness (src/fuzz) from the command line:
//
//   fuzz_pipeline --programs 10000 --seed 1 --out fuzz-repros
//
// Each program is generated from a seed derived from (--seed, index),
// compiled at -O0 and -O1, simulated under flat and paged memory backings,
// with and without superinstruction fusion, and analyzed by the AP builder
// and classifier; any observable difference is a finding. Findings are
// delta-reduced and written to --out as standalone .mc reproducers. Exit
// status: 0 = clean campaign, 1 = findings, 2 = usage error.
//
// Replaying one finding: `fuzz_pipeline --replay repro.mc` re-runs the
// oracle battery over an existing file (minimization off), which is how the
// regression tests in tests/FuzzRegressionTest.cpp were produced.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace dlq;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: fuzz_pipeline [options]\n"
      "  --programs <n>    programs to generate and check (default 1000)\n"
      "  --seed <s>        campaign seed (default 1)\n"
      "  --jobs <n>        worker threads (default: hardware)\n"
      "  --out <dir>       write minimized reproducers here\n"
      "  --max-instrs <n>  simulation fuel per run (default 50000000)\n"
      "  --no-minimize     report original programs without reduction\n"
      "  --no-analysis     skip the AP/classifier oracle\n"
      "  --interproc <n>   bias toward pointer-arg call chains n levels deep\n"
      "  --emit <seed>     print the generated program for a seed and exit\n"
      "  --replay <file>   run the oracles over one .mc file and exit\n"
      "  --quiet           no per-batch progress\n");
  return 2;
}

bool parseU64(const char *S, uint64_t &V) {
  char *End = nullptr;
  V = std::strtoull(S, &End, 0);
  return End && *End == '\0' && End != S;
}

int replay(const std::string &Path, const fuzz::OracleOptions &Opts) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return 2;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  fuzz::OracleReport Rep = fuzz::runOracles(Buf.str(), Opts);
  for (const fuzz::OracleFinding &F : Rep.Findings)
    std::printf("[%s] %s\n", std::string(fuzz::oracleName(F.Id)).c_str(),
                F.Detail.c_str());
  if (Rep.clean())
    std::printf("clean (%llu instrs%s)\n",
                static_cast<unsigned long long>(Rep.InstrsExecuted),
                Rep.FuelExhausted ? ", fuel exhausted" : "");
  return Rep.clean() ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  fuzz::FuzzOptions Opts;
  bool Quiet = false;
  std::string ReplayPath;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (A == "--programs") {
      if (const char *V = next(); !V || !parseU64(V, Opts.Programs))
        return usage();
    } else if (A == "--seed") {
      if (const char *V = next(); !V || !parseU64(V, Opts.Seed))
        return usage();
    } else if (A == "--jobs") {
      uint64_t J;
      if (const char *V = next(); !V || !parseU64(V, J))
        return usage();
      else
        Opts.Jobs = static_cast<unsigned>(J);
    } else if (A == "--out") {
      if (const char *V = next())
        Opts.OutDir = V;
      else
        return usage();
    } else if (A == "--max-instrs") {
      if (const char *V = next(); !V || !parseU64(V, Opts.Oracle.MaxInstrs))
        return usage();
    } else if (A == "--no-minimize") {
      Opts.Minimize = false;
    } else if (A == "--no-analysis") {
      Opts.Oracle.CheckAnalysis = false;
    } else if (A == "--interproc") {
      uint64_t D;
      if (const char *V = next(); !V || !parseU64(V, D))
        return usage();
      else
        Opts.Gen.InterprocDepth = static_cast<unsigned>(D);
    } else if (A == "--emit") {
      uint64_t S;
      if (const char *V = next(); !V || !parseU64(V, S))
        return usage();
      else
        std::fputs(fuzz::generateProgram(S, Opts.Gen).c_str(), stdout);
      return 0;
    } else if (A == "--replay") {
      if (const char *V = next())
        ReplayPath = V;
      else
        return usage();
    } else if (A == "--quiet") {
      Quiet = true;
    } else {
      return usage();
    }
  }

  if (!ReplayPath.empty())
    return replay(ReplayPath, Opts.Oracle);

  if (!Quiet)
    Opts.OnProgress = [](uint64_t Done, uint64_t Total, uint64_t Findings) {
      std::fprintf(stderr, "fuzz: %llu/%llu programs, %llu findings\n",
                   static_cast<unsigned long long>(Done),
                   static_cast<unsigned long long>(Total),
                   static_cast<unsigned long long>(Findings));
    };

  fuzz::FuzzResult Res = fuzz::runCampaign(Opts);

  for (const fuzz::FuzzFinding &F : Res.Findings) {
    std::printf("FINDING seed=0x%016llx index=%llu oracle=%s\n  %s\n",
                static_cast<unsigned long long>(F.Seed),
                static_cast<unsigned long long>(F.Index),
                std::string(fuzz::oracleName(F.Oracle)).c_str(),
                F.Detail.c_str());
    if (!F.ReproPath.empty())
      std::printf("  reproducer: %s (%zu -> %zu lines)\n", F.ReproPath.c_str(),
                  F.OriginalLines, F.MinimizedLines);
  }
  std::printf("fuzz: %llu programs, %llu clean, %zu findings, "
              "%llu fuel-exhausted, %llu instrs simulated\n",
              static_cast<unsigned long long>(Res.Stats.Programs),
              static_cast<unsigned long long>(Res.Stats.Clean),
              Res.Findings.size(),
              static_cast<unsigned long long>(Res.Stats.FuelExhausted),
              static_cast<unsigned long long>(Res.Stats.InstrsExecuted));
  return Res.clean() ? 0 : 1;
}
